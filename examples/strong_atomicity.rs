//! Strong atomicity in action: the paper's Figure 2b scenario.
//!
//! A transaction writes one word of a cache line while plain
//! (non-transactional) code stores to a *neighbouring* word of the same
//! line. With a weakly-atomic, eager, line-granularity STM, an abort
//! restores the whole logged line — silently destroying the plain store.
//! With UFO strong atomicity, the plain store takes a hardware fault and
//! waits, so nothing is ever lost.
//!
//! ```sh
//! cargo run --example strong_atomicity
//! ```

use ufotm::prelude::*;
use ufotm::ustm::{UstmConfig, UstmShared, UstmTxn};

/// Runs the race on a given USTM configuration; returns the neighbour
/// word's final value (99 = preserved, 0 = lost update).
fn run_race(config: UstmConfig) -> (u64, u64) {
    let mcfg = MachineConfig::table4(2);
    let shared = UstmShared::new(config, Addr(1 << 20), 2, 1024);
    let machine = Machine::new(mcfg);
    let word_a = Addr(0); // transactional word
    let word_b = Addr(8); // same line, plain-code word

    let result = Sim::new(machine, shared).run(vec![
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            // The transaction: write word A, linger, then abort.
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx);
            txn.write(ctx, word_a, 7).unwrap();
            ctx.work(5_000).unwrap();
            let _ = txn.abort_explicit(ctx);
        }) as ThreadFn<UstmShared>,
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            // Plain code: store to the neighbouring word mid-transaction.
            ctx.set_ufo_enabled(true);
            ctx.work(1_000).unwrap();
            ufotm::ustm::nont_store(ctx, word_b, 99);
        }) as ThreadFn<UstmShared>,
    ]);
    (result.machine.peek(word_a), result.machine.peek(word_b))
}

fn main() {
    println!("Figure 2b: a plain store next to transactional data\n");

    let (a, b) = run_race(UstmConfig::weak());
    println!("weakly-atomic USTM:   word A = {a}, neighbour B = {b}");
    if b == 0 {
        println!("  -> the abort's line-granular undo DESTROYED the plain store!");
    }

    let (a, b) = run_race(UstmConfig::default());
    println!("strongly-atomic USTM: word A = {a}, neighbour B = {b}");
    assert_eq!(b, 99, "strong atomicity must preserve the plain store");
    println!("  -> the plain store faulted, waited out the transaction, and survived.");

    println!();
    println!("This is why the paper installs UFO fault-on bits from the STM's");
    println!("barriers: non-transactional code needs no instrumentation, yet");
    println!("cannot violate (or be violated by) a software transaction.");
}
