//! Watch the hybrid make decisions: a traced run showing hardware commits,
//! an overflow abort, the failover to USTM, and contention retries.
//!
//! ```sh
//! cargo run --example txn_timeline
//! ```

use ufotm::prelude::*;

fn main() {
    let mut cfg = MachineConfig::table4(2);
    // A small L1 so one transaction visibly overflows.
    cfg.l1 = ufotm::machine::CacheGeometry::new(8, 2);
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(256);
    let machine = Machine::new(cfg);

    let result = Sim::new(machine, shared).run(vec![
        Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
            t.install(ctx);
            // Two small transactions (hardware), then a big one (failover).
            for i in 0..2u64 {
                t.transaction(ctx, |tx, ctx| {
                    let v = tx.read(ctx, Addr(i * 64))?;
                    tx.write(ctx, Addr(i * 64), v + 1)
                });
            }
            t.transaction(ctx, |tx, ctx| {
                for i in 0..24u64 {
                    tx.write(ctx, Addr(8192 + i * 64), i)?;
                }
                Ok(())
            });
        }) as ThreadFn<TmShared>,
        Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UfoHybrid, 1);
            t.install(ctx);
            // Contend with the big transaction's lines.
            for k in 0..6u64 {
                t.transaction(ctx, |tx, ctx| {
                    let a = Addr(8192 + (k % 3) * 64);
                    let v = tx.read(ctx, a)?;
                    tx.work(ctx, 400)?;
                    tx.write(ctx, a, v + 100)
                });
            }
        }) as ThreadFn<TmShared>,
    ]);

    println!("transaction timeline (simulated cycles):\n");
    print!("{}", result.shared.trace.render());
    println!();
    println!(
        "hw commits: {}   sw commits: {}   failovers: {}",
        result.shared.stats.hw_commits,
        result.shared.stats.sw_commits,
        result.shared.stats.total_failovers()
    );
}
