//! Explore the hybrid's contention-management policy space (paper §4.4 /
//! Figure 8) on the genome workload.
//!
//! ```sh
//! cargo run --release --example policy_explorer
//! ```

use ufotm::core::{BtmUfoFaultPolicy, HybridPolicy};
use ufotm::machine::{HwCmPolicy, UfoKillPolicy};
use ufotm::prelude::*;
use ufotm::stamp::genome::{self, GenomeParams};

fn main() {
    let params = GenomeParams {
        segments: 192,
        ..GenomeParams::standard()
    };
    let threads = 4;

    let configs: Vec<(&str, HybridPolicy, HwCmPolicy, UfoKillPolicy)> = vec![
        (
            "paper default: age CM, never fail over on contention",
            HybridPolicy::default(),
            HwCmPolicy::AgeOrdered,
            UfoKillPolicy::AllSpeculativeHolders,
        ),
        (
            "requester-wins hardware CM",
            HybridPolicy::failover_on_nth_conflict(5),
            HwCmPolicy::RequesterWins,
            UfoKillPolicy::AllSpeculativeHolders,
        ),
        (
            "fail over to software on the 3rd conflict abort",
            HybridPolicy::failover_on_nth_conflict(3),
            HwCmPolicy::AgeOrdered,
            UfoKillPolicy::AllSpeculativeHolders,
        ),
        (
            "stall (not abort) on UFO faults",
            HybridPolicy {
                btm_ufo_fault: BtmUfoFaultPolicy::Stall,
                ..HybridPolicy::default()
            },
            HwCmPolicy::AgeOrdered,
            UfoKillPolicy::AllSpeculativeHolders,
        ),
        (
            "limit study: only true-conflict UFO kills",
            HybridPolicy::default(),
            HwCmPolicy::AgeOrdered,
            UfoKillPolicy::TrueConflictsOnly,
        ),
    ];

    println!("genome, {threads} threads, UFO hybrid under different policies\n");
    let mut baseline = None;
    for (name, policy, hw_cm, ufo_kill) in configs {
        let mut spec = RunSpec::new(SystemKind::UfoHybrid, threads);
        spec.policy = policy;
        spec.machine.hw_cm = hw_cm;
        spec.machine.ufo_kill_policy = ufo_kill;
        let out = genome::run(&spec, &params);
        let base = *baseline.get_or_insert(out.makespan);
        println!(
            "{:<52} {:>10} cycles ({:>5.2}x)  hw={:<4} sw={:<4} aborts={}",
            name,
            out.makespan,
            base as f64 / out.makespan as f64,
            out.hw_commits,
            out.sw_commits,
            out.total_aborts()
        );
    }
    println!("\nThe paper's findings (§4.4): hardware CM quality is first-order;");
    println!("failing over on contention is metastable; false UFO-kill");
    println!("conflicts cost little.");
}
