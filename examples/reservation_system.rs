//! A vacation-style reservation system: long, pointer-chasing transactions
//! over search trees, run on the paper's hybrid and its competitors.
//!
//! Shows the paper's central claim end-to-end: the UFO hybrid runs what it
//! can in hardware at full speed and fails over only the transactions that
//! genuinely need software (cache overflows, allocator syscalls), while
//! PhTM drags concurrent hardware work into its software phases.
//!
//! ```sh
//! cargo run --example reservation_system
//! ```

use ufotm::prelude::*;
use ufotm::stamp::vacation::{self, VacationParams};

fn main() {
    let params = VacationParams::low_contention();
    let threads = 4;
    println!(
        "vacation: {} relations/table, {} queries/txn, {} total tasks, {threads} threads\n",
        params.relations, params.queries, params.total_tasks
    );

    let seq = vacation::run(&RunSpec::new(SystemKind::Sequential, 1), &params);
    println!("sequential: {} cycles\n", seq.makespan);

    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>10} {:>10} {:>9}",
        "system", "speedup", "hw", "sw", "overflows", "syscalls", "aborts"
    );
    for kind in [
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
        SystemKind::UstmStrong,
        SystemKind::GlobalLock,
    ] {
        let out = vacation::run(&RunSpec::new(kind, threads), &params);
        println!(
            "{:<14} {:>8.2}x {:>7} {:>7} {:>10} {:>10} {:>9}",
            kind.label(),
            seq.makespan as f64 / out.makespan as f64,
            out.hw_commits,
            out.sw_commits,
            out.aborts_for(AbortReason::Overflow),
            out.aborts_for(AbortReason::Syscall),
            out.total_aborts(),
        );
    }
    println!("\nEvery run is verified: reservations in the tables exactly match");
    println!("the sums credited to customer records.");
}
