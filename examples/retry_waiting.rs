//! Transactional waiting (`retry`, paper §6): a bounded queue with no
//! condition variables and no lost wakeups, on the UFO hybrid.
//!
//! A consumer transaction that finds the queue empty calls `tx.retry(...)`:
//! in hardware this fails over to USTM, which undoes its writes, demotes
//! its ownership to read, and parks. A producer's commit that touches what
//! the sleeper read wakes it — including a *hardware* producer, which
//! detects the sleeper from the UFO fault handler, bypasses the protection
//! transactionally, and wakes it after commit.
//!
//! ```sh
//! cargo run --example retry_waiting
//! ```

use ufotm::prelude::*;

const HEAD: Addr = Addr(0); // queue state: one line
const TAIL: Addr = Addr(8);
const SLOTS: Addr = Addr(4096); // ring buffer, one slot per line
const CAP: u64 = 8;

fn slot(i: u64) -> Addr {
    Addr(SLOTS.0 + (i % CAP) * 64)
}

fn main() {
    let kind = SystemKind::UfoHybrid;
    let cfg = MachineConfig::table4(2);
    let shared = TmShared::standard(kind, &cfg);
    let machine = Machine::new(cfg);
    let items = 20u64;

    let result = Sim::new(machine, shared).run(vec![
        // Consumer.
        Box::new(move |ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(kind, 0);
            t.install(ctx);
            let mut received = Vec::new();
            for _ in 0..items {
                let v = t.transaction(ctx, |tx, ctx| {
                    let h = tx.read(ctx, HEAD)?;
                    let tl = tx.read(ctx, TAIL)?;
                    if h == tl {
                        tx.retry(ctx)?; // park until a producer commits
                        unreachable!("retry never returns Ok");
                    }
                    let v = tx.read(ctx, slot(h))?;
                    tx.write(ctx, HEAD, h + 1)?;
                    Ok(v)
                });
                received.push(v);
            }
            assert_eq!(received, (0..items).map(|i| i * 7).collect::<Vec<_>>());
            println!("consumer: received all {items} items in order");
        }) as ThreadFn<TmShared>,
        // Producer: bursts with idle gaps, so the consumer really parks.
        Box::new(move |ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(kind, 1);
            t.install(ctx);
            for i in 0..items {
                if i % 5 == 0 {
                    ctx.work(20_000).unwrap(); // let the consumer go to sleep
                }
                t.transaction(ctx, |tx, ctx| {
                    let h = tx.read(ctx, HEAD)?;
                    let tl = tx.read(ctx, TAIL)?;
                    if tl - h >= CAP {
                        tx.retry(ctx)?; // queue full: wait for the consumer
                        unreachable!();
                    }
                    tx.write(ctx, slot(tl), i * 7)?;
                    tx.write(ctx, TAIL, tl + 1)?;
                    Ok(())
                });
            }
            println!("producer: sent all {items} items");
        }) as ThreadFn<TmShared>,
    ]);

    let u = &result.shared.ustm.stats;
    println!(
        "\nretry parks: {}   wakeups: {}   hw commits: {}   sw commits: {}",
        u.retries_entered,
        u.retries_woken,
        result.shared.stats.hw_commits,
        result.shared.stats.sw_commits
    );
    println!("No polling of the queue condition, no lost wakeups — the TM's");
    println!("conflict detection doubles as the wakeup mechanism (paper §6).");
}
