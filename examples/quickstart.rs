//! Quickstart: run the same transactional counter on every TM system and
//! compare simulated cost and where transactions committed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ufotm::prelude::*;

fn run_counter(kind: SystemKind, threads: usize, increments: u64) -> (u64, TmShared) {
    let mut cfg = MachineConfig::table4(threads);
    if kind.needs_unbounded_btm() {
        cfg.btm_unbounded = true;
    }
    let shared = TmShared::standard(kind, &cfg);
    let machine = Machine::new(cfg);
    let counter = Addr(0);
    let result = Sim::new(machine, shared).run(
        (0..threads)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx| {
                    let mut t = TmThread::new(kind, cpu);
                    t.install(ctx);
                    for _ in 0..increments {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, counter)?;
                            tx.work(ctx, 30)?; // a little real work
                            tx.write(ctx, counter, v + 1)
                        });
                    }
                })
            })
            .collect(),
    );
    assert_eq!(
        result.machine.peek(counter),
        threads as u64 * increments,
        "{kind}: atomicity violated!"
    );
    (result.makespan, result.shared)
}

fn main() {
    let threads = 4;
    let increments = 50;
    println!("4 threads x 50 increments of one shared counter\n");
    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>8}",
        "system", "cycles", "hw", "sw", "lock"
    );
    for kind in SystemKind::all() {
        let t = if kind == SystemKind::Sequential {
            1
        } else {
            threads
        };
        let (makespan, shared) = run_counter(kind, t, increments);
        println!(
            "{:<14} {:>12} {:>8} {:>8} {:>8}",
            kind.label(),
            makespan,
            shared.stats.hw_commits,
            shared.stats.sw_commits,
            shared.stats.lock_commits
        );
    }
    println!("\nEvery system preserves atomicity; the hybrid commits");
    println!("everything in hardware because these transactions are tiny.");
}
