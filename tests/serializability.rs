//! Property-based serializability tests: randomized transactional
//! workloads must preserve a cross-line invariant and lose no updates, on
//! every TM system.

use proptest::prelude::*;

use ufotm::prelude::*;

/// Runs `threads × txns` transactions, each of which asserts that all
/// `pool` words are equal (they move in lockstep) and then increments every
/// one of them. Any isolation or atomicity failure breaks either the
/// in-transaction assertion or the final count.
fn run_invariant_workload(
    kind: SystemKind,
    threads: usize,
    txns: u64,
    pool: usize,
    work: u64,
    seed: u64,
) {
    let mut cfg = MachineConfig::table4(threads);
    if kind.needs_unbounded_btm() {
        cfg.btm_unbounded = true;
    }
    let shared = TmShared::standard(kind, &cfg);
    let machine = Machine::new(cfg);
    // Pool words on distinct lines (and distinct L1 sets, mostly).
    let addr_of = move |i: usize| Addr(4096 + (i as u64) * 192);
    let r = Sim::new(machine, shared).run(
        (0..threads)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx| {
                    let mut t = TmThread::new(kind, cpu);
                    t.install(ctx);
                    for k in 0..txns {
                        t.transaction(ctx, |tx, ctx| {
                            let first = tx.read(ctx, addr_of(0))?;
                            for i in 1..pool {
                                let v = tx.read(ctx, addr_of(i))?;
                                assert_eq!(v, first, "{kind}: torn read of pool word {i}");
                            }
                            tx.work(ctx, work + (seed ^ k) % 17)?;
                            for i in 0..pool {
                                tx.write(ctx, addr_of(i), first + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect(),
    );
    let expected = threads as u64 * txns;
    for i in 0..pool {
        assert_eq!(
            r.machine.peek(addr_of(i)),
            expected,
            "{kind}: pool word {i} lost updates"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn ufo_hybrid_serializable(
        threads in 1usize..=4,
        txns in 1u64..=12,
        pool in 1usize..=6,
        work in 0u64..=200,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::UfoHybrid, threads, txns, pool, work, seed);
    }

    #[test]
    fn ustm_strong_serializable(
        threads in 1usize..=4,
        txns in 1u64..=10,
        pool in 1usize..=6,
        work in 0u64..=200,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::UstmStrong, threads, txns, pool, work, seed);
    }

    #[test]
    fn tl2_serializable(
        threads in 1usize..=4,
        txns in 1u64..=10,
        pool in 1usize..=6,
        work in 0u64..=200,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::Tl2, threads, txns, pool, work, seed);
    }

    #[test]
    fn hytm_serializable(
        threads in 1usize..=4,
        txns in 1u64..=10,
        pool in 1usize..=5,
        work in 0u64..=150,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::HyTm, threads, txns, pool, work, seed);
    }

    #[test]
    fn phtm_serializable(
        threads in 1usize..=4,
        txns in 1u64..=10,
        pool in 1usize..=5,
        work in 0u64..=150,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::PhTm, threads, txns, pool, work, seed);
    }

    #[test]
    fn unbounded_htm_serializable(
        threads in 1usize..=4,
        txns in 1u64..=10,
        pool in 1usize..=8,
        work in 0u64..=150,
        seed in any::<u64>(),
    ) {
        run_invariant_workload(SystemKind::UnboundedHtm, threads, txns, pool, work, seed);
    }
}

#[test]
fn large_pool_overflows_and_still_serializes_on_hybrid() {
    // A pool wider than the small-L1 capacity forces failovers mid-stream.
    let mut cfg = MachineConfig::table4(3);
    cfg.l1 = ufotm::machine::CacheGeometry::new(4, 2);
    let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    let machine = Machine::new(cfg);
    let addr_of = |i: usize| Addr(4096 + (i as u64) * 64);
    let pool = 24usize;
    let r = Sim::new(machine, shared).run(
        (0..3)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    for _ in 0..6 {
                        t.transaction(ctx, |tx, ctx| {
                            let first = tx.read(ctx, addr_of(0))?;
                            for i in 1..pool {
                                let v = tx.read(ctx, addr_of(i))?;
                                assert_eq!(v, first);
                            }
                            for i in 0..pool {
                                tx.write(ctx, addr_of(i), first + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect(),
    );
    for i in 0..pool {
        assert_eq!(r.machine.peek(addr_of(i)), 18);
    }
    assert!(r.shared.stats.sw_commits > 0, "overflow must have failed over");
}
