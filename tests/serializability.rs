//! Seed-sweep serializability tests: randomized transactional workloads
//! must preserve a cross-line invariant and lose no updates, on every TM
//! system. Failures print the seed; replay with `CHAOS_SEED=<n>`.

use ufotm::machine::SimRng;
use ufotm::prelude::*;
use ufotm::sim::{for_each_seed, seed_count};

/// Runs `threads × txns` transactions, each of which asserts that all
/// `pool` words are equal (they move in lockstep) and then increments every
/// one of them. Any isolation or atomicity failure breaks either the
/// in-transaction assertion or the final count.
fn run_invariant_workload(
    kind: SystemKind,
    threads: usize,
    txns: u64,
    pool: usize,
    work: u64,
    seed: u64,
) {
    let mut cfg = MachineConfig::table4(threads);
    if kind.needs_unbounded_btm() {
        cfg.btm_unbounded = true;
    }
    let shared = TmShared::standard(kind, &cfg);
    let machine = Machine::new(cfg);
    // Pool words on distinct lines (and distinct L1 sets, mostly).
    let addr_of = move |i: usize| Addr(4096 + (i as u64) * 192);
    let r = Sim::new(machine, shared).run(
        (0..threads)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx| {
                    let mut t = TmThread::new(kind, cpu);
                    t.install(ctx);
                    for k in 0..txns {
                        t.transaction(ctx, |tx, ctx| {
                            let first = tx.read(ctx, addr_of(0))?;
                            for i in 1..pool {
                                let v = tx.read(ctx, addr_of(i))?;
                                assert_eq!(v, first, "{kind}: torn read of pool word {i}");
                            }
                            tx.work(ctx, work + (seed ^ k) % 17)?;
                            for i in 0..pool {
                                tx.write(ctx, addr_of(i), first + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect(),
    );
    let expected = threads as u64 * txns;
    for i in 0..pool {
        assert_eq!(
            r.machine.peek(addr_of(i)),
            expected,
            "{kind}: pool word {i} lost updates"
        );
    }
}

/// Sweeps random parameter draws of the invariant workload for one system.
fn sweep(kind: SystemKind, base: u64, max_pool: usize, max_work: u64) {
    for_each_seed(base, seed_count(6), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let threads = rng.gen_index(1..5);
        let txns = rng.gen_range(1..13);
        let pool = rng.gen_index(1..max_pool + 1);
        let work = rng.gen_range(0..max_work + 1);
        run_invariant_workload(kind, threads, txns, pool, work, rng.next_u64());
    });
}

#[test]
fn ufo_hybrid_serializable() {
    sweep(SystemKind::UfoHybrid, 0, 6, 200);
}

#[test]
fn ustm_strong_serializable() {
    sweep(SystemKind::UstmStrong, 100, 6, 200);
}

#[test]
fn tl2_serializable() {
    sweep(SystemKind::Tl2, 200, 6, 200);
}

#[test]
fn hytm_serializable() {
    sweep(SystemKind::HyTm, 300, 5, 150);
}

#[test]
fn phtm_serializable() {
    sweep(SystemKind::PhTm, 400, 5, 150);
}

#[test]
fn unbounded_htm_serializable() {
    sweep(SystemKind::UnboundedHtm, 500, 8, 150);
}

#[test]
fn large_pool_overflows_and_still_serializes_on_hybrid() {
    // A pool wider than the small-L1 capacity forces failovers mid-stream.
    let mut cfg = MachineConfig::table4(3);
    cfg.l1 = ufotm::machine::CacheGeometry::new(4, 2);
    let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    let machine = Machine::new(cfg);
    let addr_of = |i: usize| Addr(4096 + (i as u64) * 64);
    let pool = 24usize;
    let r = Sim::new(machine, shared).run(
        (0..3)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    for _ in 0..6 {
                        t.transaction(ctx, |tx, ctx| {
                            let first = tx.read(ctx, addr_of(0))?;
                            for i in 1..pool {
                                let v = tx.read(ctx, addr_of(i))?;
                                assert_eq!(v, first);
                            }
                            for i in 0..pool {
                                tx.write(ctx, addr_of(i), first + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect(),
    );
    for i in 0..pool {
        assert_eq!(r.machine.peek(addr_of(i)), 18);
    }
    assert!(
        r.shared.stats.sw_commits > 0,
        "overflow must have failed over"
    );
}
