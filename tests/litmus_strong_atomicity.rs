//! The paper's Figure 2 litmus tests: the non-intuitive behaviours of
//! weakly-atomic TMs, and how UFO strong atomicity removes them.

use ufotm::prelude::*;
use ufotm::ustm::{nont_store, UstmConfig, UstmShared, UstmTxn};

/// Figure 2b: a plain store to a word adjacent to transactional data in the
/// same line. A weak, eager, line-granularity STM loses it on abort; the
/// strong STM makes the plain store wait.
fn figure_2b(config: UstmConfig) -> u64 {
    let machine = Machine::new(MachineConfig::table4(2));
    let shared = UstmShared::new(config, Addr(1 << 20), 2, 1024);
    let word_a = Addr(0);
    let word_b = Addr(8); // same 64-byte line

    let r = Sim::new(machine, shared).run(vec![
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx);
            txn.write(ctx, word_a, 7).unwrap();
            ctx.work(5_000).unwrap();
            let _ = txn.abort_explicit(ctx);
        }) as ThreadFn<UstmShared>,
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            ctx.set_ufo_enabled(true);
            ctx.work(1_000).unwrap();
            nont_store(ctx, word_b, 99);
        }) as ThreadFn<UstmShared>,
    ]);
    r.machine.peek(word_b)
}

#[test]
fn figure_2b_weak_stm_loses_the_plain_store() {
    // This is the bug the paper motivates with: the abort's line-granular
    // undo clobbers the adjacent plain store.
    assert_eq!(
        figure_2b(UstmConfig::weak()),
        0,
        "expected the lost-update bug"
    );
}

#[test]
fn figure_2b_strong_stm_preserves_the_plain_store() {
    assert_eq!(figure_2b(UstmConfig::default()), 99);
}

/// Figure 2a: privatization. An older transaction detaches an object and
/// then accesses it non-transactionally while a younger, doomed transaction
/// that had written the object unwinds.
///
/// The paper's footnote 2 notes that privatization is safe when commit
/// stalls "until all conflicting transactions complete the abort process" —
/// which is exactly what USTM's blocking, age-ordered contention manager
/// does (the killer waits for the victim's complete rollback, and rollback
/// restores all pre-images before releasing any ownership). So USTM is
/// privatization-safe in *both* atomicity modes, and this litmus asserts
/// that; the Figure 2b granularity bug above is where weak atomicity
/// genuinely differs.
fn figure_2a(config: UstmConfig) -> u64 {
    let ptr = Addr(0);
    let obj = Addr(4096);
    let mut machine = Machine::new(MachineConfig::table4(2));
    machine.poke(ptr, obj.0); // ptr -> obj
    let shared = UstmShared::new(config, Addr(1 << 20), 2, 1024);
    let r = Sim::new(machine, shared).run(vec![
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx); // older: began first
            ctx.work(2_000).unwrap(); // let thread 1 grab the object
            txn.write(ctx, ptr, 0).unwrap(); // kills the younger reader
            txn.commit(ctx).unwrap();
            // Private access, outside any transaction.
            nont_store(ctx, obj, 42);
        }) as ThreadFn<UstmShared>,
        Box::new(move |ctx: &mut Ctx<UstmShared>| {
            ctx.work(200).unwrap();
            let mut txn = UstmTxn::new(1); // younger
            txn.begin(ctx);
            let Ok(p) = txn.read(ctx, ptr) else { return };
            if p == 0 {
                let _ = txn.commit(ctx);
                return;
            }
            if txn.write(ctx, Addr(p), 1).is_err() {
                return; // killed at the barrier: nothing logged yet
            }
            // Linger so the kill lands while we hold the object; we notice
            // at the next barrier and unwind.
            ctx.work(20_000).unwrap();
            if txn.read(ctx, ptr).is_ok() {
                let _ = txn.commit(ctx);
            }
        }) as ThreadFn<UstmShared>,
    ]);
    r.machine.peek(obj)
}

#[test]
fn figure_2a_weak_ustm_is_privatization_safe_by_blocking_cm() {
    // The paper's footnote-2 mitigation is structural in USTM: the
    // privatizer cannot commit until the victim's rollback has fully
    // completed, so the private store always lands last.
    assert_eq!(figure_2a(UstmConfig::weak()), 42);
}

#[test]
fn figure_2a_strong_ustm_is_privatization_safe() {
    assert_eq!(figure_2a(UstmConfig::default()), 42);
}
