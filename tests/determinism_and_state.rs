//! Cross-cutting integration tests: the simulation is deterministic, and
//! order-independent workloads reach identical final states on every
//! system.

use ufotm::prelude::*;
use ufotm::stamp::genome::{self, GenomeParams};
use ufotm::stamp::kmeans::{self, KmeansParams};
use ufotm::stamp::micro::{self, MicroParams};

fn tiny_kmeans() -> KmeansParams {
    KmeansParams {
        points: 96,
        dims: 2,
        clusters: 4,
        iterations: 2,
    }
}

#[test]
fn identical_seeds_give_identical_simulations() {
    for kind in [
        SystemKind::UfoHybrid,
        SystemKind::UstmStrong,
        SystemKind::PhTm,
    ] {
        let a = kmeans::run(&RunSpec::new(kind, 3), &tiny_kmeans());
        let b = kmeans::run(&RunSpec::new(kind, 3), &tiny_kmeans());
        assert_eq!(a.makespan, b.makespan, "{kind}: nondeterministic makespan");
        assert_eq!(a.hw_commits, b.hw_commits, "{kind}");
        assert_eq!(a.sw_commits, b.sw_commits, "{kind}");
        assert_eq!(a.aborts, b.aborts, "{kind}: nondeterministic abort mix");
    }
}

#[test]
fn different_seeds_change_microbenchmark_forcing() {
    let mut s1 = RunSpec::new(SystemKind::UfoHybrid, 2);
    s1.seed = 1;
    let mut s2 = RunSpec::new(SystemKind::UfoHybrid, 2);
    s2.seed = 2;
    let p = MicroParams {
        txns_per_thread: 60,
        ..MicroParams::with_rate(0.5)
    };
    let a = micro::run(&s1, &p);
    let b = micro::run(&s2, &p);
    // Same totals, (almost certainly) different forced subsets.
    assert_eq!(a.total_commits(), b.total_commits());
    assert_ne!(
        (a.forced_failovers, a.makespan),
        (b.forced_failovers, b.makespan),
        "different seeds should perturb the run"
    );
}

#[test]
fn genome_reaches_the_same_list_on_every_system() {
    // The final sorted list is fully determined by the input segments, so
    // every system must converge to it (each run also self-verifies).
    let p = GenomeParams {
        segments: 80,
        segment_space: 1 << 30,
        buckets: 32,
    };
    for kind in [
        SystemKind::Sequential,
        SystemKind::GlobalLock,
        SystemKind::UstmWeak,
        SystemKind::UstmStrong,
        SystemKind::Tl2,
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
    ] {
        let threads = if kind == SystemKind::Sequential { 1 } else { 3 };
        genome::run(&RunSpec::new(kind, threads), &p);
    }
}

#[test]
fn kmeans_accumulators_match_across_systems() {
    // kmeans verification compares against a host-side replay, so passing
    // on two systems proves their final accumulators are identical.
    for kind in [
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::Tl2,
    ] {
        kmeans::run(&RunSpec::new(kind, 4), &tiny_kmeans());
    }
}

#[test]
fn makespan_grows_with_offered_work() {
    let small = kmeans::run(
        &RunSpec::new(SystemKind::UfoHybrid, 2),
        &KmeansParams {
            points: 64,
            dims: 2,
            clusters: 4,
            iterations: 1,
        },
    );
    let large = kmeans::run(
        &RunSpec::new(SystemKind::UfoHybrid, 2),
        &KmeansParams {
            points: 256,
            dims: 2,
            clusters: 4,
            iterations: 1,
        },
    );
    assert!(large.makespan > small.makespan);
}

#[test]
fn engine_quantum_preserves_results_for_private_workloads() {
    // With a conflict-free workload, batched scheduling must not change the
    // simulated outcome (timing is identical; only host-side batching
    // differs).
    let p = MicroParams {
        txns_per_thread: 50,
        ..MicroParams::with_rate(0.0)
    };
    let exact = micro::run(&RunSpec::new(SystemKind::UfoHybrid, 3), &p);
    let mut spec = RunSpec::new(SystemKind::UfoHybrid, 3);
    spec.quantum = 50;
    let batched = micro::run(&spec, &p);
    assert_eq!(exact.makespan, batched.makespan);
    assert_eq!(exact.hw_commits, batched.hw_commits);
}
