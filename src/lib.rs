//! # `ufotm` — a reproduction of the ISCA 2008 UFO hybrid transactional memory
//!
//! This is the facade crate for a full reproduction of Baugh, Neelakantam &
//! Zilles, *"Using Hardware Memory Protection to Build a High-Performance,
//! Strongly-Atomic Hybrid Transactional Memory"* (ISCA 2008), built as a
//! Cargo workspace:
//!
//! * [`machine`] — the simulated hardware: memory, caches, directory
//!   coherence, **UFO** fine-grained protection bits, and **BTM**, the
//!   best-effort hardware TM.
//! * [`sim`] — the deterministic lockstep execution engine.
//! * [`ustm`] — USTM, the strongly-atomic software TM (otable + UFO bits).
//! * [`tl2`] — the TL2 baseline STM.
//! * [`core`] — the paper's contribution: the UFO hybrid, plus HyTM, PhTM,
//!   an idealized unbounded HTM, and lock/serial baselines, all behind one
//!   transaction facade.
//! * [`stamp`] — the evaluation workloads (kmeans, vacation, genome, and
//!   the failover microbenchmark).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record. The `examples/`
//! directory contains runnable walkthroughs; `cargo bench` regenerates
//! every table and figure of the paper's evaluation.
//!
//! ## Quick taste
//!
//! ```
//! use ufotm::prelude::*;
//!
//! // Two CPUs, the paper's hybrid, one shared counter.
//! let cfg = MachineConfig::table4(2);
//! let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
//! let machine = Machine::new(cfg);
//! let result = Sim::new(machine, shared).run(
//!     (0..2)
//!         .map(|cpu| -> ThreadFn<TmShared> {
//!             Box::new(move |ctx| {
//!                 let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
//!                 t.install(ctx);
//!                 for _ in 0..10 {
//!                     t.transaction(ctx, |tx, ctx| {
//!                         let v = tx.read(ctx, Addr(0))?;
//!                         tx.write(ctx, Addr(0), v + 1)
//!                     });
//!                 }
//!             })
//!         })
//!         .collect(),
//! );
//! assert_eq!(result.machine.peek(Addr(0)), 20);
//! assert_eq!(result.shared.stats.hw_commits, 20); // all in hardware
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ufotm_core as core;
pub use ufotm_machine as machine;
pub use ufotm_sim as sim;
pub use ufotm_stamp as stamp;
pub use ufotm_tl2 as tl2;
pub use ufotm_ustm as ustm;

/// The most common imports, in one place.
pub mod prelude {
    pub use ufotm_core::{
        nont_load, nont_store, HybridPolicy, SystemKind, TmShared, TmThread, Tx, TxAbort,
    };
    pub use ufotm_machine::{AbortReason, Addr, Machine, MachineConfig, SwapConfig, UfoBits};
    pub use ufotm_sim::{Ctx, Sim, SimResult, ThreadFn, World};
    pub use ufotm_stamp::harness::{RunOutcome, RunSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = SystemKind::UfoHybrid.label();
        let _ = MachineConfig::table4(1);
    }
}
