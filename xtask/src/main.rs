//! `cargo xtask` — the workspace task runner.
//!
//! The only task today is `analyze`, the static-analysis gate:
//!
//! ```text
//! cargo xtask analyze                   # human report, exit 1 on findings
//! cargo xtask analyze --json out.json   # also write the machine report
//! cargo xtask analyze --baseline FILE   # use an alternate baseline file
//! cargo xtask analyze --write-baseline  # grandfather current findings
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ufotm_analyze as analyze;

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask analyze [--json PATH] [--baseline PATH] [--write-baseline]\n\
         \n\
         Runs the workspace lint passes (see docs/STATIC_ANALYSIS.md):\n\
         {}",
        analyze::lints::LINTS
            .iter()
            .map(|l| format!("  - {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(("analyze", rest)) = args.split_first().map(|(c, r)| (c.as_str(), r)) else {
        return usage();
    };

    let root = repo_root();
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path = root.join("analyze-baseline.txt");
    let mut write_baseline = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => return usage(),
            },
            "--write-baseline" => write_baseline = true,
            _ => return usage(),
        }
    }

    let report = match analyze::analyze_workspace_with_baseline(&root, &baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: error: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let content = analyze::baseline_content(&report.findings);
        if let Err(e) = std::fs::write(&baseline_path, content) {
            eprintln!("analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyze: wrote {} entr(ies) to {}",
            report.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    print!("{}", analyze::render_text(&report));
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, analyze::render_json(&report)) {
            eprintln!("analyze: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
