//@ path: crates/core/src/fixture.rs
//! D5 positive: panicking calls chained onto machine accesses — a
//! chaos-injected fault here kills the run with a context-free panic.

pub fn read_flag(m: &mut Machine, cpu: usize, addr: u64) -> u64 {
    m.load(cpu, addr).unwrap() //~ panicking-machine-access
}

pub fn publish(m: &mut Machine, cpu: usize, addr: u64, v: u64) {
    m.store(cpu, addr, v).expect("store"); //~ panicking-machine-access
    m.btm_end(cpu).unwrap(); //~ panicking-machine-access
}

pub struct Machine;
impl Machine {
    pub fn load(&mut self, _c: usize, _a: u64) -> Result<u64, ()> {
        Ok(0)
    }
    pub fn store(&mut self, _c: usize, _a: u64, _v: u64) -> Result<(), ()> {
        Ok(())
    }
    pub fn btm_end(&mut self, _c: usize) -> Result<(), ()> {
        Ok(())
    }
}
