//@ path: crates/core/src/fixture.rs
//! D5 bound form: the machine-access result is bound to a local first and
//! unwrapped later — the dataflow the chained pattern cannot see. A
//! rebinding with an untracked initializer clears the taint.

pub fn read_flag(m: &mut Machine, cpu: usize, addr: u64) -> u64 {
    let r = m.load(cpu, addr);
    r.unwrap() //~ panicking-machine-access
}

pub fn rebound_is_cleared(m: &mut Machine, cpu: usize, addr: u64) -> u64 {
    let mut r = m.load(cpu, addr);
    r = Ok(0);
    r.unwrap()
}

pub struct Machine;
impl Machine {
    pub fn load(&mut self, _c: usize, _a: u64) -> Result<u64, ()> {
        Ok(0)
    }
}
