//@ path: crates/core/src/fixture.rs
//! D5 negative: the audited routes — `PlainAccess::plain` names the
//! operation, `?`/match handle the error, and unwraps on non-machine
//! results are out of scope.

pub fn read_flag(m: &mut Machine, cpu: usize, addr: u64) -> u64 {
    m.load(cpu, addr).plain("read flag word")
}

pub fn try_publish(m: &mut Machine, cpu: usize, addr: u64, v: u64) -> Result<(), ()> {
    m.store(cpu, addr, v)?;
    match m.btm_end(cpu) {
        Ok(()) => Ok(()),
        Err(()) => Err(()),
    }
}

pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}

pub struct Machine;
impl Machine {
    pub fn load(&mut self, _c: usize, _a: u64) -> Result<u64, ()> {
        Ok(0)
    }
    pub fn store(&mut self, _c: usize, _a: u64, _v: u64) -> Result<(), ()> {
        Ok(())
    }
    pub fn btm_end(&mut self, _c: usize) -> Result<(), ()> {
        Ok(())
    }
}

pub trait Plain {
    fn plain(self, what: &str) -> u64;
}
impl Plain for Result<u64, ()> {
    fn plain(self, _what: &str) -> u64 {
        self.unwrap_or(0)
    }
}
