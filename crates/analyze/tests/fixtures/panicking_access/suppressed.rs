//@ path: crates/core/src/fixture.rs
//! D5 suppressed: an unwrap justified by construction.

pub fn boot_word(m: &mut Machine, addr: u64) -> u64 {
    // analyze: allow(panicking-machine-access) -- boot-time read before chaos injection is armed; a fault here is unreachable by construction.
    m.load(0, addr).unwrap()
}

pub struct Machine;
impl Machine {
    pub fn load(&mut self, _c: usize, _a: u64) -> Result<u64, ()> {
        Ok(0)
    }
}
