//@ path: crates/native/src/fixture.rs
//! D10 positive: undocumented `unsafe` sites — an unexplained unsafe is
//! an unreviewable one.

pub unsafe fn read_word(p: *const u64) -> u64 { //~ unsafe-without-safety-comment
    unsafe { *p } //~ unsafe-without-safety-comment
}

pub struct Cell(u64);

unsafe impl Sync for Cell {} //~ unsafe-without-safety-comment
