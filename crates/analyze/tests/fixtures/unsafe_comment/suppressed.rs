//@ path: crates/native/src/fixture.rs
//! D10 suppressed: a justified allow marker instead of a SAFETY comment
//! (e.g. a generated shim whose contract lives at the definition site).

pub unsafe fn ffi_shim() {} // analyze: allow(unsafe-without-safety-comment) -- generated binding shim; the contract is documented on the foreign definition.
