//@ path: crates/native/src/fixture.rs
//! D10 negative: every unsafe site justified, one per accepted comment
//! position (contiguous block above, run with a lead-in line, trailing
//! same-line).

// SAFETY: caller contract — `p` must be valid for reads and 8-aligned.
pub unsafe fn read_word(p: *const u64) -> u64 {
    // The deref is the whole point of the function;
    // SAFETY: forwarded caller contract.
    unsafe { *p }
}

pub struct Cell(u64);

unsafe impl Sync for Cell {} // SAFETY: the interior word is never mutated.
