//@ path: crates/ustm/src/fixture.rs
//! D1 suppressed: a justified order-insensitive sweep.
// analyze: allow(host-nondeterminism) -- hot-path membership state; the only iteration below is allow-marked order-insensitive.
use std::collections::HashSet;

pub struct Tracker {
    seen: HashSet<u64>,
}

impl Tracker {
    pub fn total(&self) -> u64 {
        // analyze: allow(nondet-iteration) -- order-insensitive: summation commutes and charges no per-element cycles.
        self.seen.iter().sum()
    }
}
