//@ path: crates/ustm/src/fixture.rs
//! D1 negative: BTree collections iterate in key order (deterministic),
//! and membership tests on hash collections are order-free.
use std::collections::BTreeMap;

pub struct OwnerTable {
    entries: BTreeMap<u64, u64>,
}

impl OwnerTable {
    pub fn release_all(&mut self) {
        for (&addr, &owner) in self.entries.iter() {
            release(addr, owner);
        }
    }
}

fn release(_a: u64, _o: u64) {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash_iterate() {
        let m: HashMap<u64, u64> = HashMap::new();
        for _ in m.iter() {}
    }
}
