//@ path: crates/ustm/src/fixture.rs
//! D1 positive: hasher-ordered iteration in a cycle-charged crate.
use std::collections::{HashMap, HashSet}; //~ host-nondeterminism

pub struct OwnerTable {
    entries: HashMap<u64, u64>,
    parked: HashSet<usize>,
}

impl OwnerTable {
    pub fn release_all(&mut self) {
        for (&addr, &owner) in self.entries.iter() { //~ nondet-iteration
            release(addr, owner);
        }
        self.parked.retain(|&cpu| cpu != 0); //~ nondet-iteration
    }

    pub fn wake(&mut self) {
        for &cpu in &self.parked { //~ nondet-iteration
            kick(cpu);
        }
    }
}

fn release(_a: u64, _o: u64) {}
fn kick(_c: usize) {}
