//@ path: crates/machine/src/fixture.rs
//! Meta-fixture: the PR-4 regression, replayed.
//!
//! PR 4's owner-mask maintenance used `owners |= 1 << cpu` in the
//! ownership table. At 64 simulated CPUs the shift amount wrapped
//! (release builds mask the shift count), so CPU 64 aliased CPU 0's
//! ownership bit and conflict resolution silently dropped a UFO restore.
//! D2 must catch the raw shift wherever it reappears.

pub struct OwnerEntry {
    owners: u64,
}

impl OwnerEntry {
    pub fn add_owner(&mut self, cpu: usize) {
        self.owners |= 1 << cpu; //~ unchecked-cpu-shift
    }

    pub fn drop_owner(&mut self, cpu: usize) {
        self.owners &= !(1u64 << cpu); //~ unchecked-cpu-shift
    }
}
