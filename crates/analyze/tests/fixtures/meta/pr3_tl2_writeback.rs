//@ path: crates/tl2/src/fixture.rs
//! Meta-fixture: the PR-3 regression, replayed.
//!
//! PR 3 kept the TL2 write log in a `HashMap` and published it with
//! `for (&addr, &val) in log.iter()` at commit. Store order reached the
//! simulated memory system in hasher order, so two runs of the *same
//! seed* charged coherence traffic in different interleavings and the
//! bit-identical replay check failed. D1 (and D3, at the import) must
//! both catch the pattern if it is ever reintroduced.
use std::collections::HashMap; //~ host-nondeterminism

pub struct WriteLog {
    entries: HashMap<u64, u64>,
}

impl WriteLog {
    pub fn record(&mut self, addr: u64, val: u64) {
        self.entries.insert(addr, val);
    }

    pub fn publish(&mut self, mem: &mut [u64]) {
        for (&addr, &val) in self.entries.iter() { //~ nondet-iteration
            mem[addr as usize] = val;
        }
        self.entries.clear();
    }
}
