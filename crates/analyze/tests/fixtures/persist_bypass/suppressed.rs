//@ path: crates/machine/src/fixture.rs
//! D6 suppressed: the funnel itself — the one sanctioned direct write.

pub fn mem_write(m: &mut Machine, addr: u64, v: u64) {
    // analyze: allow(persist-bypass) -- the interception point itself: the one sanctioned direct write; durability comes only from flush+fence.
    m.mem.write(addr, v);
}

pub struct Mem;
impl Mem {
    pub fn write(&mut self, _a: u64, _v: u64) {}
}

pub struct Machine {
    pub mem: Mem,
}
