//@ path: crates/machine/src/fixture.rs
//! D6 positive: direct `mem.write` calls outside the audited `mem_write`
//! funnel — the durable image and persistence accounting never see them.

pub fn commit_word(m: &mut Machine, addr: u64, v: u64) {
    m.mem.write(addr, v); //~ persist-bypass
}

pub fn scribble(mem: &mut Mem, addr: u64, v: u64) {
    mem.write(addr, v); //~ persist-bypass
}

pub struct Mem;
impl Mem {
    pub fn write(&mut self, _a: u64, _v: u64) {}
}

pub struct Machine {
    pub mem: Mem,
}
