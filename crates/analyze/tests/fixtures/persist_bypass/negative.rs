//@ path: crates/machine/src/fixture.rs
//! D6 negative: stores routed through the audited funnel, reads of the
//! memory image, and `write` calls on non-`mem` receivers are all fine.

pub fn commit_word(m: &mut Machine, addr: u64, v: u64) {
    m.mem_write(addr, v);
}

pub fn inspect(m: &Machine, addr: u64) -> u64 {
    m.mem.read(addr)
}

pub fn log_line(sink: &mut Sink, line: u64) {
    sink.write(line);
}

pub struct Mem;
impl Mem {
    pub fn read(&self, _a: u64) -> u64 {
        0
    }
    pub fn write(&mut self, _a: u64, _v: u64) {}
}

pub struct Machine {
    pub mem: Mem,
}
impl Machine {
    pub fn mem_write(&mut self, a: u64, v: u64) {
        // The real funnel carries its own allow marker; this fixture only
        // needs the call-site side to stay quiet.
        let _ = (a, v);
    }
}

pub struct Sink;
impl Sink {
    pub fn write(&mut self, _line: u64) {}
}
