//@ path: crates/core/src/fixture.rs
//! D4 positive: merges that can silently drop a newly added counter.

pub struct RunStats {
    pub commits: u64,
    pub aborts: u64,
    pub stalls: u64,
}

impl RunStats {
    pub fn merge(&mut self, other: &RunStats) { //~ stats-merge-exhaustiveness
        self.commits += other.commits;
        self.aborts += other.aborts;
        // `stalls` forgotten — exactly the bug D4 exists to catch.
    }
}

pub struct PhaseStats {
    pub cycles: u64,
    pub retries: u64,
}

impl PhaseStats {
    pub fn merge(&mut self, other: &PhaseStats) { //~ stats-merge-exhaustiveness
        // A rest pattern defeats the exhaustiveness guarantee.
        let PhaseStats { cycles, .. } = *other;
        self.cycles += cycles;
    }
}
