//@ path: crates/core/src/fixture.rs
//! D4 suppressed: a `merge` that is not a field-wise stats fold.

pub struct Interval {
    pub lo: u64,
    pub hi: u64,
}

impl Interval {
    // analyze: allow(stats-merge-exhaustiveness) -- not a stats fold: hull of two intervals, both fields are read via min/max below.
    pub fn merge(&mut self, other: &Interval) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}
