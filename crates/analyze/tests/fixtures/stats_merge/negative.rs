//@ path: crates/core/src/fixture.rs
//! D4 negative: the destructuring merge — adding a field without
//! aggregating it becomes a compile error.

pub struct RunStats {
    pub commits: u64,
    pub aborts: u64,
    pub stalls: u64,
}

impl RunStats {
    pub fn merge(&mut self, other: &RunStats) {
        let RunStats {
            commits,
            aborts,
            stalls,
        } = *other;
        self.commits += commits;
        self.aborts += aborts;
        self.stalls += stalls;
    }
}

// Unrelated functions whose names merely start with "merge" are not merges.
pub fn merge_and_aggregate(a: u64, b: u64) -> u64 {
    a + b
}
