//@ path: crates/machine/src/fixture.rs
//! D2 positive: raw CPU-indexed shifts that wrap at cpu >= 64.

pub fn owner_mask(cpu: usize) -> u64 {
    1u64 << cpu //~ unchecked-cpu-shift
}

pub fn add_waiter(mask: &mut u64, cpu: usize) {
    *mask |= 1 << cpu; //~ unchecked-cpu-shift
}

pub fn page_bit(slot: usize) -> usize {
    1usize << (slot % 64) //~ unchecked-cpu-shift
}
