//@ path: crates/machine/src/fixture.rs
//! D2 negative: constant shifts cannot overflow by CPU id; the checked
//! helper's own body is the one place the raw shift may live; shifts of a
//! non-one base (already a mask) are not CPU-bit constructions.

pub const MEM_WORDS: u64 = 1 << 22;

pub fn cpu_bit(cpu: usize) -> u64 {
    debug_assert!(cpu < 64);
    1u64 << (cpu & 63)
}

pub fn scaled(mask: u64, by: u32) -> u64 {
    mask << by
}

pub fn half_lines() -> u64 {
    1u64 << 16
}
