//@ path: crates/machine/src/fixture.rs
//! D2 suppressed: a shift whose amount is proven in range by construction.

pub fn low_bits(n: u32) -> u64 {
    let n = n.min(63);
    // analyze: allow(unchecked-cpu-shift) -- n is clamped to 63 on the previous line, so the shift cannot wrap.
    (1u64 << n) - 1
}
