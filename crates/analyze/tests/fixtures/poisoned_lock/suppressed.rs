//@ path: crates/native/src/fixture.rs
//! D8 suppressed: an unwrap justified by construction.

use std::sync::Mutex;

pub fn boot_census(slots: &Mutex<Vec<u64>>) -> usize {
    // analyze: allow(poisoned-lock-cascade) -- taken once on the main thread before any worker exists; nothing can have died holding it.
    slots.lock().unwrap().len()
}
