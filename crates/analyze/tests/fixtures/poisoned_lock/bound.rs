//@ path: crates/native/src/fixture.rs
//! D8 bound form: the lock result is bound to a local first and unwrapped
//! later. Shadowing the binding with an untracked initializer clears it.

use std::sync::Mutex;

pub fn enter(gate: &Mutex<u64>) -> u64 {
    let g = gate.lock();
    *g.unwrap() //~ poisoned-lock-cascade
}

pub fn shadowed_is_cleared(gate: &Mutex<u64>) -> u64 {
    let g = gate.lock();
    drop(g);
    let g = Some(1u64);
    g.unwrap()
}
