//@ path: crates/native/src/fixture.rs
//! D8 positive: unwrapped lock acquisitions in a real-thread crate — a
//! chaos-injected death while holding the mutex poisons it, and these
//! unwraps cascade that one death into a panic on every survivor.

use std::sync::Mutex;

pub fn enter(gate: &Mutex<u64>) -> u64 {
    *gate.lock().unwrap() //~ poisoned-lock-cascade
}

pub fn stamp(gate: &Mutex<u64>, v: u64) {
    *gate.lock().expect("serial gate") = v; //~ poisoned-lock-cascade
}
