//@ path: crates/native/src/fixture.rs
//! D8 negative: the audited routes — `chaos::lock_recover` hands back
//! the guard (poisoned or not) plus a recovery flag, an explicit match
//! on the `PoisonError` handles it by hand, and unwraps on non-lock
//! results are out of scope.

use std::sync::{Mutex, MutexGuard};

pub fn enter(gate: &Mutex<u64>) -> u64 {
    let (g, _was_poisoned) = lock_recover(gate);
    *g
}

pub fn enter_by_hand(gate: &Mutex<u64>) -> u64 {
    match gate.lock() {
        Ok(g) => *g,
        Err(poison) => *poison.into_inner(),
    }
}

pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}

fn lock_recover<T>(m: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match m.lock() {
        Ok(g) => (g, false),
        Err(poison) => (poison.into_inner(), true),
    }
}
