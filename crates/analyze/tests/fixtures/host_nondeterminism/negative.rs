//@ path: crates/sim/src/fixture.rs
//! D3 negative: the simulated clock and RNG are fine, BTree collections
//! are fine, and host tooling crates (bench/xtask/analyze) are out of
//! scope entirely.
use std::collections::BTreeMap;

pub struct Sampler {
    points: BTreeMap<u64, u64>,
    rng: u64,
}

impl Sampler {
    pub fn next(&mut self, now_cycles: u64) -> u64 {
        // splitmix64 step: deterministic, seeded from the config.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.points.insert(now_cycles, self.rng);
        self.rng
    }
}
