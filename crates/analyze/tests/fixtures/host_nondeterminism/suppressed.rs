//@ path: crates/sim/src/fixture.rs
//! D3 suppressed: a justified hash-collection import.
// analyze: allow(host-nondeterminism) -- membership-only scratch set on a cold path; never iterated, so hasher order is unobservable.
use std::collections::HashSet;

pub fn dedup_count(xs: &[u64]) -> usize {
    let mut seen = HashSet::new();
    xs.iter().filter(|x| seen.insert(**x)).count()
}
