//@ path: crates/sim/src/fixture.rs
//! D3 positive: host clocks, OS entropy, and hash-randomized collections
//! inside the deterministic simulation scope.
use std::collections::HashMap; //~ host-nondeterminism
use std::time::Instant; //~ host-nondeterminism

pub fn time_slice() -> u64 {
    let t = Instant::now(); //~ host-nondeterminism
    t.elapsed().as_nanos() as u64
}

pub fn scratch() -> std::collections::HashSet<u64> { //~ host-nondeterminism
    std::collections::HashSet::new() //~ host-nondeterminism
}

pub fn cache() -> HashMap<u64, u64> {
    HashMap::new()
}
