//@ path: crates/machine/src/fixture.rs
//! Suppression hygiene: a justified marker that matches no finding rots —
//! the engine flags it so stale allows get deleted.

pub fn constant_mask() -> u64 {
    // analyze: allow(unchecked-cpu-shift) -- constant shifts never fire this lint in the first place //~ unused-suppression
    1u64 << 16
}
