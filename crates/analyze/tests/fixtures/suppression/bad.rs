//@ path: crates/machine/src/fixture.rs
//! Suppression hygiene: a marker without `-- <reason>` suppresses nothing
//! and is itself a finding; so is a marker naming an unknown lint.

pub fn owner_mask(cpu: usize) -> u64 {
    1u64 << cpu // analyze: allow(unchecked-cpu-shift) //~ bad-suppression //~ unchecked-cpu-shift
}

pub fn other_mask(cpu: usize) -> u64 {
    // analyze: allow(no-such-lint) -- typo in the lint name //~ bad-suppression
    1u64 << cpu //~ unchecked-cpu-shift
}
