//@ path: crates/native/src/fixture.rs
//! Meta pass negative: `native` is host-exempt (its justification lives in
//! HOST_EXEMPT), so host clocks here draw no finding at all.
use std::time::Instant;

pub fn elapsed_ns(start: Instant) -> u128 {
    start.elapsed().as_nanos()
}
