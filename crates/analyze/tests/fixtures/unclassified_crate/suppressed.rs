//@ path: crates/incubating/src/lib.rs
//! Meta pass suppressed: a crate whose classification is still being
//! decided can carry a justified allow marker on its first code line.
// analyze: allow(unclassified-crate) -- incubating crate, classification tracked in the PR that lands it; remove before merge.
pub fn placeholder() -> u64 {
    7
}
