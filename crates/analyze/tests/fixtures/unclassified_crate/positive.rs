//@ path: crates/mystery/src/lib.rs
//! Meta pass positive: `mystery` appears in neither DETERMINISTIC nor
//! HOST_EXEMPT, so its first code line is flagged.
pub fn answer() -> u64 { //~ unclassified-crate
    42
}
