//@ path: crates/native/src/fixture.rs
//! D9 suppressed: a crash-path diagnostic allowed with a reason. The
//! handler here is seeded by the explicit marker, not by an rt_sigaction
//! registration site.

// analyze: signal-handler-root
extern "C" fn watchdog_handler() {
    // analyze: allow(signal-unsafe-reachable) -- crash path: the process aborts right after, a torn stderr write is acceptable.
    eprintln!("watchdog fired");
}
