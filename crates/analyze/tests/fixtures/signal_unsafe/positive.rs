//@ path: crates/native/src/fixture.rs
//! D9 positive: allocation, lock, and panic reachable from a SIGSEGV
//! handler registered via rt_sigaction — each one deadlocks or corrupts
//! the process if the signal lands at the wrong instruction.

use std::sync::Mutex;

const SYS_RT_SIGACTION: usize = 13;

static GATE: Mutex<u64> = Mutex::new(0);

fn install() {
    let h = handler as usize;
    let _ = (SYS_RT_SIGACTION, h);
}

extern "C" fn handler() {
    let msg = vec![1u8]; //~ signal-unsafe-reachable
    let _ = msg;
    helper();
}

fn helper() {
    let _g = GATE.lock(); //~ signal-unsafe-reachable
    deeper();
}

fn deeper() {
    panic!("handler-reachable"); //~ signal-unsafe-reachable
}
