//@ path: crates/native/src/fixture.rs
//! D9 negative: the handler-reachable set is atomics-only; an allocation
//! in code the handler can never reach is not flagged.

use std::sync::atomic::{AtomicU64, Ordering};

const SYS_RT_SIGACTION: usize = 13;

static FAULTS: AtomicU64 = AtomicU64::new(0);

fn install() {
    let h = handler as usize;
    let _ = (SYS_RT_SIGACTION, h);
}

extern "C" fn handler() {
    FAULTS.fetch_add(1, Ordering::SeqCst);
    spin();
}

fn spin() {
    while FAULTS.load(Ordering::SeqCst) == 0 {}
}

fn unrelated_host_code() -> String {
    let mut s = String::new();
    s.push('x');
    s
}
