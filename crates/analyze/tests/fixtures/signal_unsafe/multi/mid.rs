//@ path: crates/native/src/classify.rs
//@ group
//! D9 multi-file mid hop: itself clean — it only forwards to the logging
//! helper that actually allocates.

pub fn classify_fault(addr: usize) {
    crate::log::append(addr);
}
