//@ path: crates/native/src/log.rs
//@ group
//! D9 multi-file leaf: the allocation two hops from the handler root.
//! The finding's message names the full call path
//! (`fault_handler -> classify_fault -> append`).

pub fn append(addr: usize) {
    let line = format!("fault at {addr:#x}"); //~ signal-unsafe-reachable
    let _ = line;
}
