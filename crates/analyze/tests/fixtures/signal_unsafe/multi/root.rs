//@ path: crates/native/src/fault.rs
//@ group
//! D9 multi-file root: registers the handler. The violation is two call
//! hops away, in log.rs — only the workspace call graph can see it.

const SYS_RT_SIGACTION: usize = 13;

fn install() {
    let h = fault_handler as usize;
    let _ = (SYS_RT_SIGACTION, h);
}

extern "C" fn fault_handler() {
    crate::classify::classify_fault(0);
}
