//! The ui-fixture harness (trybuild-style, but for lints): every file
//! under `tests/fixtures/` is analyzed as if it lived at the virtual path
//! named by its `//@ path:` first line, and the complete set of findings
//! must equal the `//~ <lint>` expectations annotated on the flagged
//! lines. Positive fixtures prove each lint fires; negative fixtures prove
//! it stays quiet on the idiomatic pattern; suppressed fixtures prove the
//! allow-marker machinery; the meta fixtures replay this repo's actual
//! shipped bugs (PR 3, PR 4) and prove the gate would have caught them.
//!
//! Fixtures carrying a `//@ group` second line are analyzed *together*
//! (all group files in the same directory form one virtual workspace), so
//! the call-graph passes can follow edges across files — that is how the
//! two-hops-from-the-handler D9 case is proven.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ufotm_analyze::{
    analyze_file, analyze_sources, analyze_workspace, render_text, Report, SourceFile,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Reads the `//@ path: <virtual path>` directive off the first line.
fn virtual_path(src: &str, file: &Path) -> String {
    let first = src.lines().next().unwrap_or_default();
    first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ path: …`", file.display()))
        .trim()
        .to_string()
}

/// Collects `//~ <lint>` expectations: each occurrence on a line expects
/// that lint to fire on that line. Multiple `//~` markers per line allowed.
fn expectations(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (idx, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            rest = &rest[pos + 3..];
            let lint = rest
                .split_whitespace()
                .next()
                .expect("`//~` must be followed by a lint name");
            out.insert((idx as u32 + 1, lint.to_string()));
        }
    }
    out
}

/// Whether the fixture opts into directory-group analysis.
fn is_group(src: &str) -> bool {
    src.lines().nth(1).is_some_and(|l| l.trim() == "//@ group")
}

type LineLints = BTreeSet<(u32, String)>;

fn run_fixture(file: &Path) -> (Report, LineLints, LineLints) {
    let src = fs::read_to_string(file).unwrap();
    let report = analyze_file(&virtual_path(&src, file), &src);
    let actual: BTreeSet<(u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.lint.to_string()))
        .collect();
    let expected = expectations(&src);
    (report, actual, expected)
}

fn check_fixture(file: &Path) {
    let (report, actual, expected) = run_fixture(file);
    assert_eq!(
        actual,
        expected,
        "\n== {} ==\nmissing: {:?}\nunexpected: {:?}\nfull report:\n{}",
        file.display(),
        expected.difference(&actual).collect::<Vec<_>>(),
        actual.difference(&expected).collect::<Vec<_>>(),
        render_text(&report),
    );
    let stem = file.file_stem().unwrap().to_string_lossy();
    if stem == "suppressed" {
        assert!(
            report.suppressed > 0,
            "{}: a suppressed fixture must actually exercise a marker",
            file.display()
        );
    }
    if stem == "negative" {
        assert_eq!(
            report.suppressed,
            0,
            "{}: a negative fixture must be quiet without any markers",
            file.display()
        );
    }
}

/// Analyzes the files of one `//@ group` directory as a single virtual
/// workspace; expectations are matched on (virtual path, line, lint).
fn check_group(dir: &Path, files: &[PathBuf]) {
    let mut sources = Vec::new();
    let mut expected: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for file in files {
        let src = fs::read_to_string(file).unwrap();
        let vp = virtual_path(&src, file);
        for (line, lint) in expectations(&src) {
            expected.insert((vp.clone(), line, lint));
        }
        sources.push(SourceFile::new(&vp, &src));
    }
    let report = analyze_sources(sources, &[]);
    let actual: BTreeSet<(String, u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.lint.to_string()))
        .collect();
    assert_eq!(
        actual,
        expected,
        "\n== group {} ==\nmissing: {:?}\nunexpected: {:?}\nfull report:\n{}",
        dir.display(),
        expected.difference(&actual).collect::<Vec<_>>(),
        actual.difference(&expected).collect::<Vec<_>>(),
        render_text(&report),
    );
}

/// Every fixture on disk, so a new fixture can never be silently skipped.
fn all_fixtures() -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![fixtures_dir()];
    while let Some(d) = stack.pop() {
        for e in fs::read_dir(&d).unwrap() {
            let p = e.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn every_fixture_matches_its_expectations() {
    let fixtures = all_fixtures();
    // 10 lints × {positive, negative, suppressed} + 2 suppression-hygiene
    // + 2 meta regressions + 2 bound-form (D5/D8) + 3 multi-file D9 group.
    assert_eq!(
        fixtures.len(),
        39,
        "fixture inventory drifted: {fixtures:?}"
    );
    let mut groups: std::collections::BTreeMap<PathBuf, Vec<PathBuf>> =
        std::collections::BTreeMap::new();
    for f in &fixtures {
        let src = fs::read_to_string(f).unwrap();
        if is_group(&src) {
            groups
                .entry(f.parent().unwrap().to_path_buf())
                .or_default()
                .push(f.clone());
        } else {
            check_fixture(f);
        }
    }
    assert!(!groups.is_empty(), "the multi-file D9 group went missing");
    for (dir, files) in &groups {
        assert!(
            files.len() > 1,
            "a single-file `//@ group` defeats its purpose: {}",
            dir.display()
        );
        check_group(dir, files);
    }
}

/// The PR-3 regression (hasher-ordered TL2 write-back) is caught by D1 at
/// the iteration and D3 at the import.
#[test]
fn meta_pr3_hashmap_writeback_is_caught() {
    let file = fixtures_dir().join("meta/pr3_tl2_writeback.rs");
    let (report, _, _) = run_fixture(&file);
    let lints: BTreeSet<&str> = report.findings.iter().map(|f| f.lint).collect();
    assert!(
        lints.contains("nondet-iteration"),
        "D1 must flag the write-back loop: {lints:?}"
    );
    assert!(
        lints.contains("host-nondeterminism"),
        "D3 must flag the HashMap import: {lints:?}"
    );
}

/// The PR-4 regression (owner-mask `1 << cpu` wrap at cpu >= 64) is caught
/// by D2 at every raw shift.
#[test]
fn meta_pr4_shift_overflow_is_caught() {
    let file = fixtures_dir().join("meta/pr4_shift_overflow.rs");
    let (report, _, _) = run_fixture(&file);
    let shifts = report
        .findings
        .iter()
        .filter(|f| f.lint == "unchecked-cpu-shift")
        .count();
    assert_eq!(shifts, 2, "both raw shifts must be flagged");
}

fn live_guard_source() -> (String, String) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let path = "crates/native/src/guard.rs";
    (
        path.to_string(),
        fs::read_to_string(root.join(path)).unwrap(),
    )
}

/// The acceptance demo for D10, run against the *live* guard module:
/// deleting its SAFETY comments makes the gate fail.
#[test]
fn meta_guard_without_safety_comments_is_caught() {
    let (path, src) = live_guard_source();
    assert!(
        analyze_file(&path, &src).is_clean(),
        "live guard must be clean"
    );
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("SAFETY:"))
        .collect::<Vec<_>>()
        .join("\n");
    let report = analyze_file(&path, &stripped);
    let d10 = report
        .findings
        .iter()
        .filter(|f| f.lint == "unsafe-without-safety-comment")
        .count();
    assert!(
        d10 >= 8,
        "stripping every SAFETY comment must surface the unsafe sites, got {d10}:\n{}",
        render_text(&report)
    );
}

/// The acceptance demo for D9, run against the *live* guard module: an
/// allocation slipped into a `segv_handler`-reachable function makes the
/// gate fail, and the finding names the handler root.
#[test]
fn meta_guard_handler_reachable_alloc_is_caught() {
    let (path, src) = live_guard_source();
    let needle = "fn sched_yield() {";
    assert!(src.contains(needle), "guard.rs lost its sched_yield helper");
    let sabotaged = src.replace(
        needle,
        "fn sched_yield() {\n        let _boom: Vec<u8> = Vec::new();",
    );
    let report = analyze_file(&path, &sabotaged);
    let d9: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "signal-unsafe-reachable")
        .collect();
    assert!(
        !d9.is_empty(),
        "Vec::new() in sched_yield must be flagged:\n{}",
        render_text(&report)
    );
    assert!(
        d9.iter().any(|f| f.message.contains("segv_handler")),
        "the finding must name the handler root: {:?}",
        d9
    );
}

/// The gate itself: the live workspace must lint clean. Running this from
/// the tier-1 suite means `cargo test` fails the moment a violation lands,
/// even before CI's dedicated `cargo xtask analyze` step.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap();
    let report = analyze_workspace(root).unwrap();
    assert!(
        report.is_clean(),
        "workspace has unsuppressed findings:\n{}",
        render_text(&report)
    );
    assert_eq!(
        report.stale_baseline, 0,
        "analyze-baseline.txt has stale entries"
    );
    assert!(report.files >= 50, "discovery walked too few files");
}
