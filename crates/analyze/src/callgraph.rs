//! A workspace-wide function and call-graph index.
//!
//! The single-file token passes (D1–D8) can only see invariants that are
//! local to one statement. The guard's async-signal-safety claim is not:
//! "nothing reachable from the SIGSEGV handler allocates, locks, or
//! panics" is a property of the *call graph*, and checking it needs the
//! whole workspace lexed at once. This module builds that index:
//!
//! * every `fn` definition, per crate, with its body's token range;
//! * intra-workspace call edges, resolved **by name within the defining
//!   crate** (the workspace has no name resolution, so a call edge means
//!   "some function of this name exists in this crate" — deliberately an
//!   over-approximation);
//! * signal-handler roots: functions whose name is taken as a function
//!   pointer inside a body that touches `rt_sigaction`, plus functions
//!   carrying an explicit `analyze: signal-handler-root` marker comment;
//! * cycle-safe reachability with recorded parent edges, so a finding can
//!   print the call path from the root to the offending line.
//!
//! ## What "conservative over method calls" means here
//!
//! A method call `x.f(…)` resolves to *every* function named `f` in the
//! crate — receivers are invisible at token level, so the graph
//! over-approximates rather than miss a real edge. The one carve-out is
//! [`PRIMITIVE_METHODS`]: method names that are overwhelmingly std
//! atomic/pointer primitives (`load`, `store`, `fetch_add`, `cast`, …).
//! Without the carve-out every `AtomicU64::load` in a handler would
//! resolve to the heap's `fn load` and drag the whole crate into the
//! handler's reachable set; with it, a handler that really does call a
//! workspace `load` goes unchecked — that hole is documented in
//! `docs/STATIC_ANALYSIS.md` and is the price of name-only resolution.
//! Qualified calls whose path starts at `std`/`core`/`alloc` are external
//! by construction and never resolve into the workspace.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::SourceFile;

/// Method names assumed to be std atomic/pointer/iterator primitives:
/// `.name(…)` calls through these do **not** resolve to same-named
/// workspace functions (see module docs for the trade-off).
pub const PRIMITIVE_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "cast",
    "add",
    "sub",
    "offset",
    "read",
    "write",
    "read_volatile",
    "write_volatile",
];

/// One `fn` definition found in the workspace.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Owning crate (path-derived, as [`crate::crate_of`]).
    pub crate_name: String,
    /// The function's name.
    pub name: String,
    /// Index of the defining file in the slice passed to [`CallGraph::build`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the body, *including* the braces.
    /// `start == end` for bodyless trait signatures.
    pub body: (usize, usize),
    /// Whether this function is a signal-handler root.
    pub root: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function definition, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Call edges: `edges[i]` lists the indices of functions `fns[i]` may
    /// call (name-resolved, deduplicated, sorted).
    pub edges: Vec<Vec<usize>>,
    /// (crate, fn name) → indices into `fns` (a name may be defined by
    /// several impls; resolution takes the union).
    by_name: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files` (the same slice the passes run on;
    /// file indices in [`FnDef::file`] refer to it).
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut g = CallGraph::default();
        for (fi, f) in files.iter().enumerate() {
            collect_fns(fi, f, &mut g);
        }
        for (i, d) in g.fns.iter().enumerate() {
            let key = (d.crate_name.clone(), d.name.clone());
            g.by_name.entry(key).or_default().push(i);
        }
        g.edges = g
            .fns
            .iter()
            .map(|d| collect_edges(d, &files[d.file], &g.by_name))
            .collect();
        mark_sigaction_roots(&mut g, files);
        g
    }

    /// Indices of every signal-handler root.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| self.fns[i].root).collect()
    }

    /// Cycle-safe BFS from `start`: returns, for every reachable function
    /// index, the index of the function it was first reached *from*
    /// (`start` maps to itself). Visiting each node once makes recursion
    /// and mutual recursion terminate.
    #[must_use]
    pub fn reachable_from(&self, start: usize) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        parent.insert(start, start);
        let mut queue = vec![start];
        while let Some(n) = queue.pop() {
            for &callee in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(n);
                    queue.push(callee);
                }
            }
        }
        parent
    }

    /// The call path `root → … → target` as function names, following the
    /// parent map from [`CallGraph::reachable_from`].
    #[must_use]
    pub fn path_to(&self, parent: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Scans one file for `fn` definitions. Nested `fn`s are collected in
/// their own right; their tokens also remain inside the enclosing body's
/// range, which only widens (never narrows) reachability.
fn collect_fns(fi: usize, f: &SourceFile, g: &mut CallGraph) {
    let t = &f.tokens;
    // Marker comments: `analyze: signal-handler-root` governs the next
    // `fn` at or below its line (doc comments are prose, not markers).
    let marker_lines: Vec<u32> = f
        .comments
        .iter()
        .filter(|c| !c.text.starts_with('/') && !c.text.starts_with('!'))
        .filter(|c| {
            c.text
                .split("analyze:")
                .nth(1)
                .is_some_and(|r| r.trim_start().starts_with("signal-handler-root"))
        })
        .map(|c| c.line)
        .collect();
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_ident("fn") && t.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
        // `unsafe(naked)` lexes `unsafe ( naked )`; an `fn` preceded by
        // `(` can only be a fn-pointer type like `Option<fn(usize)>`,
        // never a definition — but those have no name token anyway.
        {
            let name = t[i + 1].text.clone();
            let line = t[i].line;
            // Find the body's `{` (or `;` for a bodyless signature),
            // skipping the parameter list and any return type.
            let mut j = i + 2;
            let mut depth = 0i32;
            let body = loop {
                let Some(tok) = t.get(j) else {
                    break (j, j);
                };
                if tok.is_punct("(") || tok.is_punct("[") {
                    depth += 1;
                } else if tok.is_punct(")") || tok.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && tok.is_punct(";") {
                    break (j, j);
                } else if depth == 0 && tok.is_punct("{") {
                    // Balance the braces to the body's end.
                    let mut b = 1i32;
                    let mut k = j + 1;
                    while k < t.len() && b > 0 {
                        if t[k].is_punct("{") {
                            b += 1;
                        } else if t[k].is_punct("}") {
                            b -= 1;
                        }
                        k += 1;
                    }
                    break (j, k);
                }
                j += 1;
            };
            let root = marker_lines
                .iter()
                .any(|&m| m < line && f.code_lines.range(m + 1..=line).next() == Some(&line));
            g.fns.push(FnDef {
                crate_name: f.crate_name.clone(),
                name,
                file: fi,
                line,
                body,
                root,
            });
        }
        i += 1;
    }
}

/// Extracts the call edges of one function body.
fn collect_edges(
    d: &FnDef,
    f: &SourceFile,
    by_name: &BTreeMap<(String, String), Vec<usize>>,
) -> Vec<usize> {
    let t = &f.tokens;
    let mut out: Vec<usize> = Vec::new();
    let resolve = |name: &str, out: &mut Vec<usize>| {
        if let Some(ids) = by_name.get(&(d.crate_name.clone(), name.to_string())) {
            out.extend(ids.iter().copied());
        }
    };
    let (start, end) = d.body;
    for i in start..end.min(t.len()) {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        let name = t[i].text.as_str();
        let prev_dot = i > start && t[i - 1].is_punct(".");
        let next_paren = t.get(i + 1).is_some_and(|x| x.is_punct("("));
        // Turbofish method call: `.cast::<u8>(…)`.
        let next_turbofish = t.get(i + 1).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 3).is_some_and(|x| x.is_punct("<"));
        if prev_dot && (next_paren || next_turbofish) {
            // Method call: conservative name resolution, minus the std
            // primitive carve-out.
            if !PRIMITIVE_METHODS.contains(&name) {
                resolve(name, &mut out);
            }
            continue;
        }
        if next_paren && !prev_dot {
            // Plain or path-qualified call. `fn name(` is the definition
            // itself, not a call.
            if i > start && t[i - 1].is_ident("fn") {
                continue;
            }
            if let Some(first) = path_first_segment(t, i, start) {
                if first == "std" || first == "core" || first == "alloc" {
                    continue; // external, never a workspace edge
                }
            }
            resolve(name, &mut out);
            continue;
        }
        // Function-pointer reference: `name as <type>` (how a handler is
        // handed to `rt_sigaction`).
        if t.get(i + 1).is_some_and(|x| x.is_ident("as")) {
            resolve(name, &mut out);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// For a call at token `i`, walks `seg :: seg :: name` back to the path's
/// first segment (`None` when the name is unqualified).
fn path_first_segment(t: &[crate::lexer::Token], i: usize, start: usize) -> Option<&str> {
    let mut cur = i;
    let mut first: Option<&str> = None;
    while cur >= start + 3
        && t[cur - 1].is_punct(":")
        && t[cur - 2].is_punct(":")
        && t[cur - 3].kind == TokenKind::Ident
    {
        cur -= 3;
        first = Some(t[cur].text.as_str());
    }
    first
}

/// Marks rt_sigaction-registered handlers as roots: inside any body that
/// names `rt_sigaction` (`SYS_RT_SIGACTION`, a libc `sigaction`, …), every
/// workspace function whose name is taken with `name as` is a handler
/// being registered.
fn mark_sigaction_roots(g: &mut CallGraph, files: &[SourceFile]) {
    let mut roots: Vec<usize> = Vec::new();
    for d in &g.fns {
        let f = &files[d.file];
        let t = &f.tokens;
        let (start, end) = d.body;
        let mentions_sigaction = t[start..end.min(t.len())].iter().any(|tok| {
            tok.kind == TokenKind::Ident && tok.text.to_ascii_lowercase().contains("sigaction")
        });
        if !mentions_sigaction {
            continue;
        }
        for i in start..end.min(t.len()) {
            if t[i].kind == TokenKind::Ident && t.get(i + 1).is_some_and(|x| x.is_ident("as")) {
                if let Some(ids) = g.by_name.get(&(d.crate_name.clone(), t[i].text.clone())) {
                    roots.extend(ids.iter().copied());
                }
            }
        }
    }
    for r in roots {
        g.fns[r].root = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> (CallGraph, Vec<SourceFile>) {
        let files = vec![SourceFile::new("crates/native/src/g.rs", src)];
        let g = CallGraph::build(&files);
        (g, files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|d| d.name == name).unwrap()
    }

    #[test]
    fn defs_and_direct_edges() {
        let (g, _) = graph("fn a() { b(); }\nfn b() { c(3); }\nfn c(x: u64) {}\n");
        assert_eq!(g.fns.len(), 3);
        let (a, b, c) = (idx(&g, "a"), idx(&g, "b"), idx(&g, "c"));
        assert_eq!(g.edges[a], vec![b]);
        assert_eq!(g.edges[b], vec![c]);
        assert!(g.edges[c].is_empty());
    }

    #[test]
    fn reachability_is_cycle_safe() {
        // a → b → c → a (cycle) plus c → d; e is unreachable.
        let (g, _) = graph(
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { a(); d(); }\nfn d() {}\nfn e() { a(); }\n",
        );
        let a = idx(&g, "a");
        let reach = g.reachable_from(a);
        let names: Vec<&str> = reach.keys().map(|&i| g.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        let d = idx(&g, "d");
        assert_eq!(g.path_to(&reach, d), "a -> b -> c -> d");
    }

    #[test]
    fn sigaction_registration_marks_roots() {
        let src = "const SYS_RT_SIGACTION: usize = 13;\n\
                   fn handler() {}\n\
                   fn helper() {}\n\
                   fn install() { let h = handler as usize; let _ = (SYS_RT_SIGACTION, h); }\n";
        let (g, _) = graph(src);
        assert!(g.fns[idx(&g, "handler")].root);
        assert!(!g.fns[idx(&g, "helper")].root);
        assert!(!g.fns[idx(&g, "install")].root);
    }

    #[test]
    fn marker_comment_marks_root() {
        let src = "// analyze: signal-handler-root\nfn h() {}\nfn other() {}\n";
        let (g, _) = graph(src);
        assert!(g.fns[idx(&g, "h")].root);
        assert!(!g.fns[idx(&g, "other")].root);
    }

    #[test]
    fn primitive_methods_and_external_paths_do_not_resolve() {
        let src = "fn load() { panic!(\"workspace load\"); }\n\
                   fn read() {}\n\
                   fn h() { X.load(core::sync::atomic::Ordering::SeqCst); core::ptr::read(p); }\n";
        let (g, _) = graph(src);
        let h = idx(&g, "h");
        assert!(
            g.edges[h].is_empty(),
            "atomic .load and core::ptr::read must not resolve into the workspace: {:?}",
            g.edges[h]
        );
    }

    #[test]
    fn method_calls_resolve_conservatively() {
        let src = "fn publish(&self) {}\nfn h(w: W) { w.publish(); }\n";
        let (g, _) = graph(src);
        let h = idx(&g, "h");
        assert_eq!(g.edges[h], vec![idx(&g, "publish")]);
    }
}
