//! # `ufotm-analyze` — repo-specific static analysis
//!
//! This crate is the engine behind `cargo xtask analyze`: a small,
//! dependency-free lint framework that parses every workspace source file
//! (with the hand-rolled lexer in [`lexer`] — the workspace deliberately has
//! no third-party dependencies, so there is no `syn` to lean on) and runs
//! the protocol passes in [`lints`]. Single-file token passes are joined
//! by workspace-wide passes built on the function/call-graph index in
//! [`callgraph`] (D9's async-signal-safety walk needs to see every crate
//! at once).
//!
//! The rules it enforces are the ones the compiler cannot: determinism of
//! the simulated machine (no hasher-ordered iteration, no host clocks or
//! entropy), the checked `cpu_bit` route for CPU bitmask shifts, exhaustive
//! stats merges, and the audited `PlainAccess::plain` route for panicking
//! machine accesses. Each corresponds to a bug class this repo has shipped
//! and debugged; `docs/STATIC_ANALYSIS.md` tells those stories.
//!
//! ## Suppressions
//!
//! A finding is silenced in place with a justified marker:
//!
//! ```text
//! // analyze: allow(nondet-iteration) -- order-insensitive: <why>
//! ```
//!
//! A standalone marker applies to the next code line; a trailing marker to
//! its own line. A marker without a `-- reason` is itself a finding
//! (`bad-suppression`), as is a marker that matches nothing
//! (`unused-suppression`) — suppressions cannot rot silently.
//!
//! ## Baseline
//!
//! `analyze-baseline.txt` at the repo root grandfathers known findings
//! (tab-separated `lint\tpath\tsnippet` lines). The committed baseline is
//! empty: the workspace lints clean, and CI keeps it that way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod lints;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, Token, TokenKind};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired (one of [`lints::LINTS`] or a pseudo-lint).
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation, including the suggested fix.
    pub message: String,
    /// The trimmed source line (also the baseline matching key).
    pub snippet: String,
}

/// A lexed, test-stripped source file ready for the passes.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Owning crate: `crates/X/src/… → "X"`, `src/… → "root"`,
    /// `xtask/src/… → "xtask"`.
    pub crate_name: String,
    /// Code tokens with `#[cfg(test)]` / `#[test]` items stripped — test
    /// code may freely use host collections and `.unwrap()`.
    pub tokens: Vec<Token>,
    /// All comments (suppression markers live here).
    pub comments: Vec<Comment>,
    /// Lines that carry at least one code token *before* stripping; used to
    /// anchor standalone suppression markers to the next code line.
    pub code_lines: BTreeSet<u32>,
    lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and strips `src` under the given repo-relative `path`.
    #[must_use]
    pub fn new(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        SourceFile {
            path: path.to_string(),
            crate_name: crate_of(path),
            tokens: strip_tests(lexed.tokens),
            comments: lexed.comments,
            code_lines,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// The trimmed text of `line` (1-based), or empty when out of range.
    #[must_use]
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Maps a repo-relative path to its owning crate name.
#[must_use]
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if p.starts_with("xtask/") {
        return "xtask".to_string();
    }
    "root".to_string()
}

/// Cross-file facts the passes need: per crate, the set of identifier names
/// declared with a std `HashMap`/`HashSet` type (D1's iteration targets).
/// Scoped per crate so an unrelated binding of the same name in another
/// crate cannot cause a false positive.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// crate name → binding/field names of hash-ordered collections.
    pub hash_names: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceIndex {
    /// Builds the index over all files.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut idx = WorkspaceIndex::default();
        for f in files {
            // Only files that actually pull in the std hash types: the
            // stamp crate defines its own *simulated* `HashSet` workload
            // structure, which is deterministic and must not be indexed.
            if !uses_std_hash(&f.tokens) {
                continue;
            }
            let names = idx.hash_names.entry(f.crate_name.clone()).or_default();
            let t = &f.tokens;
            for i in 0..t.len() {
                if t[i].kind == TokenKind::Ident
                    && (t[i].text == "HashMap" || t[i].text == "HashSet")
                    && i >= 2
                    && t[i - 2].kind == TokenKind::Ident
                    && (t[i - 1].is_punct(":") || t[i - 1].is_punct("="))
                {
                    // `name: HashMap<…>` (field/param/struct-literal) or
                    // `let name = HashMap::new()` / `with_capacity(…)`.
                    names.insert(t[i - 2].text.clone());
                }
            }
        }
        idx
    }
}

/// Whether the token stream imports or names a std hash-randomized type.
fn uses_std_hash(t: &[Token]) -> bool {
    t.windows(5).any(|w| {
        w[0].is_ident("std")
            && w[1].is_punct(":")
            && w[2].is_punct(":")
            && w[3].is_ident("collections")
            && w[4].is_punct(":")
    })
}

/// Removes `#[cfg(test)]`-gated items and `#[test]` functions from the
/// token stream: test code is allowed to use host collections, raw shifts
/// with assert-checked inputs, and `.unwrap()`.
#[must_use]
pub fn strip_tests(tokens: Vec<Token>) -> Vec<Token> {
    let t = tokens;
    let mut out = Vec::with_capacity(t.len());
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_punct("#") && t.get(i + 1).is_some_and(|x| x.is_punct("[")) {
            let is_cfg_test = t.get(i + 2).is_some_and(|x| x.is_ident("cfg"))
                && t.get(i + 3).is_some_and(|x| x.is_punct("("))
                && t.get(i + 4).is_some_and(|x| x.is_ident("test"))
                && t.get(i + 5).is_some_and(|x| x.is_punct(")"))
                && t.get(i + 6).is_some_and(|x| x.is_punct("]"));
            let is_test = t.get(i + 2).is_some_and(|x| x.is_ident("test"))
                && t.get(i + 3).is_some_and(|x| x.is_punct("]"));
            if is_cfg_test || is_test {
                let mut j = i + if is_cfg_test { 7 } else { 4 };
                // Skip any further attributes on the same item.
                while t.get(j).is_some_and(|x| x.is_punct("#"))
                    && t.get(j + 1).is_some_and(|x| x.is_punct("["))
                {
                    let mut depth = 0i32;
                    while j < t.len() {
                        if t[j].is_punct("[") {
                            depth += 1;
                        } else if t[j].is_punct("]") {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                i = skip_item(&t, j);
                continue;
            }
        }
        out.push(t[i].clone());
        i += 1;
    }
    out
}

/// Skips one item starting at `i`: consumes up to and including either a
/// `;` or a balanced `{ … }` body at the top level.
fn skip_item(t: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct("(") || tok.is_punct("[") {
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && tok.is_punct(";") {
            return j + 1;
        } else if depth == 0 && tok.is_punct("{") {
            let mut b = 1i32;
            let mut k = j + 1;
            while k < t.len() && b > 0 {
                if t[k].is_punct("{") {
                    b += 1;
                } else if t[k].is_punct("}") {
                    b -= 1;
                }
                k += 1;
            }
            return k;
        }
        j += 1;
    }
    j
}

/// One parsed `// analyze: allow(<lint>) -- <reason>` marker.
#[derive(Debug)]
struct Suppression {
    lint: String,
    has_reason: bool,
    known: bool,
    comment_line: u32,
    anchor: u32,
    used: bool,
}

/// Parses the suppression markers of one file, anchoring each to the line
/// it governs.
fn parse_suppressions(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &file.comments {
        // Doc comments (`///…` lexes as text starting with `/`, `//!…`
        // with `!`) are prose *about* the marker syntax, never markers.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(rest) = c.text.split("analyze:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some((lint, after)) = rest.split_once(')') else {
            continue;
        };
        let lint = lint.trim().to_string();
        let reason = after
            .split_once("--")
            .map(|(_, r)| r.trim())
            .unwrap_or_default();
        let anchor = if c.standalone {
            // A standalone marker governs the next line that carries code.
            file.code_lines
                .range(c.line + 1..)
                .next()
                .copied()
                .unwrap_or(c.line)
        } else {
            c.line
        };
        out.push(Suppression {
            known: lints::LINTS.contains(&lint.as_str()),
            lint,
            has_reason: !reason.is_empty(),
            comment_line: c.line,
            anchor,
            used: false,
        });
    }
    out
}

/// One baseline entry: a grandfathered finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The lint name.
    pub lint: String,
    /// Repo-relative path.
    pub path: String,
    /// Trimmed source line at the time the baseline was written. Matching
    /// on the snippet (not the line number) keeps the baseline stable
    /// across unrelated edits to the same file.
    pub snippet: String,
}

/// Parses `analyze-baseline.txt` content. Lines are
/// `lint<TAB>path<TAB>snippet`; blank lines and `#` comments are skipped.
#[must_use]
pub fn parse_baseline(content: &str) -> Vec<BaselineEntry> {
    content
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut it = l.splitn(3, '\t');
            Some(BaselineEntry {
                lint: it.next()?.to_string(),
                path: it.next()?.to_string(),
                snippet: it.next()?.to_string(),
            })
        })
        .collect()
}

/// Serializes findings as baseline content (for `--write-baseline`).
#[must_use]
pub fn baseline_content(findings: &[Finding]) -> String {
    let mut s = String::from(
        "# analyze-baseline.txt — findings grandfathered by `cargo xtask analyze`.\n\
         # Format: lint<TAB>path<TAB>trimmed source line. Regenerate with\n\
         # `cargo xtask analyze --write-baseline`. Keep this file empty: new code\n\
         # must either fix the finding or carry a justified allow marker.\n",
    );
    for f in findings {
        let _ = writeln!(s, "{}\t{}\t{}", f.lint, f.path, f.snippet);
    }
    s
}

/// The result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Actionable findings (unsuppressed, not in the baseline), sorted by
    /// (path, line, lint).
    pub findings: Vec<Finding>,
    /// Findings silenced by justified allow markers.
    pub suppressed: usize,
    /// Suppression counts per lint — the diffable inventory CI uploads, so
    /// a PR that grows the number of justified exceptions shows up in the
    /// artifact diff even though the gate still passes.
    pub suppressed_by_lint: BTreeMap<&'static str, usize>,
    /// Findings silenced by the baseline.
    pub baselined: usize,
    /// Baseline entries that no longer match anything (stale).
    pub stale_baseline: usize,
    /// Files analyzed.
    pub files: usize,
}

impl Report {
    /// Whether the run is clean (gate passes).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs all passes over `files`, applies suppressions and `baseline`, and
/// returns the report. This is the deterministic core: same sources in,
/// same report out, independent of filesystem enumeration order.
#[must_use]
pub fn analyze_sources(mut files: Vec<SourceFile>, baseline: &[BaselineEntry]) -> Report {
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let index = WorkspaceIndex::build(&files);
    // Workspace passes (D9) see every file at once; their findings are
    // bucketed by path so the per-file suppression machinery below governs
    // them exactly like single-file findings.
    let graph = callgraph::CallGraph::build(&files);
    let mut ws_buckets: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    {
        let mut ws: Vec<Finding> = Vec::new();
        lints::run_workspace_passes(&files, &graph, &mut ws);
        for f in ws {
            ws_buckets.entry(f.path.clone()).or_default().push(f);
        }
    }
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        let mut raw: Vec<Finding> = Vec::new();
        lints::run_passes(f, &index, &mut raw);
        if let Some(mut ws) = ws_buckets.remove(&f.path) {
            raw.append(&mut ws);
        }
        let mut sups = parse_suppressions(f);
        raw.retain(|finding| {
            let suppressed = sups.iter_mut().any(|s| {
                let hit =
                    s.known && s.has_reason && s.lint == finding.lint && s.anchor == finding.line;
                if hit {
                    s.used = true;
                }
                hit
            });
            if suppressed {
                report.suppressed += 1;
                *report.suppressed_by_lint.entry(finding.lint).or_default() += 1;
            }
            !suppressed
        });
        findings.append(&mut raw);
        for s in &sups {
            if !s.has_reason {
                findings.push(Finding {
                    lint: lints::BAD_SUPPRESSION,
                    path: f.path.clone(),
                    line: s.comment_line,
                    message: format!(
                        "suppression of `{}` has no `-- <reason>`: every allow marker \
                         must record why the finding is acceptable",
                        s.lint
                    ),
                    snippet: f.snippet(s.comment_line),
                });
            } else if !s.known {
                findings.push(Finding {
                    lint: lints::BAD_SUPPRESSION,
                    path: f.path.clone(),
                    line: s.comment_line,
                    message: format!(
                        "suppression names unknown lint `{}` (known: {})",
                        s.lint,
                        lints::LINTS.join(", ")
                    ),
                    snippet: f.snippet(s.comment_line),
                });
            } else if !s.used {
                findings.push(Finding {
                    lint: lints::UNUSED_SUPPRESSION,
                    path: f.path.clone(),
                    line: s.comment_line,
                    message: format!(
                        "suppression of `{}` matches no finding on its line; delete it \
                         (or re-anchor it to the line it should govern)",
                        s.lint
                    ),
                    snippet: f.snippet(s.comment_line),
                });
            }
        }
    }
    // Baseline pass: each entry silences at most one matching finding.
    let mut spent = vec![false; baseline.len()];
    findings.retain(|f| {
        let hit = baseline.iter().enumerate().find(|(i, b)| {
            !spent[*i] && b.lint == f.lint && b.path == f.path && b.snippet == f.snippet
        });
        if let Some((i, _)) = hit {
            spent[i] = true;
            report.baselined += 1;
            return false;
        }
        true
    });
    report.stale_baseline = spent.iter().filter(|s| !**s).count();
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    report.findings = findings;
    report
}

/// Analyzes a single in-memory file (the ui-fixture entry point): the index
/// is built from that file alone and no baseline applies.
#[must_use]
pub fn analyze_file(path: &str, src: &str) -> Report {
    analyze_sources(vec![SourceFile::new(path, src)], &[])
}

/// Discovers the workspace's shipped sources under `root`: `src/`,
/// `crates/*/src/`, and `xtask/src/`. Integration tests, benches, and
/// examples are host-side by definition and are not walked (unit tests
/// inside `src/` are stripped token-wise instead).
pub fn discover_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src"), root.join("xtask").join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            roots.push(entry?.path().join("src"));
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, &mut found)?;
        }
    }
    found.sort();
    Ok(found)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Discovers, loads, and analyzes the workspace at `root`, applying the
/// committed `analyze-baseline.txt` when present.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    analyze_workspace_with_baseline(root, &root.join("analyze-baseline.txt"))
}

/// As [`analyze_workspace`], with an explicit baseline path.
pub fn analyze_workspace_with_baseline(root: &Path, baseline_path: &Path) -> io::Result<Report> {
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(s) => parse_baseline(&s),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut files = Vec::new();
    for p in discover_sources(root)? {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&p)?;
        files.push(SourceFile::new(&rel, &src));
    }
    Ok(analyze_sources(files, &baseline))
}

/// Renders the human-readable report.
#[must_use]
pub fn render_text(report: &Report) -> String {
    let mut s = String::new();
    for f in &report.findings {
        let _ = writeln!(s, "{}:{}: [{}] {}", f.path, f.line, f.lint, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(s, "    | {}", f.snippet);
        }
    }
    let _ = writeln!(
        s,
        "analyze: {} finding(s) across {} file(s) ({} suppressed, {} baselined{})",
        report.findings.len(),
        report.files,
        report.suppressed,
        report.baselined,
        if report.stale_baseline > 0 {
            format!(", {} stale baseline entr(ies)", report.stale_baseline)
        } else {
            String::new()
        }
    );
    s
}

/// Renders the machine-readable report (for the CI artifact). Hand-rolled
/// like `ufotm-core`'s run reports — the workspace has no serde.
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"lint\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
             \"snippet\": {}}}",
            if i == 0 { "" } else { "," },
            json_str(f.lint),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
        );
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"suppressed_by_lint\": {");
    for (i, (lint, n)) in report.suppressed_by_lint.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {}: {}",
            if i == 0 { "" } else { "," },
            json_str(lint),
            n
        );
    }
    if !report.suppressed_by_lint.is_empty() {
        s.push_str("\n  ");
    }
    let _ = write!(
        s,
        "}},\n  \"files\": {},\n  \"suppressed\": {},\n  \"baselined\": {},\n  \
         \"stale_baseline\": {},\n  \"clean\": {}\n}}\n",
        report.files,
        report.suppressed,
        report.baselined,
        report.stale_baseline,
        report.is_clean()
    );
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_mapping() {
        assert_eq!(crate_of("crates/machine/src/btm.rs"), "machine");
        assert_eq!(crate_of("src/main.rs"), "root");
        assert_eq!(crate_of("xtask/src/main.rs"), "xtask");
    }

    #[test]
    fn test_items_are_stripped() {
        let src = "fn live() { a.iter(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { b.iter(); } }\n\
                   #[test]\nfn unit() { c.iter(); }\n\
                   fn live2() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"live2"));
        assert!(!idents.contains(&"tests"));
        assert!(!idents.contains(&"unit"));
    }

    #[test]
    fn suppression_round_trip() {
        let src = "use std::collections::HashMap; // analyze: allow(host-nondeterminism) -- test justification\n\
                   struct S { m: HashMap<u64, u64> }\n\
                   impl S {\n\
                       fn f(&self) {\n\
                           // analyze: allow(nondet-iteration) -- test justification\n\
                           for k in self.m.keys() { let _ = k; }\n\
                       }\n\
                   }\n";
        let r = analyze_file("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "unexpected findings: {:?}", r.findings);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn baseline_matches_by_snippet_and_is_consumed() {
        let src = "fn f(cpu: usize) -> u64 { 1u64 << cpu }\n";
        let base = parse_baseline(
            "# comment\nunchecked-cpu-shift\tcrates/core/src/x.rs\tfn f(cpu: usize) -> u64 { 1u64 << cpu }\n",
        );
        let r = analyze_sources(vec![SourceFile::new("crates/core/src/x.rs", src)], &base);
        assert!(r.is_clean());
        assert_eq!(r.baselined, 1);
        assert_eq!(r.stale_baseline, 0);
    }

    #[test]
    fn json_is_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
