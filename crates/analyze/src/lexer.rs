//! A minimal, self-contained Rust lexer.
//!
//! The workspace is dependency-free by design (the container has no crates
//! registry), so the lint engine cannot lean on `syn`. The passes in
//! [`crate::lints`] are token-level pattern matchers, and this lexer gives
//! them exactly what they need: an identifier/punctuation/literal stream
//! with line numbers, comments kept separately (for suppression markers),
//! and correct skipping of string/char/raw-string literal *contents* so a
//! `"HashMap"` inside a string can never trigger a lint.
//!
//! It is intentionally not a full lexer — no token trees, no precise
//! numeric suffix validation — but it must never mis-bracket: brace/paren
//! matching is what the passes use to delimit functions and call
//! arguments.

/// What kind of token was lexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `HashMap`, `cpu`, …).
    Ident,
    /// An integer or float literal (`1`, `1u64`, `0xFF`, `1.5`).
    Number,
    /// A string, byte-string, raw-string, or char literal (text is the
    /// *raw source* including quotes; passes never look inside).
    Literal,
    /// A lifetime (`'a`) or the label position of a loop label.
    Lifetime,
    /// Punctuation. Single characters, except `<<` which is emitted joined
    /// when the two `<` are adjacent (the shift-lint needs to distinguish
    /// `1 << cpu` from nested generics).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's source text.
    pub text: String,
    /// Its classification.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// Whether this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == id
    }
}

/// One comment (line or block), kept out of the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment text *without* the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments; block comments can span). Passes that walk
    /// contiguous comment runs (D10's `SAFETY:` search) need full line
    /// coverage, not just the start.
    pub end_line: u32,
    /// Whether the comment is the first non-whitespace on its line (a
    /// standalone marker applies to the next code line; a trailing one to
    /// its own line).
    pub standalone: bool,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`, splitting code tokens from comments.
///
/// Unterminated literals or comments are tolerated (the rest of the file
/// is consumed as that literal); the passes run on whatever was produced.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect(),
                line,
                end_line: line,
                standalone: !line_has_code,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start_line = line;
            let standalone = !line_has_code;
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < b.len() && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: b[start..end].iter().collect(),
                line: start_line,
                end_line: line,
                standalone,
            });
            i = j;
            continue;
        }
        line_has_code = true;
        // Raw strings / raw byte strings: r"..", r#".."#, br#".."#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start_line = line;
            let mut j = i;
            while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // opening quote
            loop {
                if j >= b.len() {
                    break;
                }
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if b[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while k < b.len() && b[k] == '#' && seen < hashes {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break;
                    }
                }
                j += 1;
            }
            out.tokens.push(Token {
                text: b[i..j.min(b.len())].iter().collect(),
                kind: TokenKind::Literal,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords (possibly a string prefix like b"..").
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            // b"..." byte string: the ident is the prefix.
            if j == start + 1 && b[start] == 'b' && j < b.len() && b[j] == '"' {
                let (end, nl) = skip_string(&b, j);
                out.tokens.push(Token {
                    text: b[start..end].iter().collect(),
                    kind: TokenKind::Literal,
                    line,
                });
                line += nl;
                i = end;
                continue;
            }
            out.tokens.push(Token {
                text: b[start..j].iter().collect(),
                kind: TokenKind::Ident,
                line,
            });
            i = j;
            continue;
        }
        // Numbers (incl. suffixed: 1u64, 0xFF, 1_000, 1.5).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            // Fractional part — but not `1..x` range syntax or `1.method()`.
            if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
                j += 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            out.tokens.push(Token {
                text: b[start..j].iter().collect(),
                kind: TokenKind::Number,
                line,
            });
            i = j;
            continue;
        }
        // Strings.
        if c == '"' {
            let (end, nl) = skip_string(&b, i);
            out.tokens.push(Token {
                text: b[i..end].iter().collect(),
                kind: TokenKind::Literal,
                line,
            });
            line += nl;
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(&b, i) {
                let end = skip_char_literal(&b, i);
                out.tokens.push(Token {
                    text: b[i..end].iter().collect(),
                    kind: TokenKind::Literal,
                    line,
                });
                i = end;
                continue;
            }
            // Lifetime: 'ident
            let start = i;
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                text: b[start..j].iter().collect(),
                kind: TokenKind::Lifetime,
                line,
            });
            i = j;
            continue;
        }
        // `<<` joined (both `<` adjacent); everything else single-char.
        if c == '<' && i + 1 < b.len() && b[i + 1] == '<' {
            out.tokens.push(Token {
                text: "<<".into(),
                kind: TokenKind::Punct,
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            text: c.to_string(),
            kind: TokenKind::Punct,
            line,
        });
        i += 1;
    }
    out
}

/// Whether position `i` starts a raw (byte) string: `r"`, `r#`, `br"`, `br#`.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Skips a `"…"` literal starting at the opening quote; returns (index past
/// the closing quote, newlines crossed).
fn skip_string(b: &[char], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (b.len(), nl)
}

/// Whether `'` at `i` opens a char literal (vs a lifetime).
fn is_char_literal(b: &[char], i: usize) -> bool {
    // '\x' escapes are always chars; 'a' is a char only if a closing quote
    // follows the single (possibly alphanumeric) character.
    match b.get(i + 1) {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => {
            // Lifetime idents run on; a char closes immediately.
            b.get(i + 2) == Some(&'\'')
        }
        Some('\'') => false, // '' — malformed, treat as lifetime-ish
        Some(_) => true,     // punctuation char like '(' or '<'
        None => false,
    }
}

/// Skips a char literal starting at the opening `'`.
fn skip_char_literal(b: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if j < b.len() && b[j] == '\\' {
        j += 2;
        // \x7f / \u{..} escapes
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(b.len());
    }
    j += 1;
    while j < b.len() && b[j] != '\'' {
        j += 1;
    }
    (j + 1).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_stream() {
        assert_eq!(
            texts("let x = a.iter();"),
            vec!["let", "x", "=", "a", ".", "iter", "(", ")", ";"]
        );
    }

    #[test]
    fn shift_is_joined_but_generics_are_not() {
        let t = texts("1u64 << cpu");
        assert_eq!(t, vec!["1u64", "<<", "cpu"]);
        let t = texts("Vec<Vec<u64>>");
        assert!(t.contains(&"<".to_string()));
        assert!(!t.contains(&"<<".to_string()));
    }

    #[test]
    fn strings_and_chars_hide_contents() {
        let t = texts(r#"panic!("HashMap {x}"); let c = '<'; let l: &'a str = "";"#);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(t.iter().any(|s| s == "'a"));
    }

    #[test]
    fn raw_strings_skip_quotes_and_hashes() {
        let t = texts(r###"let s = r#"a "quoted" HashMap"#; s.len()"###);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(t.contains(&"len".to_string()));
    }

    #[test]
    fn comments_are_captured_with_position() {
        let l = lex("let a = 1; // trailing note\n// standalone\nlet b = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].standalone);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[1].standalone);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("standalone"));
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let l = lex("/* outer /* inner */ still */ let x = 1;\nlet y = 2;");
        assert_eq!(l.comments.len(), 1);
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines.first(), Some(&1));
        assert_eq!(lines.last(), Some(&2));
    }

    #[test]
    fn comment_end_lines_cover_block_spans() {
        let l = lex("/* a\nb\nc */ let x = 1;\n// line\n");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.comments[1].line, 4);
        assert_eq!(l.comments[1].end_line, 4);
    }

    #[test]
    fn line_numbers_cross_multiline_strings() {
        let l = lex("let s = \"a\nb\";\nlet t = 1;");
        let t = l.tokens.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t.line, 3);
    }
}
