//! The repo-specific lint passes (D1–D8).
//!
//! Each pass is a token-level pattern matcher over [`crate::lexer::Lexed`]
//! streams with test code stripped. The passes encode *protocol* rules the
//! compiler cannot check — every one of them corresponds to a bug class
//! this repo has actually shipped (see `docs/STATIC_ANALYSIS.md` for the
//! history):
//!
//! * [`NONDET_ITERATION`] — iterating a `HashMap`/`HashSet` in a
//!   cycle-charged crate (the PR-3 replay-divergence class).
//! * [`UNCHECKED_CPU_SHIFT`] — a raw `1 << cpu`-shaped shift outside the
//!   checked `cpu_bit` helper (the PR-4 owner-mask overflow class).
//! * [`HOST_NONDETERMINISM`] — host clocks, OS randomness, or
//!   default-hasher collections inside the deterministic simulation scope.
//! * [`STATS_MERGE_EXHAUSTIVENESS`] — a stats `fn merge` that does not
//!   destructure every field (silently drops new counters).
//! * [`PANICKING_MACHINE_ACCESS`] — `.unwrap()`/`.expect()` chained
//!   directly onto a machine access in simulation code instead of the
//!   audited `PlainAccess::plain` route (defined in `ufotm-machine`).
//! * [`PERSIST_BYPASS`] — a direct `mem.write` in the machine crate
//!   outside the audited `mem_write` funnel: such a write could shadow the
//!   volatile/durable split the persistence domain depends on.
//! * [`POISONED_LOCK_CASCADE`] — `.unwrap()`/`.expect()` chained onto
//!   `Mutex::lock` in a real-thread ([`HOST_EXEMPT`]) crate. On real OS
//!   threads a worker can die holding the mutex (the chaos layer does this
//!   on purpose); unwrapping the poison error turns that one death into a
//!   panic cascade through every survivor. The audited route is
//!   `ufotm_native::chaos::lock_recover`, which recovers the guard and
//!   reports the poison.
//!
//!   D5 and D8 both match the chained form *and* the bound form
//!   (`let r = m.load(…); … r.unwrap()`), via a per-function local
//!   binding dataflow.
//!
//! Two passes ride on the workspace call graph ([`crate::callgraph`]):
//!
//! * [`SIGNAL_UNSAFE_REACHABLE`] — anything reachable from a signal
//!   handler root (a function registered via `rt_sigaction`, or marked
//!   `analyze: signal-handler-root`) that allocates, takes a lock,
//!   panics, or touches stdio. A signal handler interrupts an arbitrary
//!   instruction on an arbitrary thread: an allocation can deadlock on
//!   the allocator's own lock, a mutex can self-deadlock, and a panic
//!   unwinds through a frame that never expected it — exactly when the
//!   strong-atomicity guard is busiest. The guard's handler must stay
//!   atomics + raw syscalls, and this pass machine-checks that instead
//!   of trusting a doc comment.
//! * [`UNSAFE_WITHOUT_SAFETY_COMMENT`] — an `unsafe` block, fn, impl, or
//!   trait in a [`HOST_EXEMPT`] crate without a `// SAFETY:` comment on
//!   the same line or the contiguous comment run above. The native
//!   guard's correctness argument lives in those justifications; an
//!   unexplained `unsafe` is an unreviewable one.
//!
//! One meta pass guards the scope lists themselves:
//!
//! * [`UNCLASSIFIED_CRATE`] — a crate that is in neither [`DETERMINISTIC`]
//!   nor [`HOST_EXEMPT`]. Without it, adding a crate would silently opt it
//!   out of the determinism lints (the `ufotm-native` crate is the first
//!   deliberate exemption; every exemption records its justification).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::{Finding, SourceFile, WorkspaceIndex};

/// Lint name: nondeterministic iteration in a cycle-charged crate.
pub const NONDET_ITERATION: &str = "nondet-iteration";
/// Lint name: raw `1 << cpu` shift outside the checked helper.
pub const UNCHECKED_CPU_SHIFT: &str = "unchecked-cpu-shift";
/// Lint name: host clock / OS randomness / default-hasher collection.
pub const HOST_NONDETERMINISM: &str = "host-nondeterminism";
/// Lint name: `fn merge` without an exhaustive field destructure.
pub const STATS_MERGE_EXHAUSTIVENESS: &str = "stats-merge-exhaustiveness";
/// Lint name: panicking call chained onto a machine access.
pub const PANICKING_MACHINE_ACCESS: &str = "panicking-machine-access";
/// Lint name: direct `mem.write` outside the audited `mem_write` funnel.
pub const PERSIST_BYPASS: &str = "persist-bypass";
/// Lint name: unwrapped `Mutex::lock` in a real-thread crate.
pub const POISONED_LOCK_CASCADE: &str = "poisoned-lock-cascade";
/// Lint name: allocation/lock/panic/stdio reachable from a signal handler.
pub const SIGNAL_UNSAFE_REACHABLE: &str = "signal-unsafe-reachable";
/// Lint name: `unsafe` without a `// SAFETY:` justification.
pub const UNSAFE_WITHOUT_SAFETY_COMMENT: &str = "unsafe-without-safety-comment";
/// Lint name: crate in neither the deterministic nor the host-exempt list.
pub const UNCLASSIFIED_CRATE: &str = "unclassified-crate";
/// Pseudo-lint: a suppression marker missing its `-- <reason>`.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Pseudo-lint: a suppression marker that matched no finding.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every real lint (suppressible via `analyze: allow(...)`).
pub const LINTS: &[&str] = &[
    NONDET_ITERATION,
    UNCHECKED_CPU_SHIFT,
    HOST_NONDETERMINISM,
    STATS_MERGE_EXHAUSTIVENESS,
    PANICKING_MACHINE_ACCESS,
    PERSIST_BYPASS,
    POISONED_LOCK_CASCADE,
    SIGNAL_UNSAFE_REACHABLE,
    UNSAFE_WITHOUT_SAFETY_COMMENT,
    UNCLASSIFIED_CRATE,
];

/// Crates whose code runs under the cycle-charged simulation clock: any
/// observable iteration order here is replayed bit-for-bit, so hasher
/// randomness is a determinism bug (D1 scope).
pub const CYCLE_CHARGED: &[&str] = &["machine", "ustm", "tl2", "core"];

/// Crates that must be free of *host* nondeterminism: everything that runs
/// inside (or drives) the deterministic simulation. Host tooling — `bench`
/// (wall-clock measurement is its job), `analyze`, and `xtask` — is
/// excluded (D3/D5 scope).
pub const DETERMINISTIC: &[&str] = &["machine", "ustm", "tl2", "core", "sim", "stamp", "root"];

/// Crates deliberately allowed to observe host state, each with the
/// recorded justification for its exemption. Every crate in the workspace
/// must appear either here or in [`DETERMINISTIC`]; an unknown crate fires
/// [`UNCLASSIFIED_CRATE`] instead of silently skipping the determinism
/// passes.
pub const HOST_EXEMPT: &[(&str, &str)] = &[
    ("bench", "wall-clock measurement is this crate's entire job"),
    (
        "analyze",
        "host tooling: walks the filesystem, never runs under the simulated clock",
    ),
    (
        "xtask",
        "host tooling: drives cargo, CI gates, and artifact diffing",
    ),
    (
        "native",
        "host-atomics backend (TL2 fast path, redo-log USTM slow path, mprotect \
         strong-atomicity guard, failover hybrid driver): real races, raw signal \
         handling, and wall-clock timing are its product, not a contaminant",
    ),
];

/// Machine access methods whose results must not be unwrapped inline on
/// plain-access paths (D5). The audited escape hatch is
/// `PlainAccess::plain`, which names the operation in its panic message.
const MACHINE_METHODS: &[&str] = &[
    "with",
    "load",
    "store",
    "work",
    "stall",
    "btm_begin",
    "btm_end",
    "btm_event",
    "read_ufo_bits",
    "set_ufo_bits",
    "add_ufo_bits",
    "persist_flush",
    "persist_fence",
];

/// HashMap/HashSet iteration methods whose visit order is hasher-dependent.
const NONDET_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Hash-randomized std::collections types (D3): their iteration order — and
/// with `RandomState`/`DefaultHasher`, their very hashes — change per
/// process, which is host state leaking into the simulation.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Host clock / OS entropy identifiers (D3).
const HOST_IDENTS: &[&str] = &["Instant", "SystemTime", "thread_rng", "OsRng", "getrandom"];

/// Shift bases that make `base << ident` a CPU-mask-shaped shift (D2).
const SHIFT_BASES: &[&str] = &["1", "1u8", "1u16", "1u32", "1u64", "1u128", "1usize"];

/// Functions whose bodies are allowed to contain the raw shift (D2): the
/// checked helper itself.
const SHIFT_HELPERS: &[&str] = &["cpu_bit"];

/// Allocating constructors (D9): `Type::anything(…)` on these types goes
/// through the global allocator, which may hold its own lock at the
/// instant a signal interrupts the thread.
const ALLOC_TYPES: &[&str] = &["Box", "Vec", "String"];

/// Allocating macros (D9).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Allocating methods (D9).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec"];

/// Panicking macros (D9): unwinding out of a signal handler is UB-adjacent
/// at best, and the panic machinery itself allocates and takes locks.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Stdio macros (D9): `println!` takes the stdout lock — a handler
/// interrupting a thread that holds it deadlocks.
const STDIO_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Runs every pass that applies to `file`, appending findings to `out`.
pub fn run_passes(file: &SourceFile, index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let in_cycle_charged = CYCLE_CHARGED.contains(&file.crate_name.as_str());
    let in_deterministic = DETERMINISTIC.contains(&file.crate_name.as_str());
    if in_cycle_charged {
        nondet_iteration(file, index, out);
    }
    unchecked_cpu_shift(file, out);
    if in_deterministic {
        host_nondeterminism(file, out);
        panicking_machine_access(file, out);
        bound_result_unwraps(file, out, BoundKind::Machine);
    }
    if file.crate_name == "machine" {
        persist_bypass(file, out);
    }
    stats_merge_exhaustiveness(file, out);
    let host_exempt = HOST_EXEMPT.iter().any(|(c, _)| *c == file.crate_name);
    if host_exempt {
        poisoned_lock_cascade(file, out);
        bound_result_unwraps(file, out, BoundKind::Lock);
        unsafe_without_safety_comment(file, out);
    }
    if !in_deterministic && !host_exempt {
        unclassified_crate(file, out);
    }
}

/// Runs the call-graph passes, which see the whole workspace at once
/// (call edges cross files). Findings land on whichever file holds the
/// offending line, so the normal per-file suppression machinery governs
/// them like any other finding.
pub fn run_workspace_passes(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    signal_unsafe_reachable(files, graph, out);
}

/// Meta pass: a crate absent from both scope lists gets one finding per
/// file, anchored on the first code line so a standalone allow marker at
/// the top of the file can govern it while the classification is decided.
fn unclassified_crate(file: &SourceFile, out: &mut Vec<Finding>) {
    let line = file.code_lines.iter().next().copied().unwrap_or(1);
    push(
        out,
        UNCLASSIFIED_CRATE,
        file,
        line,
        format!(
            "crate `{}` is in neither `DETERMINISTIC` nor `HOST_EXEMPT`: every crate \
             must declare whether it may observe host state (classify it in \
             crates/analyze/src/lints.rs — exemptions record a justification)",
            file.crate_name
        ),
    );
}

fn push(out: &mut Vec<Finding>, lint: &'static str, file: &SourceFile, line: u32, message: String) {
    // One finding per (lint, line) per file: the passes overlap on purpose
    // (e.g. a `for` loop over `map.iter()` matches both D1 patterns).
    if out
        .iter()
        .any(|f| f.lint == lint && f.path == file.path && f.line == line)
    {
        return;
    }
    out.push(Finding {
        lint,
        path: file.path.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

/// D1: flags iteration over identifiers the [`WorkspaceIndex`] recorded as
/// `HashMap`/`HashSet` bindings in this crate — both explicit adaptor calls
/// (`m.iter()`, `m.drain()`, …) and `for … in` headers that mention an
/// indexed name (`for (k, v) in &m`).
fn nondet_iteration(file: &SourceFile, index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let Some(names) = index.hash_names.get(&file.crate_name) else {
        return;
    };
    let t = &file.tokens;
    for i in 0..t.len() {
        // name . iter (   — adaptor call on an indexed binding.
        if t[i].kind == TokenKind::Ident && names.contains(&t[i].text) {
            if let (Some(dot), Some(m), Some(paren)) = (t.get(i + 1), t.get(i + 2), t.get(i + 3)) {
                if dot.is_punct(".")
                    && m.kind == TokenKind::Ident
                    && NONDET_ITER_METHODS.contains(&m.text.as_str())
                    && paren.is_punct("(")
                {
                    push(
                        out,
                        NONDET_ITERATION,
                        file,
                        m.line,
                        format!(
                            "`{}.{}()` visits entries in hasher order; iteration order is \
                             observable in a cycle-charged crate (use a BTree collection, \
                             sort first, or justify with an allow marker)",
                            t[i].text, m.text
                        ),
                    );
                }
            }
        }
        // for <pat> in <expr> {   — expr mentions an indexed binding.
        if t[i].is_ident("for") {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_expr = false;
            while j < t.len() {
                let tok = &t[j];
                if tok.is_punct("(") || tok.is_punct("[") {
                    depth += 1;
                } else if tok.is_punct(")") || tok.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && tok.is_punct("{") {
                    break;
                } else if depth == 0 && tok.is_ident("in") {
                    in_expr = true;
                    j += 1;
                    continue;
                }
                if in_expr && tok.kind == TokenKind::Ident && names.contains(&tok.text) {
                    // Skip when the very name is immediately adaptor-called:
                    // the arm above already reported it (dedup covers the
                    // same-line case; this keeps messages specific).
                    push(
                        out,
                        NONDET_ITERATION,
                        file,
                        tok.line,
                        format!(
                            "`for` loop over `{}` visits entries in hasher order; iteration \
                             order is observable in a cycle-charged crate",
                            tok.text
                        ),
                    );
                }
                j += 1;
            }
        }
    }
}

/// D2: flags `1 << <non-literal>` everywhere outside the body of a checked
/// helper ([`SHIFT_HELPERS`]). Constant shifts (`1 << 16`) are fine — they
/// cannot overflow by CPU id.
fn unchecked_cpu_shift(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    // Track enclosing fn names so the helper's own body is exempt.
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0i32;
    for i in 0..t.len() {
        let tok = &t[i];
        if tok.is_ident("fn") {
            if let Some(name) = t.get(i + 1) {
                if name.kind == TokenKind::Ident {
                    pending_fn = Some(name.text.clone());
                }
            }
        } else if tok.is_punct(";") && depth == 0 {
            pending_fn = None; // trait method without a body
        } else if tok.is_punct("{") {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                fn_stack.push((name, depth));
            }
        } else if tok.is_punct("}") {
            if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                fn_stack.pop();
            }
            depth -= 1;
        } else if tok.is_punct("<<")
            && i > 0
            && t[i - 1].kind == TokenKind::Number
            && SHIFT_BASES.contains(&t[i - 1].text.as_str())
            && t.get(i + 1).is_some_and(|n| n.kind != TokenKind::Number)
        {
            let exempt = fn_stack
                .iter()
                .any(|(name, _)| SHIFT_HELPERS.contains(&name.as_str()));
            if !exempt {
                push(
                    out,
                    UNCHECKED_CPU_SHIFT,
                    file,
                    tok.line,
                    format!(
                        "raw `{} << <expr>` shift: at shift amounts >= 64 this silently \
                         wraps in release builds (the PR-4 owner-mask bug); route through \
                         `ufotm_machine::cpu_bit`",
                        t[i - 1].text
                    ),
                );
            }
        }
    }
}

/// D3: flags std hash-collection imports/paths and host clock / OS entropy
/// identifiers in the deterministic scope. Import lines produce exactly one
/// finding (at the `use` token) so a single allow marker can cover them.
fn host_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    let mut i = 0usize;
    while i < t.len() {
        // use std :: collections :: …ident list… ;
        if t[i].is_ident("use")
            && t.get(i + 1).is_some_and(|x| x.is_ident("std"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 3).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 4).is_some_and(|x| x.is_ident("collections"))
        {
            let use_line = t[i].line;
            let mut j = i + 5;
            let mut bad: Vec<&str> = Vec::new();
            while j < t.len() && !t[j].is_punct(";") {
                if t[j].kind == TokenKind::Ident {
                    if let Some(h) = HASH_TYPES.iter().find(|h| t[j].text == **h) {
                        if !bad.contains(h) {
                            bad.push(h);
                        }
                    }
                }
                j += 1;
            }
            if !bad.is_empty() {
                push(
                    out,
                    HOST_NONDETERMINISM,
                    file,
                    use_line,
                    format!(
                        "import of hash-randomized collection(s) {} in the deterministic \
                         scope; per-process hasher seeds are host state (use BTree \
                         collections or justify with an allow marker)",
                        bad.join(", ")
                    ),
                );
            }
            i = j;
            continue;
        }
        // Inline std :: collections :: HashX paths (no import).
        if t[i].is_ident("std")
            && t.get(i + 1).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(":"))
            && t.get(i + 3).is_some_and(|x| x.is_ident("collections"))
        {
            if let Some(h) = t.get(i + 6) {
                if h.kind == TokenKind::Ident && HASH_TYPES.contains(&h.text.as_str()) {
                    push(
                        out,
                        HOST_NONDETERMINISM,
                        file,
                        h.line,
                        format!("`std::collections::{}` in the deterministic scope", h.text),
                    );
                }
            }
        }
        // Host clocks and OS entropy, by identifier. The simulated clock is
        // `Ctx::now()`; the simulated RNG is `SimRng`.
        if t[i].kind == TokenKind::Ident && HOST_IDENTS.contains(&t[i].text.as_str()) {
            push(
                out,
                HOST_NONDETERMINISM,
                file,
                t[i].line,
                format!(
                    "`{}` reads host state; simulation code must use the simulated \
                     clock (`Ctx`) or `SimRng`",
                    t[i].text
                ),
            );
        }
        i += 1;
    }
}

/// D4: every `fn merge` must exhaustively destructure `other` — a
/// `let Stats {{ a, b, c }} = other;` with no `..` rest pattern — so adding
/// a field without aggregating it becomes a compile error, not a silently
/// wrong report.
fn stats_merge_exhaustiveness(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].is_ident("fn") && t.get(i + 1).is_some_and(|x| x.is_ident("merge"))) {
            i += 1;
            continue;
        }
        let merge_line = t[i + 1].line;
        // Find the body's opening brace (first `{` outside parens/brackets).
        let mut j = i + 2;
        let mut pdepth = 0i32;
        while j < t.len() {
            if t[j].is_punct("(") || t[j].is_punct("[") {
                pdepth += 1;
            } else if t[j].is_punct(")") || t[j].is_punct("]") {
                pdepth -= 1;
            } else if pdepth == 0 && t[j].is_punct("{") {
                break;
            } else if pdepth == 0 && t[j].is_punct(";") {
                // Trait signature without a body — nothing to check.
                break;
            }
            j += 1;
        }
        if j >= t.len() || !t[j].is_punct("{") {
            i = j;
            continue;
        }
        // Scan the body for `let Ident { … no `..` … } = …other…;`.
        let body_start = j + 1;
        let mut depth = 1i32;
        let mut k = body_start;
        let mut ok = false;
        while k < t.len() && depth > 0 {
            if t[k].is_punct("{") {
                depth += 1;
            } else if t[k].is_punct("}") {
                depth -= 1;
            } else if t[k].is_ident("let")
                && t.get(k + 1).is_some_and(|x| x.kind == TokenKind::Ident)
                && t.get(k + 2).is_some_and(|x| x.is_punct("{"))
            {
                // Walk the pattern braces, watching for a `..` rest pattern.
                let mut b = 1i32;
                let mut p = k + 3;
                let mut has_rest = false;
                while p < t.len() && b > 0 {
                    if t[p].is_punct("{") {
                        b += 1;
                    } else if t[p].is_punct("}") {
                        b -= 1;
                    } else if t[p].is_punct(".") && t.get(p + 1).is_some_and(|x| x.is_punct(".")) {
                        has_rest = true;
                    }
                    p += 1;
                }
                // `= … other … ;` must follow.
                let mut binds_other = false;
                if t.get(p).is_some_and(|x| x.is_punct("=")) {
                    let mut q = p + 1;
                    while q < t.len() && !t[q].is_punct(";") {
                        if t[q].is_ident("other") {
                            binds_other = true;
                        }
                        q += 1;
                    }
                }
                if !has_rest && binds_other {
                    ok = true;
                }
            }
            k += 1;
        }
        if !ok {
            push(
                out,
                STATS_MERGE_EXHAUSTIVENESS,
                file,
                merge_line,
                "`fn merge` does not exhaustively destructure `other` \
                 (`let Stats { every, field } = other;` with no `..`): a newly added \
                 counter would be silently dropped from merged reports"
                    .to_string(),
            );
        }
        i = k.max(i + 2);
    }
}

/// D6: flags direct `mem . write (` calls in the machine crate. Durability
/// is modelled explicitly — a store lands volatile and becomes durable only
/// via flush+fence — so every simulated store must funnel through the one
/// audited `mem_write` interception point. A stray `mem.write` elsewhere
/// can desynchronize the volatile and durable images (or skip persistence
/// accounting entirely), which no test catches until a crash-recovery
/// sweep happens to land on it.
fn persist_bypass(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    for i in 0..t.len() {
        if t[i].is_ident("mem")
            && t.get(i + 1).is_some_and(|x| x.is_punct("."))
            && t.get(i + 2).is_some_and(|x| x.is_ident("write"))
            && t.get(i + 3).is_some_and(|x| x.is_punct("("))
        {
            push(
                out,
                PERSIST_BYPASS,
                file,
                t[i + 2].line,
                "direct `mem.write(…)` bypasses the audited `mem_write` funnel: the \
                 durable image and persistence accounting never see this store \
                 (route through `mem_write`, or justify with an allow marker)"
                    .to_string(),
            );
        }
    }
}

/// D5: flags `.unwrap()` / `.expect(…)` chained directly onto a machine
/// access call. Access results on plain-access paths must go through
/// `PlainAccess::plain("what")`, which names the operation and is the one
/// audited place that may panic on a machine error.
fn panicking_machine_access(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    for i in 0..t.len() {
        if !(t[i].is_punct(".")
            && t.get(i + 1).is_some_and(|m| {
                m.kind == TokenKind::Ident && MACHINE_METHODS.contains(&m.text.as_str())
            })
            && t.get(i + 2).is_some_and(|x| x.is_punct("(")))
        {
            continue;
        }
        // Balance the call's parens, then require `.unwrap(` / `.expect(`.
        let mut depth = 1i32;
        let mut j = i + 3;
        while j < t.len() && depth > 0 {
            if t[j].is_punct("(") {
                depth += 1;
            } else if t[j].is_punct(")") {
                depth -= 1;
            }
            j += 1;
        }
        let (Some(dot), Some(panicky)) = (t.get(j), t.get(j + 1)) else {
            continue;
        };
        if dot.is_punct(".") && (panicky.is_ident("unwrap") || panicky.is_ident("expect")) {
            push(
                out,
                PANICKING_MACHINE_ACCESS,
                file,
                panicky.line,
                format!(
                    "`.{}()` chained onto `.{}(…)`: a chaos-injected machine fault here \
                     crashes the run with a context-free panic; use \
                     `PlainAccess::plain(\"what\")` (or handle the error)",
                    panicky.text,
                    t[i + 1].text
                ),
            );
        }
    }
}

/// D8: flags `.unwrap()` / `.expect(…)` chained onto a `.lock(…)` call in a
/// real-thread crate. A [`Mutex`](std::sync::Mutex) acquired on real OS
/// threads can be poisoned by a worker dying while holding it — the native
/// chaos layer injects exactly such deaths — and an inline unwrap converts
/// that single death into a panic cascade: every survivor that touches the
/// mutex dies too, and the run loses the survivors' evidence along with the
/// victim's. The audited route is `ufotm_native::chaos::lock_recover`, which
/// hands back the guard (poisoned or not) plus a flag so the caller can
/// count the recovery.
fn poisoned_lock_cascade(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    for i in 0..t.len() {
        if !(t[i].is_punct(".")
            && t.get(i + 1).is_some_and(|m| m.is_ident("lock"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("(")))
        {
            continue;
        }
        // Balance the call's parens, then require `.unwrap(` / `.expect(`.
        let mut depth = 1i32;
        let mut j = i + 3;
        while j < t.len() && depth > 0 {
            if t[j].is_punct("(") {
                depth += 1;
            } else if t[j].is_punct(")") {
                depth -= 1;
            }
            j += 1;
        }
        let (Some(dot), Some(panicky)) = (t.get(j), t.get(j + 1)) else {
            continue;
        };
        if dot.is_punct(".") && (panicky.is_ident("unwrap") || panicky.is_ident("expect")) {
            push(
                out,
                POISONED_LOCK_CASCADE,
                file,
                panicky.line,
                format!(
                    "`.{}()` chained onto `.lock(…)`: a worker dying while holding this \
                     mutex poisons it, and the unwrap cascades that one death into a \
                     panic on every later acquisition; use \
                     `ufotm_native::chaos::lock_recover` (or match the `PoisonError`)",
                    panicky.text
                ),
            );
        }
    }
}

/// Which call family the bound-result dataflow tracks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    /// Machine accesses ([`MACHINE_METHODS`]) — the D5 bound form.
    Machine,
    /// `Mutex::lock` — the D8 bound form.
    Lock,
}

/// Whether the expression starting after token `eq` (a `=`) and ending at
/// its statement's `;` contains a tracked call; returns the method name.
fn expr_tracked_call(t: &[Token], eq: usize, kind: BoundKind) -> Option<(String, usize)> {
    let mut depth = 0i32;
    let mut j = eq + 1;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return None; // ran off the enclosing block
            }
        } else if depth == 0 && tok.is_punct(";") {
            return None;
        } else if tok.is_punct(".")
            && t.get(j + 2).is_some_and(|x| x.is_punct("("))
            && t.get(j + 1).is_some_and(|m| {
                m.kind == TokenKind::Ident
                    && match kind {
                        BoundKind::Machine => MACHINE_METHODS.contains(&m.text.as_str()),
                        BoundKind::Lock => m.text == "lock",
                    }
            })
        {
            return Some((t[j + 1].text.clone(), j));
        }
        j += 1;
    }
    None
}

/// D5/D8 bound form: a local binding whose initializer makes a machine
/// access (D5) or takes a `Mutex::lock` (D8), unwrapped later in the same
/// function. The chained-call passes miss `let r = m.load(…); r.unwrap()`
/// because the unwrap is textually far from the call; this pass closes
/// that hole with a per-function map of binding name → originating call.
/// A rebinding of the name (plain `let` or assignment with an untracked
/// initializer) clears it. Parameters are deliberately out of scope: the
/// `mop` funnels in `ufotm-tl2`/`ufotm-ustm` unwrap a *parameter* and are
/// the audited route the chained findings point at.
fn bound_result_unwraps(file: &SourceFile, out: &mut Vec<Finding>, kind: BoundKind) {
    let t = &file.tokens;
    let mut bindings: BTreeMap<String, String> = BTreeMap::new();
    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_ident("fn") {
            // A new function body: bindings do not flow across functions.
            bindings.clear();
            i += 1;
            continue;
        }
        // `let [mut] name [: T] = expr ;`
        if tok.is_ident("let") {
            let mut j = i + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = t.get(j).filter(|x| x.kind == TokenKind::Ident) {
                // Find the `=` of this let (skip any `: Type` annotation);
                // bail at `;` (a `let name;` declaration) or `(`/`{`
                // immediately after the name (destructuring — untracked).
                let mut k = j + 1;
                let mut depth = 0i32;
                let eq = loop {
                    let Some(x) = t.get(k) else { break None };
                    if x.is_punct("(") || x.is_punct("[") || x.is_punct("{") {
                        depth += 1;
                    } else if x.is_punct(")") || x.is_punct("]") || x.is_punct("}") {
                        depth -= 1;
                    } else if depth == 0 && x.is_punct(";") {
                        break None;
                    } else if depth == 0 && x.is_punct("=") {
                        break Some(k);
                    }
                    k += 1;
                };
                if let Some(eq) = eq {
                    match expr_tracked_call(t, eq, kind) {
                        Some((method, _)) => {
                            bindings.insert(name.text.clone(), method);
                        }
                        None => {
                            bindings.remove(&name.text);
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        // Plain reassignment `name = expr;` re-derives the origin.
        if tok.kind == TokenKind::Ident
            && bindings.contains_key(&tok.text)
            && (i == 0 || !t[i - 1].is_punct(".") && !t[i - 1].is_punct(":"))
            && t.get(i + 1).is_some_and(|x| x.is_punct("="))
            && !t.get(i + 2).is_some_and(|x| x.is_punct("="))
        {
            if expr_tracked_call(t, i + 1, kind).is_none() {
                bindings.remove(&tok.text);
            }
            i += 1;
            continue;
        }
        // `name.unwrap()` / `name.expect(…)` on a tracked binding.
        if tok.kind == TokenKind::Ident
            && (i == 0 || !t[i - 1].is_punct("."))
            && t.get(i + 1).is_some_and(|x| x.is_punct("."))
            && t.get(i + 3).is_some_and(|x| x.is_punct("("))
        {
            if let Some(panicky) = t
                .get(i + 2)
                .filter(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            {
                if let Some(method) = bindings.get(&tok.text) {
                    let (lint, fix) = match kind {
                        BoundKind::Machine => (
                            PANICKING_MACHINE_ACCESS,
                            "use `PlainAccess::plain(\"what\")` (or handle the error)",
                        ),
                        BoundKind::Lock => (
                            POISONED_LOCK_CASCADE,
                            "use `ufotm_native::chaos::lock_recover` (or match the \
                             `PoisonError`)",
                        ),
                    };
                    push(
                        out,
                        lint,
                        file,
                        panicky.line,
                        format!(
                            "`{}.{}()` unwraps the result `.{}(…)` bound into `{}` \
                             earlier in this function; the panic risk is the same as \
                             the chained form — {}",
                            tok.text, panicky.text, method, tok.text, fix
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

/// D10: every `unsafe` block / fn / impl / trait in a [`HOST_EXEMPT`]
/// crate must carry a `// SAFETY:` comment on the same line or in the
/// contiguous comment run directly above. `#[unsafe(naked)]`-style
/// attribute tokens are not flagged (the item they decorate is).
fn unsafe_without_safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    for c in &file.comments {
        for l in c.line..=c.end_line {
            comment_lines.insert(l);
            if c.text.contains("SAFETY:") {
                safety_lines.insert(l);
            }
        }
    }
    let t = &file.tokens;
    for i in 0..t.len() {
        if !t[i].is_ident("unsafe") {
            continue;
        }
        let next = t.get(i + 1);
        if next.is_some_and(|x| x.is_punct("(")) {
            continue; // the `unsafe(...)` attribute form
        }
        let what = match next {
            Some(x) if x.is_punct("{") => "unsafe block",
            Some(x) if x.is_ident("fn") => "unsafe fn",
            Some(x) if x.is_ident("extern") => "unsafe extern fn",
            Some(x) if x.is_ident("impl") => "unsafe impl",
            Some(x) if x.is_ident("trait") => "unsafe trait",
            _ => "unsafe item",
        };
        let line = t[i].line;
        let mut justified = safety_lines.contains(&line);
        let mut k = line.saturating_sub(1);
        while !justified && k > 0 && comment_lines.contains(&k) {
            justified = safety_lines.contains(&k);
            k -= 1;
        }
        if !justified {
            push(
                out,
                UNSAFE_WITHOUT_SAFETY_COMMENT,
                file,
                line,
                format!(
                    "{what} without a `// SAFETY:` comment (same line or the comment \
                     block directly above): every unsafe site must record the invariant \
                     that makes it sound, or reviewers cannot audit it"
                ),
            );
        }
    }
}

/// D9: walks the call graph from every signal-handler root and flags any
/// reachable allocation, lock acquisition, panicking macro, or stdio
/// macro. The message names the root and the call path, so the finding is
/// actionable even when the offending line is several hops from the
/// handler.
fn signal_unsafe_reachable(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    for root in graph.roots() {
        let reach = graph.reachable_from(root);
        for &fi in reach.keys() {
            let def = &graph.fns[fi];
            let file = &files[def.file];
            let path = graph.path_to(&reach, fi);
            let t = &file.tokens;
            let (start, end) = def.body;
            for i in start..end.min(t.len()) {
                if t[i].kind != TokenKind::Ident {
                    continue;
                }
                let name = t[i].text.as_str();
                let next_bang = t.get(i + 1).is_some_and(|x| x.is_punct("!"));
                let next_path = t.get(i + 1).is_some_and(|x| x.is_punct(":"))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(":"));
                let prev_dot = i > start && t[i - 1].is_punct(".");
                let next_paren = t.get(i + 1).is_some_and(|x| x.is_punct("("));
                let offence = if (ALLOC_TYPES.contains(&name) && next_path)
                    || (ALLOC_MACROS.contains(&name) && next_bang)
                    || (prev_dot && ALLOC_METHODS.contains(&name) && next_paren)
                {
                    Some("allocates")
                } else if (prev_dot && name == "lock" && next_paren)
                    || (name == "lock_recover" && next_paren)
                {
                    Some("takes a lock")
                } else if PANIC_MACROS.contains(&name) && next_bang {
                    Some("can panic")
                } else if STDIO_MACROS.contains(&name) && next_bang {
                    Some("locks stdio")
                } else {
                    None
                };
                if let Some(verb) = offence {
                    push(
                        out,
                        SIGNAL_UNSAFE_REACHABLE,
                        file,
                        t[i].line,
                        format!(
                            "`{}` {} inside `{}`, which is reachable from signal-handler \
                             root `{}` (call path: {}); a signal handler interrupts an \
                             arbitrary instruction, so everything it can reach must be \
                             async-signal-safe — atomics and raw syscalls only",
                            name, verb, def.name, graph.fns[root].name, path
                        ),
                    );
                }
            }
        }
    }
}
