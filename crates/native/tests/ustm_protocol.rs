//! Protocol-level scripts for the native USTM slow path: redo-log
//! visibility, ownership lifecycle, age-ordered kill/stall resolution,
//! and abort classification (matching the simulated USTM's
//! `UstmAbort` variants and `Display` text).

use std::sync::atomic::{AtomicBool, Ordering};

use ufotm_machine::Addr;
use ufotm_native::{NativeTl2, NativeUstm, NativeUstmTxn};
use ufotm_ustm::UstmAbort;

const X: Addr = Addr(512);
const Y: Addr = Addr(1024);

fn world() -> (NativeTl2, NativeUstm) {
    (
        NativeTl2::new(1 << 14, 1 << 8, 1 << 13),
        NativeUstm::new(4, 1 << 6),
    )
}

#[test]
fn redo_log_is_lazy_and_read_own_write_works() {
    let (heap, ustm) = world();
    heap.poke(X, 10);
    let mut t = NativeUstmTxn::new(&heap, &ustm, 0);
    t.begin();
    assert_eq!(t.read(X).unwrap(), 10);
    t.write(X, 20).unwrap();
    // Lazy redo: the write is buffered, not in memory (unlike the
    // eager-undo simulated USTM — this divergence is by design and why
    // cross-validation scripts never peek mid-transaction).
    assert_eq!(heap.peek(X), 10);
    // Read-own-write comes from the redo log.
    assert_eq!(t.read(X).unwrap(), 20);
    t.commit().unwrap();
    assert_eq!(heap.peek(X), 20);
    assert_eq!(t.stats.commits, 1);
}

#[test]
fn explicit_abort_discards_the_redo_log_and_classifies() {
    let (heap, ustm) = world();
    heap.poke(X, 1);
    let mut t = NativeUstmTxn::new(&heap, &ustm, 0);
    t.begin();
    t.write(X, 99).unwrap();
    let abort = t.abort_explicit();
    assert_eq!(abort, UstmAbort::Explicit);
    assert_eq!(format!("{abort}"), "explicit STM abort");
    assert_eq!(heap.peek(X), 1, "aborted redo log must not publish");
    assert_eq!(t.stats.aborts_explicit, 1);
    assert_eq!(ustm.owned_lines(), 0, "abort must release all ownership");
}

#[test]
fn commit_releases_all_ownership() {
    let (heap, ustm) = world();
    let mut t = NativeUstmTxn::new(&heap, &ustm, 0);
    t.begin();
    let _ = t.read(X).unwrap();
    let _ = t.read(Y).unwrap();
    t.write(Y, 5).unwrap();
    assert!(ustm.owned_lines() >= 2, "read ownership is eager");
    t.commit().unwrap();
    assert_eq!(ustm.owned_lines(), 0, "commit must release all ownership");
    assert_eq!(heap.peek(Y), 5);
}

/// Age-ordered conflict, older-kills-younger side: an older committer
/// finds a younger reader on its write line, kills it, and waits for
/// the unwind. The victim observes its doom at the next protocol step
/// and gets the exact `Killed { by }` classification (and `Display`
/// text) of the simulated USTM.
#[test]
fn older_committer_kills_younger_reader() {
    let (heap, ustm) = world();
    heap.poke(X, 7);

    // Sequential setup on one thread pins the age order AND the
    // conflict: the younger reader owns X's line before the older
    // committer starts acquiring it.
    let mut older = NativeUstmTxn::new(&heap, &ustm, 0);
    older.begin(); // ts = 1 (older)
    let mut younger = NativeUstmTxn::new(&heap, &ustm, 1);
    younger.begin(); // ts = 2 (younger)
    let _ = younger.read(X).unwrap();

    std::thread::scope(|scope| {
        let killer = scope.spawn(move || {
            // Acquires write ownership of X's line at commit: kills the
            // younger reader and waits for it to unwind.
            older.write(X, 8).unwrap();
            older.commit().unwrap();
            older
        });

        // Spin in `work` until the kill lands.
        let abort = loop {
            match younger.work(64) {
                Ok(()) => {}
                Err(a) => break a,
            }
        };
        assert_eq!(abort, UstmAbort::Killed { by: 0 });
        assert_eq!(format!("{abort}"), "killed by STM transaction on cpu 0");
        assert!(!younger.is_active(), "killed transaction must be unwound");
        assert_eq!(younger.stats.aborts_killed, 1);

        let older = killer.join().expect("killer thread panicked");
        assert_eq!(older.stats.kills_issued, 1);
        assert_eq!(older.stats.commits, 1);
    });

    assert_eq!(heap.peek(X), 8, "the killer's commit must have published");
    assert_eq!(ustm.owned_lines(), 0);
}

/// Age-ordered conflict, younger-stalls side: a younger committer
/// stalls behind an older reader and only publishes after the older
/// transaction retires. No kill is issued in either direction.
#[test]
fn younger_committer_stalls_behind_older_reader() {
    let (heap, ustm) = world();
    heap.poke(X, 1);

    let mut older = NativeUstmTxn::new(&heap, &ustm, 0);
    older.begin(); // ts = 1
    let _ = older.read(X).unwrap();
    let committing = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let stalled = scope.spawn(|| {
            let mut younger = NativeUstmTxn::new(&heap, &ustm, 1);
            younger.begin(); // ts = 2
            younger.write(X, 2).unwrap();
            committing.store(true, Ordering::SeqCst);
            younger.commit().unwrap(); // stalls behind the older reader
            younger
        });

        // While the older reader lives, the younger commit cannot
        // publish (it is stalling in write acquisition).
        while !committing.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        for _ in 0..50 {
            assert_eq!(heap.peek(X), 1, "younger published past an older reader");
            std::thread::yield_now();
        }
        older.commit().unwrap(); // read-only; releases ownership
        let younger = stalled.join().expect("stalled thread panicked");
        assert_eq!(younger.stats.commits, 1);
        assert_eq!(
            younger.stats.aborts_killed, 0,
            "younger must stall, not die"
        );
        assert_eq!(older.stats.kills_issued, 0);
    });

    assert_eq!(heap.peek(X), 2);
    assert_eq!(ustm.owned_lines(), 0);
}

/// `run` retries a killed transaction to commit (with a killer-wait in
/// between), so every increment lands exactly once.
#[test]
fn run_retries_killed_transactions_to_commit() {
    let (heap, ustm) = world();
    const PER: u64 = 300;
    std::thread::scope(|scope| {
        for tid in 0..2 {
            let heap = &heap;
            let ustm = &ustm;
            scope.spawn(move || {
                let mut t = NativeUstmTxn::new(heap, ustm, tid);
                for _ in 0..PER {
                    t.run(|tx| {
                        let v = tx.read(X)?;
                        tx.work(32)?;
                        tx.write(X, v + 1)?;
                        Ok(())
                    });
                }
                assert_eq!(t.stats.commits, PER);
                assert_eq!(
                    t.stats.begins,
                    t.stats.commits + t.stats.total_aborts(),
                    "begin/commit/abort accounting must balance"
                );
            });
        }
    });
    assert_eq!(heap.peek(X), 2 * PER, "increments lost under conflict");
    assert_eq!(ustm.owned_lines(), 0);
}
