//! Single-threaded protocol scripts: two manual [`NativeTxn`] handles
//! interleaved step by step, pinning the TL2 semantics (isolation,
//! publication, each abort class) deterministically — no real races
//! needed.

use ufotm_machine::Addr;
use ufotm_native::{NativeTl2, NativeTxn};
use ufotm_tl2::Tl2Abort;

const X: Addr = Addr(512);

fn heap() -> NativeTl2 {
    NativeTl2::new(4096, 1024, 2048)
}

/// Finds an address at/after `base` whose lock stripe differs from
/// `not`'s, by holding `not`'s stripe and probing candidates: a probe
/// that observes the hold shares the stripe.
fn distinct_stripe_addr(shared: &NativeTl2, base: Addr, not: Addr) -> Addr {
    let hold = shared.debug_lock_stripe(not, 63);
    let mut found = None;
    for i in 0..256u64 {
        let cand = Addr(base.0 + i * 64);
        let raw = shared.debug_lock_stripe(cand, 62);
        shared.debug_restore_stripe(cand, raw);
        if raw & 1 == 0 {
            found = Some(cand);
            break;
        }
    }
    shared.debug_restore_stripe(not, hold);
    found.expect("no address with a distinct stripe within 256 lines")
}

#[test]
fn read_your_writes_and_isolation_until_commit() {
    let shared = heap();
    let mut a = NativeTxn::new(&shared, 0);
    a.begin();
    assert_eq!(a.read(X).unwrap(), 0);
    a.write(X, 7).unwrap();
    assert_eq!(a.read(X).unwrap(), 7, "buffered write must be visible");
    // Not published yet: plain memory and a second transaction see 0.
    assert_eq!(shared.peek(X), 0);
    let mut b = NativeTxn::new(&shared, 1);
    b.begin();
    assert_eq!(b.read(X).unwrap(), 0);
    assert!(b.commit().is_ok());
    a.commit().unwrap();
    assert_eq!(shared.peek(X), 7, "commit publishes");
}

#[test]
fn read_only_commit_is_a_fast_path() {
    let shared = heap();
    shared.poke(X, 3);
    let clock_before = shared.clock_now();
    let mut a = NativeTxn::new(&shared, 0);
    a.begin();
    assert_eq!(a.read(X).unwrap(), 3);
    a.commit().unwrap();
    assert_eq!(
        shared.clock_now(),
        clock_before,
        "read-only commits must not bump the global clock"
    );
    assert_eq!(a.stats.commits, 1);
    assert_eq!(a.stats.total_aborts(), 0);
}

#[test]
fn stale_read_aborts_with_read_validation() {
    let shared = heap();
    let mut a = NativeTxn::new(&shared, 0);
    let mut b = NativeTxn::new(&shared, 1);
    a.begin(); // rv sampled before B's commit
    b.begin();
    b.write(X, 42).unwrap();
    b.commit().unwrap();
    // X's stripe version is now > A's rv: the read must fail.
    assert_eq!(a.read(X), Err(Tl2Abort::ReadValidation));
    assert!(!a.is_active(), "failed read rolls the attempt back");
    assert_eq!(a.stats.read_validation_aborts, 1);
}

#[test]
fn concurrent_writer_forces_commit_validation() {
    let shared = heap();
    let y = distinct_stripe_addr(&shared, Addr(1024), X);
    let mut a = NativeTxn::new(&shared, 0);
    let mut b = NativeTxn::new(&shared, 1);
    a.begin();
    assert_eq!(a.read(X).unwrap(), 0); // X enters A's read set
    b.begin();
    b.write(X, 9).unwrap();
    b.commit().unwrap(); // X's version advances past A's rv
    a.write(y, 1).unwrap(); // write set non-empty: full validation path
    assert_eq!(a.commit(), Err(Tl2Abort::CommitValidation));
    assert_eq!(a.stats.commit_validation_aborts, 1);
    assert_eq!(shared.peek(X), 9);
    assert_eq!(shared.peek(y), 0, "aborted write set must not publish");
}

#[test]
fn busy_lock_aborts_with_lock_busy_and_restores_the_stripe() {
    let shared = heap();
    let raw = shared.debug_lock_stripe(X, 7);
    let mut a = NativeTxn::new(&shared, 0);
    a.begin();
    a.write(X, 5).unwrap();
    assert_eq!(a.commit(), Err(Tl2Abort::LockBusy));
    assert_eq!(a.stats.lock_busy_aborts, 1);
    shared.debug_restore_stripe(X, raw);
    // The stripe is usable again after the hold is released.
    a.begin();
    a.write(X, 5).unwrap();
    a.commit().unwrap();
    assert_eq!(shared.peek(X), 5);
}

#[test]
fn failed_lock_acquire_rolls_back_already_held_stripes() {
    let shared = heap();
    let other = distinct_stripe_addr(&shared, Addr(1024), X);
    let raw = shared.debug_lock_stripe(other, 9);
    let mut a = NativeTxn::new(&shared, 0);
    a.begin();
    a.write(X, 1).unwrap();
    a.write(other, 2).unwrap();
    assert_eq!(a.commit(), Err(Tl2Abort::LockBusy));
    shared.debug_restore_stripe(other, raw);
    // X's stripe was rolled back to unlocked: a fresh writer touching
    // both words succeeds without waiting on anything.
    let mut b = NativeTxn::new(&shared, 1);
    b.begin();
    b.write(X, 3).unwrap();
    b.write(other, 4).unwrap();
    b.commit().unwrap();
    assert_eq!(shared.peek(X), 3);
    assert_eq!(shared.peek(other), 4);
}

#[test]
fn run_retries_until_commit() {
    let shared = heap();
    let raw = shared.debug_lock_stripe(X, 7);
    let mut a = NativeTxn::new(&shared, 0);
    let mut attempts = 0;
    let r = a.run(|tx| {
        attempts += 1;
        if attempts == 2 {
            // First attempt hit LockBusy against the held stripe;
            // release it so this retry can commit.
            shared.debug_restore_stripe(X, raw);
        }
        tx.write(X, 11)?;
        Ok(attempts)
    });
    assert_eq!(r, 2, "run returns only after a successful commit");
    assert_eq!(a.stats.lock_busy_aborts, 1);
    assert_eq!(shared.peek(X), 11);
}

#[test]
fn alloc_hands_out_disjoint_fresh_words() {
    let shared = heap();
    let mut a = NativeTxn::new(&shared, 0);
    a.begin();
    let p = a.alloc(2).unwrap();
    let q = a.alloc(3).unwrap();
    assert_ne!(p, q);
    assert_eq!(q.0 - p.0, 16, "bump allocator is contiguous");
    a.write(p, 1).unwrap();
    a.write(q, 2).unwrap();
    a.commit().unwrap();
    assert_eq!(shared.peek(p), 1);
    assert_eq!(shared.peek(q), 2);
}

#[test]
fn write_skew_on_disjoint_stripes_matches_tl2_validation() {
    // TL2 validates the read set only. A and B each read the word the
    // other writes; A commits first, bumping X's stripe past B's rv, so
    // B's commit-time validation must fail — the native backend
    // classifies it CommitValidation exactly like the simulated TL2.
    let shared = heap();
    let y = distinct_stripe_addr(&shared, Addr(1024), X);
    let mut a = NativeTxn::new(&shared, 0);
    let mut b = NativeTxn::new(&shared, 1);
    a.begin();
    b.begin();
    assert_eq!(a.read(y).unwrap(), 0);
    assert_eq!(b.read(X).unwrap(), 0);
    a.write(X, 1).unwrap();
    b.write(y, 1).unwrap();
    a.commit().unwrap();
    assert_eq!(b.commit(), Err(Tl2Abort::CommitValidation));
    assert_eq!(shared.peek(X), 1);
    assert_eq!(shared.peek(y), 0);
}
