//! Real-thread stress for the native hybrid and its USTM slow path —
//! counter invariants under genuine contention. These (with
//! `ustm_protocol.rs` and `concurrent.rs`) are the CI ThreadSanitizer
//! targets for the crate: TSan runs them with `UFOTM_SKIP_GUARD=1`, so
//! the heap uses plain boxed atomics and every USTM/hybrid
//! synchronization path is visible to the race detector.

use std::sync::atomic::{AtomicU64, Ordering};

use ufotm_core::TmBackend;
use ufotm_machine::Addr;
use ufotm_native::{run_hybrid_threads, HybridThread, NativeHybrid, NativeHybridPolicy};

const COUNTER: Addr = Addr(512);
const ACCT_A: Addr = Addr(1024);
const ACCT_B: Addr = Addr(8192); // different page and stripe

fn world(threads: usize) -> NativeHybrid {
    NativeHybrid::new(
        1 << 16,
        1 << 12,
        1 << 12,
        threads,
        1 << 8,
        NativeHybridPolicy::default(),
    )
}

#[test]
fn hybrid_counter_increments_are_exact() {
    const THREADS: usize = 4;
    const PER: u64 = 400;
    let h = world(THREADS);
    let (stats, _) = run_hybrid_threads(&h, THREADS, |th| {
        for _ in 0..PER {
            th.transaction(|tx| {
                let v = tx.read(COUNTER)?;
                tx.work(16)?;
                tx.write(COUNTER, v + 1)?;
                Ok(())
            });
        }
    });
    assert_eq!(h.peek(COUNTER), THREADS as u64 * PER, "increments lost");
    assert_eq!(
        stats.total_commits(),
        THREADS as u64 * PER,
        "exactly one commit per transaction across both paths"
    );
    assert_eq!(
        stats.fast.begins,
        stats.fast.commits + stats.fast.total_aborts(),
        "fast-path accounting must balance"
    );
    assert_eq!(
        stats.slow.begins,
        stats.slow.commits + stats.slow.total_aborts(),
        "slow-path accounting must balance"
    );
    assert_eq!(h.ustm().owned_lines(), 0, "ownership must drain");
}

/// An aggressive failover policy under heavy conflict: the slow path
/// must actually be taken, and still not lose an update.
#[test]
fn hybrid_fails_over_under_conflict_and_stays_exact() {
    const THREADS: usize = 4;
    const PER: u64 = 300;
    let h = NativeHybrid::new(
        1 << 16,
        1 << 12,
        1 << 12,
        THREADS,
        1 << 8,
        NativeHybridPolicy {
            failover_after: 1, // any abort fails over
            ..NativeHybridPolicy::default()
        },
    );
    let (stats, _) = run_hybrid_threads(&h, THREADS, |th| {
        for _ in 0..PER {
            th.transaction(|tx| {
                let v = tx.read(COUNTER)?;
                // Yield mid-body so another thread's commit lands between
                // this read and our commit even on a single-CPU host:
                // conflicts (and thus failovers) become near-certain
                // instead of depending on a lucky preemption.
                tx.work(16)?;
                std::thread::yield_now();
                tx.write(COUNTER, v + 1)?;
                Ok(())
            });
        }
    });
    assert_eq!(h.peek(COUNTER), THREADS as u64 * PER);
    assert_eq!(stats.total_commits(), THREADS as u64 * PER);
    assert!(
        stats.failovers > 0 && stats.slow.commits > 0,
        "contention at failover_after=1 must exercise the slow path \
         (failovers={}, slow commits={})",
        stats.failovers,
        stats.slow.commits
    );
}

/// Forced failover: the test hook sends exactly the next transaction to
/// the slow path, counted separately.
#[test]
fn forced_failover_runs_next_transaction_on_the_slow_path() {
    let h = world(1);
    let (stats, _) = run_hybrid_threads(&h, 1, |th| {
        th.transaction(|tx| tx.write(COUNTER, 1));
        th.force_failover_next();
        th.transaction(|tx| {
            let v = tx.read(COUNTER)?;
            tx.write(COUNTER, v + 10)?;
            Ok(())
        });
        th.transaction(|tx| {
            let v = tx.read(COUNTER)?;
            tx.write(COUNTER, v + 100)?;
            Ok(())
        });
    });
    assert_eq!(h.peek(COUNTER), 111);
    assert_eq!(stats.slow.commits, 1, "exactly the forced txn went slow");
    assert_eq!(stats.fast.commits, 2, "the others stayed on the fast path");
    assert_eq!(stats.forced_failovers, 1);
    assert_eq!(stats.failovers, 1);
}

/// Invariant preservation across both paths: transfers between two
/// accounts (on different pages/stripes) with interleaved read-only
/// audits. The total must be conserved at every audit and at the end.
#[test]
fn hybrid_transfers_conserve_the_total() {
    const THREADS: usize = 4;
    const PER: u64 = 250;
    const TOTAL: u64 = 1_000_000;
    let h = NativeHybrid::new(
        1 << 16,
        1 << 12,
        1 << 12,
        THREADS,
        1 << 8,
        NativeHybridPolicy {
            failover_after: 2,
            ..NativeHybridPolicy::default()
        },
    );
    h.poke(ACCT_A, TOTAL);
    h.poke(ACCT_B, 0);
    let audits = AtomicU64::new(0);

    let body = |th: &mut HybridThread<'_>| {
        let tid = th.tid() as u64;
        for i in 0..PER {
            if (i + tid).is_multiple_of(5) {
                // Read-only audit transaction.
                let sum = th.transaction(|tx| {
                    let a = tx.read(ACCT_A)?;
                    let b = tx.read(ACCT_B)?;
                    Ok(a + b)
                });
                assert_eq!(sum, TOTAL, "audit saw a torn transfer");
                audits.fetch_add(1, Ordering::Relaxed);
            } else {
                let amount = (tid * 131 + i) % 97 + 1;
                th.transaction(|tx| {
                    let a = tx.read(ACCT_A)?;
                    if a < amount {
                        return Ok(()); // insufficient funds: no-op
                    }
                    let b = tx.read(ACCT_B)?;
                    tx.work(32)?;
                    tx.write(ACCT_A, a - amount)?;
                    tx.write(ACCT_B, b + amount)?;
                    Ok(())
                });
            }
        }
    };
    let (stats, _) = run_hybrid_threads(&h, THREADS, body);

    assert_eq!(
        h.peek(ACCT_A) + h.peek(ACCT_B),
        TOTAL,
        "transfers must conserve the total"
    );
    assert!(audits.load(Ordering::Relaxed) > 0);
    assert_eq!(stats.total_commits(), THREADS as u64 * PER);
    assert_eq!(h.ustm().owned_lines(), 0);
}

/// Pure slow-path stress: every transaction forced onto USTM, maximal
/// kill/stall traffic through the ownership table.
#[test]
fn all_slow_path_counter_is_exact() {
    const THREADS: usize = 3;
    const PER: u64 = 200;
    let h = world(THREADS);
    let (stats, _) = run_hybrid_threads(&h, THREADS, |th| {
        for _ in 0..PER {
            th.force_failover_next();
            th.transaction(|tx| {
                let v = tx.read(COUNTER)?;
                tx.work(16)?;
                tx.write(COUNTER, v + 1)?;
                Ok(())
            });
        }
    });
    assert_eq!(h.peek(COUNTER), THREADS as u64 * PER);
    assert_eq!(stats.slow.commits, THREADS as u64 * PER);
    assert_eq!(stats.fast.begins, 0, "everything was forced slow");
    assert_eq!(stats.forced_failovers, THREADS as u64 * PER);
}
