//! Real-thread stress: the tests ThreadSanitizer is pointed at in CI.
//! Each one drives genuine cross-core contention through the full
//! lock-acquire / validate / write-back path and checks an exact
//! invariant at the end — under TSan, any ordering bug in the protocol
//! itself also surfaces as a data-race report.

use std::sync::atomic::{AtomicU64, Ordering};

use ufotm_core::TmBackend;
use ufotm_machine::Addr;
use ufotm_native::{run_threads, NativeTl2};

const THREADS: usize = 4;
const COUNTER: Addr = Addr(4096);

fn heap() -> NativeTl2 {
    NativeTl2::new(1 << 16, 1 << 12, 1 << 12)
}

#[test]
fn contended_counter_counts_exactly() {
    let shared = heap();
    const PER_THREAD: u64 = 400;
    let (stats, _) = run_threads(&shared, THREADS, |th| {
        for _ in 0..PER_THREAD {
            th.transaction(|tx| {
                let v = tx.read(COUNTER)?;
                tx.work(8)?;
                tx.write(COUNTER, v + 1)?;
                Ok(())
            });
        }
    });
    assert_eq!(shared.peek(COUNTER), THREADS as u64 * PER_THREAD);
    assert_eq!(stats.commits, THREADS as u64 * PER_THREAD);
    assert_eq!(
        stats.begins,
        stats.commits + stats.total_aborts(),
        "every begin ends in exactly one commit or abort"
    );
}

#[test]
fn disjoint_counters_never_conflict() {
    let shared = heap();
    const PER_THREAD: u64 = 500;
    // One counter per thread, spread across distinct cache lines.
    let slot = |tid: usize| Addr(COUNTER.0 + (tid as u64) * 64);
    let (stats, _) = run_threads(&shared, THREADS, |th| {
        let mine = slot(th.tid());
        for _ in 0..PER_THREAD {
            th.transaction(|tx| {
                let v = tx.read(mine)?;
                tx.write(mine, v + 1)?;
                Ok(())
            });
        }
    });
    for tid in 0..THREADS {
        assert_eq!(shared.peek(slot(tid)), PER_THREAD);
    }
    // Distinct lines *may* still share a hash stripe; with a 4096-entry
    // table that's vanishingly rare, but the hard guarantee is progress
    // and exactness, so only assert the counts.
    assert_eq!(stats.commits, THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_list_pushes_preserve_every_node() {
    // Each thread transactionally allocates nodes and prepends them to
    // one shared list head — alloc under contention plus multi-word
    // write sets.
    let shared = heap();
    const PER_THREAD: u64 = 150;
    let head = COUNTER;
    let (stats, _) = run_threads(&shared, THREADS, |th| {
        let tid = th.tid() as u64;
        for i in 0..PER_THREAD {
            let payload = tid * PER_THREAD + i + 1;
            th.transaction(|tx| {
                let node = tx.alloc(2)?; // [payload, next]
                let old = tx.read(head)?;
                tx.write(node, payload)?;
                tx.write(Addr(node.0 + 8), old)?;
                tx.write(head, node.0)?;
                Ok(())
            });
        }
    });
    // Walk the list: every payload exactly once.
    let mut seen = vec![false; (THREADS as u64 * PER_THREAD) as usize + 1];
    let mut cur = shared.peek(head);
    let mut len = 0u64;
    while cur != 0 {
        let payload = shared.peek(Addr(cur)) as usize;
        assert!(payload >= 1 && payload < seen.len(), "corrupt payload");
        assert!(!seen[payload], "payload {payload} linked twice");
        seen[payload] = true;
        cur = shared.peek(Addr(cur + 8));
        len += 1;
    }
    assert_eq!(len, THREADS as u64 * PER_THREAD);
    assert_eq!(stats.commits, THREADS as u64 * PER_THREAD);
}

#[test]
fn barrier_separates_phases() {
    // Phase 1: everyone increments. Barrier. Phase 2: everyone reads and
    // must observe the complete phase-1 total — a use-after-barrier read
    // of a stale value means the barrier or publication is broken.
    let shared = heap();
    let observed_short = AtomicU64::new(0);
    let (_, _) = run_threads(&shared, THREADS, |th| {
        th.transaction(|tx| {
            let v = tx.read(COUNTER)?;
            tx.write(COUNTER, v + 1)?;
            Ok(())
        });
        th.barrier();
        let total = th.plain_load(COUNTER);
        if total != THREADS as u64 {
            observed_short.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(observed_short.load(Ordering::Relaxed), 0);
}

#[test]
fn thread_handles_report_identity() {
    let shared = heap();
    let (_, tids) = run_threads(&shared, THREADS, |th| {
        assert_eq!(th.threads(), THREADS);
        th.tid()
    });
    assert_eq!(tids, (0..THREADS).collect::<Vec<_>>());
}
