//! Strong-atomicity acceptance tests for the mprotect guard (ISSUE 8):
//! a plain (non-transactional) access racing a USTM commit window must
//! be detected, classified, and deferred past the window — never lost,
//! never torn.
//!
//! All tests no-op (pass trivially) when the guard is unavailable: off
//! feature, non-Linux/x86_64, or `UFOTM_SKIP_GUARD=1` (the TSan CI job
//! sets it — the dual mapping's aliased views are invisible to TSan's
//! shadow memory, and these tests are about the MMU, not data races).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use ufotm_machine::Addr;
use ufotm_native::{guard, NativeHybrid, NativeHybridPolicy, NativeTl2};

const X: Addr = Addr(4096); // word 512: its own page, away from page 0
const DEADLINE: Duration = Duration::from_secs(20);

fn wait_until(mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < DEADLINE, "guard test deadline exceeded");
        std::thread::yield_now();
    }
}

/// The acceptance criterion, verbatim: a racing plain *write* into a
/// guarded page during the commit window is detected (faults into the
/// classifying handler), stalled, and lands after the window — the
/// write is serialized after the commit, not silently lost and not
/// interleaved into the write-back.
#[test]
fn racing_plain_write_is_classified_and_deferred() {
    if !guard::available() {
        return;
    }
    let heap = NativeTl2::new(1 << 14, 1 << 8, 1 << 13);
    heap.poke(X, 7);
    assert!(heap.guard_stats().guarded, "dual mapping should be active");

    std::thread::scope(|scope| {
        // Open the commit window exactly as a USTM commit does.
        let win = heap.debug_open_window(&[X]);
        let baseline = heap.guard_stats();

        let poker = scope.spawn(|| {
            // This plain store faults: the page is PROT_NONE. The
            // handler classifies it (in-window, inside the heap),
            // spins until the window closes, then the store
            // re-executes and lands.
            heap.poke(X, 99);
        });

        // The racing writer is stalled inside the fault handler: its
        // store has been *detected* but must not have reached memory.
        wait_until(|| heap.guard_stats().faults_in_window > baseline.faults_in_window);
        assert_eq!(
            heap.debug_shadow_peek(X),
            7,
            "plain write leaked into the commit window"
        );
        let off = heap
            .debug_last_fault_offset()
            .expect("fault should be classified with an address");
        assert_eq!(
            off as u64 / 4096,
            X.0 / 4096,
            "fault classified to the wrong page"
        );

        // Close the window: the deferred store must now land.
        drop(win);
        poker.join().expect("poker thread panicked");
        assert_eq!(heap.peek(X), 99, "deferred plain write was lost");
    });

    let stats = heap.guard_stats();
    assert!(stats.windows_opened >= 1);
    assert!(stats.faults_in_window >= 1);
}

/// Same for a racing plain *read*: it faults, stalls, and observes
/// post-window state — never a torn intermediate.
#[test]
fn racing_plain_read_defers_to_post_window_state() {
    if !guard::available() {
        return;
    }
    let heap = NativeTl2::new(1 << 14, 1 << 8, 1 << 13);
    heap.poke(X, 1);

    std::thread::scope(|scope| {
        let win = heap.debug_open_window(&[X]);
        let baseline = heap.guard_stats();
        let reader = scope.spawn(|| heap.peek(X));
        wait_until(|| heap.guard_stats().faults_in_window > baseline.faults_in_window);
        // The shadow view itself never faults, even mid-window.
        assert_eq!(heap.debug_shadow_peek(X), 1);
        drop(win);
        let seen = reader.join().expect("reader thread panicked");
        assert_eq!(seen, 1, "deferred read saw a torn value");
    });
}

/// Regression: registering a *second*, smaller guarded heap must not
/// disturb the first heap's registered length. The original slot-claim
/// loop wrote `REGION_LEN[slot]` for every probed slot before the CAS
/// on `REGION_BASE`, so a second registration shrank (or grew) the
/// recorded length of already-occupied slots — after which a perfectly
/// legitimate guarded access high in the first heap was misclassified
/// as "not ours" and crashed through the restored old disposition.
#[test]
fn second_heap_registration_preserves_first_heap_length() {
    if !guard::available() {
        return;
    }
    // 16 Ki words = 128 KiB guarded heap.
    let big = NativeTl2::new(1 << 14, 1 << 8, 1 << 13);
    // 512 words = 4 KiB: registering this while `big` is live probes
    // (and under the bug, clobbered) `big`'s occupied slot first.
    let small = NativeTl2::new(1 << 9, 1 << 8, 1 << 8);
    assert!(big.guard_stats().guarded && small.guard_stats().guarded);

    // The last line of `big` — far beyond `small`'s 4 KiB length, so a
    // clobbered slot length turns this fault into a crash.
    let high = Addr((1 << 14) * 8 - 64);
    big.poke(high, 5);

    std::thread::scope(|scope| {
        let win = big.debug_open_window(&[high]);
        let baseline = big.guard_stats();
        let poker = scope.spawn(|| big.poke(high, 6));
        wait_until(|| big.guard_stats().faults_in_window > baseline.faults_in_window);
        drop(win);
        poker.join().expect("poker thread panicked");
    });
    assert_eq!(big.peek(high), 6, "deferred high-address write was lost");
    drop(small);
}

/// End-to-end: plain pokes/peeks hammer a word that shares a page with
/// words a USTM transaction commits to. Every committed value must be
/// consistent — the plain traffic is serialized around the commit
/// windows by the guard, and the final state reflects both writers.
#[test]
fn ustm_commits_with_concurrent_plain_traffic() {
    if !guard::available() {
        return;
    }
    let h = NativeHybrid::new(
        1 << 14,
        1 << 8,
        1 << 13,
        2,
        1 << 6,
        NativeHybridPolicy::default(),
    );
    let a = Addr(4096); // same page as b: plain traffic to b false-shares
    let b = Addr(4096 + 256);
    const ROUNDS: u64 = 200;
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let plain = scope.spawn(|| {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                h.poke(b, n);
                assert_eq!(h.peek(b), n, "plain word torn by a commit window");
                n += 1;
            }
            n
        });

        let mut txn = ufotm_native::NativeUstmTxn::new(h.tl2(), h.ustm(), 0);
        for i in 1..=ROUNDS {
            txn.run(|t| {
                let v = t.read(a)?;
                t.write(a, v + 1)?;
                Ok(i)
            });
        }
        stop.store(true, Ordering::Relaxed);
        let pokes = plain.join().expect("plain thread panicked");
        assert!(pokes > 0, "plain thread never ran");
    });

    assert_eq!(h.peek(a), ROUNDS, "USTM increments lost");
    let stats = h.guard_stats();
    assert_eq!(
        stats.windows_opened, ROUNDS,
        "every writing USTM commit should open one window"
    );
}
