//! Native fault-tolerance torture (ISSUE 9): seeded failpoint sweeps
//! over real threads. Each matrix cell arms a [`ChaosPlan`] — forced
//! aborts, stalls, and one deliberate worker panic at a rotated
//! injection site — runs a workload on the hybrid, and asserts that
//! the survivors reach quiescence with the heap consistent: counter
//! balance against per-tid progress words committed in the same
//! transactions, a structurally sound ownership table, drained gates,
//! and the reclamation counters that the schedule forces (orphan
//! steals, orphan releases, helper completions) actually nonzero.
//!
//! Every cell echoes `workload/site/seed` to stderr before running, so
//! a failure names the exact schedule to replay; a per-cell watchdog
//! aborts the process (echoing the cell again) if a cell wedges
//! instead of completing — forward progress is an assertion here, not
//! a hope. `UFOTM_TORTURE_SEEDS` widens the sweep (default 2 seeds).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use ufotm_core::TmBackend;
use ufotm_machine::Addr;
use ufotm_native::{
    run_hybrid_threads, run_hybrid_threads_collect, run_threads, run_threads_collect, ChaosPlan,
    FailSite, HybridThread, InjectedPanic, NativeHybrid, NativeHybridPolicy, NativeTl2,
};

const THREADS: usize = 4;
const VICTIM: usize = 2;
const PER: u64 = 40;
/// Hard per-cell deadline: a wedged cell is a progress bug, and the
/// watchdog turns it into an immediate, seed-echoing abort instead of
/// an opaque CI timeout.
const CELL_DEADLINE: Duration = Duration::from_secs(120);

// Heap layout (byte addresses; the heap is 1<<16 words).
const COUNTER: Addr = Addr(512);
const ACCT_A: Addr = Addr(1024);
const ACCT_B: Addr = Addr(8192);
const TOTAL: u64 = 1_000_000;
const INSERTS: Addr = Addr(2048);
const SLOT_BASE: u64 = 16384;
const N_SLOTS: u64 = 64;
const SUM_BASE: u64 = 32768;
const CNT_BASE: u64 = 33536;
const K: u64 = 8;
/// Per-tid progress words, one cache line apart. Updated inside the
/// same transaction as the workload effect, so at quiescence the
/// structure totals must balance against them exactly — a lost update
/// or a half-applied dead commit breaks the balance.
const PROG_BASE: u64 = 49152;
const PROG2_OFF: u64 = 8;

fn prog(tid: usize) -> Addr {
    Addr(PROG_BASE + tid as u64 * 64)
}

fn prog2(tid: usize) -> Addr {
    Addr(PROG_BASE + tid as u64 * 64 + PROG2_OFF)
}

/// Silence the default panic hook for scheduled [`InjectedPanic`]
/// deaths — they are the test working as intended, not noise worth a
/// backtrace. Genuine panics still print through the previous hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs `f` under a hard deadline. On expiry the watchdog echoes the
/// cell label (with its seed) and aborts the whole process: a torture
/// cell that stops making progress has found a real wedge, and the
/// replay information must out-live it.
fn with_watchdog<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let label_owned = label.to_string();
    let dog = std::thread::spawn(move || {
        let start = Instant::now();
        while !flag.load(Ordering::Relaxed) {
            if start.elapsed() > CELL_DEADLINE {
                eprintln!("TORTURE WATCHDOG: no forward progress in {label_owned}");
                std::process::abort();
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    dog.join().expect("watchdog thread panicked");
    r
}

#[derive(Clone, Copy, Debug)]
enum Workload {
    /// Shared counter increments (the smallest possible hot spot).
    Counter,
    /// Conserved transfers between two accounts on different pages.
    Transfer,
    /// Scattered slot writes plus a shared insert counter (ssca2-style
    /// adjacency inserts).
    Scatter,
    /// Centroid sum/count accumulation (kmeans-style reductions).
    Accumulate,
}

const WORKLOADS: [Workload; 4] = [
    Workload::Counter,
    Workload::Transfer,
    Workload::Scatter,
    Workload::Accumulate,
];

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Counter => "counter",
            Workload::Transfer => "transfer",
            Workload::Scatter => "scatter",
            Workload::Accumulate => "accumulate",
        }
    }

    fn setup(self, h: &NativeHybrid) {
        if let Workload::Transfer = self {
            h.poke(ACCT_A, TOTAL);
            h.poke(ACCT_B, 0);
        }
    }

    /// One transaction of this workload: the structural effect and the
    /// per-tid progress update commit (or vanish) together.
    fn step(self, th: &mut HybridThread<'_>, tid: u64, i: u64) {
        match self {
            Workload::Counter => {
                th.transaction(|tx| {
                    let c = tx.read(COUNTER)?;
                    tx.write(COUNTER, c + 1)?;
                    let p = tx.read(prog(tid as usize))?;
                    tx.write(prog(tid as usize), p + 1)?;
                    Ok(())
                });
            }
            Workload::Transfer => {
                let amount = (tid * 131 + i) % 97 + 1;
                th.transaction(|tx| {
                    let a = tx.read(ACCT_A)?;
                    let moved = if a >= amount {
                        tx.write(ACCT_A, a - amount)?;
                        let b = tx.read(ACCT_B)?;
                        tx.write(ACCT_B, b + amount)?;
                        1
                    } else {
                        0
                    };
                    let p = tx.read(prog(tid as usize))?;
                    tx.write(prog(tid as usize), p + moved)?;
                    let c = tx.read(COUNTER)?;
                    tx.write(COUNTER, c + moved)?;
                    Ok(())
                });
            }
            Workload::Scatter => {
                let slot = Addr(SLOT_BASE + ((tid * 17 + i * 31) % N_SLOTS) * 8);
                th.transaction(|tx| {
                    let _old = tx.read(slot)?;
                    tx.write(slot, (tid << 32) | i)?;
                    let n = tx.read(INSERTS)?;
                    tx.write(INSERTS, n + 1)?;
                    let p = tx.read(prog(tid as usize))?;
                    tx.write(prog(tid as usize), p + 1)?;
                    Ok(())
                });
            }
            Workload::Accumulate => {
                let k = (tid + i) % K;
                let v = i % 13 + 1;
                th.transaction(|tx| {
                    let s = tx.read(Addr(SUM_BASE + k * 8))?;
                    tx.write(Addr(SUM_BASE + k * 8), s + v)?;
                    let c = tx.read(Addr(CNT_BASE + k * 8))?;
                    tx.write(Addr(CNT_BASE + k * 8), c + 1)?;
                    let p = tx.read(prog(tid as usize))?;
                    tx.write(prog(tid as usize), p + v)?;
                    let p2 = tx.read(prog2(tid as usize))?;
                    tx.write(prog2(tid as usize), p2 + 1)?;
                    Ok(())
                });
            }
        }
    }

    /// Counter-balance audit at quiescence: the structure totals must
    /// equal what the progress words say was committed.
    fn verify(self, h: &NativeHybrid, label: &str) {
        let progress: u64 = (0..THREADS).map(|t| h.peek(prog(t))).sum();
        match self {
            Workload::Counter => {
                assert_eq!(h.peek(COUNTER), progress, "{label}: counter out of balance");
            }
            Workload::Transfer => {
                assert_eq!(
                    h.peek(ACCT_A) + h.peek(ACCT_B),
                    TOTAL,
                    "{label}: transfers tore the conserved total"
                );
                assert_eq!(
                    h.peek(COUNTER),
                    progress,
                    "{label}: transfer count out of balance"
                );
            }
            Workload::Scatter => {
                assert_eq!(h.peek(INSERTS), progress, "{label}: inserts out of balance");
            }
            Workload::Accumulate => {
                let sums: u64 = (0..K).map(|k| h.peek(Addr(SUM_BASE + k * 8))).sum();
                let counts: u64 = (0..K).map(|k| h.peek(Addr(CNT_BASE + k * 8))).sum();
                let progress2: u64 = (0..THREADS).map(|t| h.peek(prog2(t))).sum();
                assert_eq!(sums, progress, "{label}: centroid sums out of balance");
                assert_eq!(counts, progress2, "{label}: centroid counts out of balance");
            }
        }
    }
}

fn world(policy: NativeHybridPolicy) -> NativeHybrid {
    NativeHybrid::new(1 << 16, 1 << 12, 1 << 12, THREADS, 1 << 8, policy)
}

/// One matrix cell: arm `mixed(seed)` plus a one-shot panic for the
/// victim tid at `site`, run the workload, and audit everything.
fn run_cell(w: Workload, seed: u64, site: FailSite) {
    let label = format!(
        "cell[workload={} site={} seed={seed:#x}]",
        w.name(),
        site.name()
    );
    eprintln!("torture {label}");
    with_watchdog(&label, || {
        let h = world(NativeHybridPolicy {
            failover_after: 2,
            ..NativeHybridPolicy::default()
        });
        w.setup(&h);
        // The victim only reaches USTM sites on the slow path, so force
        // it there when the scheduled death is a USTM site; TL2 sites
        // are hit on the ordinary fast path.
        let victim_slow = matches!(
            site,
            FailSite::UstmRead | FailSite::UstmCommit | FailSite::UstmSealed
        );
        h.tl2()
            .chaos()
            .arm(&ChaosPlan::mixed(seed).with_panic(site, Some(VICTIM), 3));

        let outcomes = run_hybrid_threads_collect(&h, THREADS, |th| {
            let tid = th.tid();
            for i in 0..PER {
                if tid == VICTIM && victim_slow {
                    th.force_failover_next();
                }
                w.step(th, tid as u64, i);
            }
        });
        h.tl2().chaos().disarm();
        let report = h.tl2().chaos().report();

        // The scheduled death must actually have fired, on the victim,
        // at the scheduled site — and nobody else may have died.
        assert_eq!(
            report.panics_fired, 1,
            "{label}: scheduled panic never fired"
        );
        for o in &outcomes {
            if o.tid == VICTIM {
                let msg = o.result.as_ref().expect_err("victim must have died");
                assert!(
                    msg.contains("injected panic at") && msg.contains(site.name()),
                    "{label}: victim died of the wrong cause: {msg}"
                );
            } else {
                assert!(o.result.is_ok(), "{label}: survivor tid {} died", o.tid);
                assert_eq!(
                    o.stats.total_commits(),
                    PER,
                    "{label}: survivor tid {} lost commits",
                    o.tid
                );
            }
        }

        // Quiescence: gates repaired, ownership table structurally
        // sound and fully drained, no stripe lock left stamped.
        h.ustm()
            .audit()
            .unwrap_or_else(|e| panic!("{label}: otable audit failed: {e}"));
        assert_eq!(h.ustm().owned_lines(), 0, "{label}: ownership leaked");
        w.verify(&h, &label);

        // Site-specific reclamation guarantees: the victim died holding
        // exactly the state this site implies, so the matching counter
        // must be nonzero (TmBackend-visible, like the simulator's).
        let mut probe = HybridThread::new(&h, None, 0, THREADS);
        match site {
            FailSite::Tl2LockHeld => assert!(
                TmBackend::orphan_reclaims(&mut probe) > 0,
                "{label}: death with stripe locks held must force a steal"
            ),
            FailSite::UstmCommit => assert!(
                h.ustm().orphan_releases() > 0,
                "{label}: unsealed death must force an orphan release"
            ),
            FailSite::UstmSealed => assert!(
                h.ustm().helper_completions() > 0,
                "{label}: sealed death must be helper-completed"
            ),
            _ => {}
        }
    });
}

/// The sweep: seeds × workloads, with the scheduled death rotated
/// through every recoverable injection site so each site is exercised
/// by at least one cell per sweep.
#[test]
fn chaos_matrix_survivors_stay_consistent() {
    quiet_injected_panics();
    let seeds: u64 = std::env::var("UFOTM_TORTURE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let rotation = [
        FailSite::Tl2Read,
        FailSite::Tl2Commit,
        FailSite::Tl2LockHeld,
        FailSite::UstmRead,
        FailSite::UstmCommit,
        FailSite::UstmSealed,
    ];
    for s in 0..seeds {
        for (wi, &w) in WORKLOADS.iter().enumerate() {
            let site = rotation[(wi + s as usize) % rotation.len()];
            run_cell(w, 0xC0FF_EE00 + s * 0x0101 + wi as u64, site);
        }
    }
}

/// Deterministic TL2 orphan steal: tid 0 dies at its first commit with
/// stripe locks held (pre-publication, so its update is cleanly lost);
/// tid 1 waits for the death, then commits through the orphaned stripe
/// by stealing the dead owner's lock.
#[test]
fn tl2_orphan_steal_unwedges_the_stripe() {
    quiet_injected_panics();
    let shared = NativeTl2::new(1 << 14, 1 << 8, 1 << 12);
    shared
        .chaos()
        .arm(&ChaosPlan::quiet(11).with_panic(FailSite::Tl2LockHeld, Some(0), 1));
    let outcomes = with_watchdog("tl2_orphan_steal", || {
        run_threads_collect(&shared, 2, |th| {
            if th.tid() == 0 {
                th.transaction(|tx| {
                    let v = tx.read(COUNTER)?;
                    tx.write(COUNTER, v + 1)?;
                    Ok(())
                });
            } else {
                let start = Instant::now();
                while !shared.liveness().is_dead(0) {
                    assert!(start.elapsed() < CELL_DEADLINE, "victim never died");
                    std::thread::yield_now();
                }
                th.transaction(|tx| {
                    let v = tx.read(COUNTER)?;
                    tx.write(COUNTER, v + 1)?;
                    Ok(())
                });
            }
        })
    });
    shared.chaos().disarm();
    assert!(outcomes[0].result.is_err(), "tid 0 should die lock-held");
    assert!(outcomes[1].result.is_ok());
    assert!(
        shared.orphan_steals() >= 1,
        "survivor (or the end-of-run sweep) must steal the orphaned stripe lock"
    );
    assert_eq!(
        shared.peek(COUNTER),
        1,
        "dead pre-publication increment must vanish; survivor's must land"
    );
}

/// Deterministic helper completion: the only worker dies *sealed*
/// (inside the commit window, redo record published). The reaper must
/// finish the write-back from the record — the committed values appear
/// even though the committer never executed a single store.
#[test]
fn sealed_death_is_helper_completed() {
    quiet_injected_panics();
    let h = world(NativeHybridPolicy::default());
    h.tl2()
        .chaos()
        .arm(&ChaosPlan::quiet(12).with_panic(FailSite::UstmSealed, Some(0), 1));
    let outcomes = with_watchdog("sealed_death", || {
        run_hybrid_threads_collect(&h, 1, |th| {
            th.force_failover_next();
            th.transaction(|tx| {
                tx.write(COUNTER, 42)?;
                tx.write(ACCT_A, 43)?;
                Ok(())
            });
        })
    });
    h.tl2().chaos().disarm();
    let msg = outcomes[0]
        .result
        .as_ref()
        .expect_err("worker must die sealed");
    assert!(msg.contains("ustm-sealed"), "wrong death: {msg}");
    assert_eq!(h.ustm().helper_completions(), 1);
    assert_eq!(h.peek(COUNTER), 42, "helper must finish the sealed commit");
    assert_eq!(h.peek(ACCT_A), 43, "helper must replay the whole record");
    assert_eq!(h.ustm().owned_lines(), 0, "reaper must sweep ownership");
    h.ustm().audit().expect("otable audit");
}

/// Deterministic orphan release: the worker dies with write ownerships
/// acquired but *unsealed* — the transaction must be discarded whole,
/// its ownerships swept, and nothing may reach the heap.
#[test]
fn unsealed_death_is_discarded_whole() {
    quiet_injected_panics();
    let h = world(NativeHybridPolicy::default());
    h.tl2()
        .chaos()
        .arm(&ChaosPlan::quiet(13).with_panic(FailSite::UstmCommit, Some(0), 1));
    let outcomes = with_watchdog("unsealed_death", || {
        run_hybrid_threads_collect(&h, 1, |th| {
            th.force_failover_next();
            th.transaction(|tx| {
                tx.write(COUNTER, 7)?;
                Ok(())
            });
        })
    });
    h.tl2().chaos().disarm();
    assert!(outcomes[0].result.is_err());
    assert_eq!(h.ustm().orphan_releases(), 1);
    assert_eq!(h.peek(COUNTER), 0, "unsealed death must not leak writes");
    assert_eq!(h.ustm().owned_lines(), 0);
    h.ustm().audit().expect("otable audit");
}

/// The crafted native livelock: every fast-path read, fast-path commit,
/// and slow-path read is forced to abort, so neither retrying tier can
/// ever commit. The third (serial-irrevocable) tier must complete every
/// transaction anyway — this is the acceptance criterion for the
/// native watchdog mirroring the simulator's.
#[test]
fn crafted_livelock_completes_on_the_serial_tier() {
    quiet_injected_panics();
    const N: u64 = 10;
    let h = world(NativeHybridPolicy {
        failover_after: 1,
        serial_after: 2,
        ..NativeHybridPolicy::default()
    });
    let mut plan = ChaosPlan::quiet(0xDEAD);
    plan.abort_pmil[FailSite::Tl2Read.index()] = 1000;
    plan.abort_pmil[FailSite::Tl2Commit.index()] = 1000;
    plan.abort_pmil[FailSite::UstmRead.index()] = 1000;
    h.tl2().chaos().arm(&plan);
    let (stats, _) = with_watchdog("crafted_livelock", || {
        run_hybrid_threads(&h, 2, |th| {
            for _ in 0..N {
                th.transaction(|tx| {
                    let v = tx.read(COUNTER)?;
                    tx.write(COUNTER, v + 1)?;
                    Ok(())
                });
            }
        })
    });
    h.tl2().chaos().disarm();
    assert_eq!(h.peek(COUNTER), 2 * N, "serial tier lost updates");
    assert_eq!(stats.serial_commits, 2 * N, "every txn must land serially");
    assert_eq!(stats.serial_escalations, 2 * N);
    assert_eq!(
        stats.fast.commits, 0,
        "fast path was unconditionally aborted"
    );
    assert_eq!(
        stats.slow.commits, 0,
        "slow path was unconditionally aborted"
    );
    assert!(stats.failovers >= 2 * N);
    let mut probe = HybridThread::new(&h, None, 0, THREADS);
    assert_eq!(
        TmBackend::serial_commits(&mut probe),
        0,
        "per-thread counter"
    );
}

/// Satellite 3: plain peeks racing a *stalled* slow-path commit inside
/// the PhTM gate. The committer is delayed mid-window (sealed, public
/// view protected where guarded, gate raised everywhere); concurrent
/// plain readers must never observe the write-back half-applied.
/// Transactions write `X` then `X2` (ascending addresses, so write-back
/// updates `X` first): reading `X` then `X2`, a torn observation is
/// exactly `x2 < x`.
#[test]
fn plain_peeks_never_see_a_half_applied_slow_commit() {
    quiet_injected_panics();
    const X: Addr = Addr(4096);
    const X2: Addr = Addr(4096 + 512);
    const ROUNDS: u64 = 150;
    let h = world(NativeHybridPolicy::default());
    let mut plan = ChaosPlan::quiet(0xBEEF);
    plan.delay_pmil[FailSite::UstmSealed.index()] = 1000;
    plan.delay_spins = 20_000;
    h.tl2().chaos().arm(&plan);

    with_watchdog("plain_vs_stalled_commit", || {
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let done = &done;
            let h = &h;
            let reader = scope.spawn(move || {
                let mut pairs = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let x = h.peek(X);
                    let x2 = h.peek(X2);
                    assert!(
                        x2 >= x,
                        "plain peek saw a half-applied commit: X={x} X2={x2}"
                    );
                    pairs += 1;
                }
                pairs
            });
            let (_, results) = run_hybrid_threads(h, 1, |th| {
                for i in 1..=ROUNDS {
                    th.force_failover_next();
                    th.transaction(|tx| {
                        tx.write(X, i)?;
                        tx.write(X2, i)?;
                        Ok(())
                    });
                }
                th.tid()
            });
            assert_eq!(results.len(), 1);
            done.store(true, Ordering::Relaxed);
            let pairs = reader.join().expect("reader panicked");
            assert!(pairs > 0, "reader never ran against the stalled commits");
        });
    });
    h.tl2().chaos().disarm();
    assert_eq!(h.peek(X), ROUNDS);
    assert_eq!(h.peek(X2), ROUNDS);
}

/// Poison tolerance: a deliberately poisoned ownership bin must not
/// cascade — the next locker recovers the guard, the recovery is
/// counted, the structural audit passes, and transactions through that
/// bin keep committing.
#[test]
fn poisoned_otable_bin_recovers_and_audits_clean() {
    quiet_injected_panics();
    let h = world(NativeHybridPolicy::default());
    let line = COUNTER.0 / 64;
    h.ustm().debug_poison_bin(line);
    let (stats, _) = run_hybrid_threads(&h, 1, |th| {
        th.force_failover_next();
        th.transaction(|tx| {
            let v = tx.read(COUNTER)?;
            tx.write(COUNTER, v + 5)?;
            Ok(())
        });
    });
    assert_eq!(stats.slow.commits, 1);
    assert_eq!(h.peek(COUNTER), 5);
    assert!(
        h.ustm().poison_recovered() > 0,
        "recovery through the poisoned bin must be counted"
    );
    h.ustm().audit().expect("audit after poison recovery");
}

/// Satellite 1 (TL2 runner): a genuine (non-injected) worker panic is
/// collected, not cascaded — survivors finish their full quota and
/// their outcomes stay assertable, and the corpse's partial counters
/// survive with its rendered payload.
#[test]
fn collect_runner_reports_survivors_alongside_the_dead() {
    quiet_injected_panics();
    let shared = NativeTl2::new(1 << 14, 1 << 8, 1 << 12);
    let outcomes = run_threads_collect(&shared, 3, |th| {
        let tid = th.tid();
        for i in 0..20u64 {
            th.transaction(|tx| {
                let v = tx.read(prog(tid))?;
                tx.write(prog(tid), v + 1)?;
                Ok(())
            });
            if tid == 1 && i == 4 {
                panic!("deliberate test panic after five commits");
            }
        }
    });
    assert_eq!(outcomes.len(), 3);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.tid, i, "outcomes must come back in tid order");
    }
    let dead = &outcomes[1];
    let msg = dead.result.as_ref().expect_err("tid 1 must have died");
    assert!(msg.contains("deliberate test panic"), "payload lost: {msg}");
    assert_eq!(dead.stats.commits, 5, "corpse counters must survive");
    for o in [&outcomes[0], &outcomes[2]] {
        assert!(o.result.is_ok());
        assert_eq!(o.stats.commits, 20, "survivor lost commits");
        assert_eq!(shared.peek(prog(o.tid)), 20);
    }
    assert!(shared.liveness().is_dead(1));
}

/// Satellite 1 (assert wrapper): `run_threads` still fails loudly on a
/// death — naming the tid and payload — so existing callers keep their
/// all-or-nothing contract.
#[test]
fn assert_runner_names_the_dead_tid_and_payload() {
    quiet_injected_panics();
    let shared = NativeTl2::new(1 << 14, 1 << 8, 1 << 12);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_threads(&shared, 2, |th| {
            if th.tid() == 0 {
                panic!("boom in tid zero");
            }
        })
    }))
    .expect_err("run_threads must propagate worker deaths");
    let msg = err
        .downcast_ref::<String>()
        .expect("assert message is a String");
    assert!(
        msg.contains("tid 0") && msg.contains("boom in tid zero"),
        "death report must name tid and payload: {msg}"
    );
}

/// A worker killed while stalled *behind* it must not wedge: tid 1
/// dies sealed while tid 0 wants the same line. tid 0's stall loop
/// must detect the death, helper-complete the record, and commit.
#[test]
fn waiter_reclaims_a_dead_blocker_instead_of_spinning_forever() {
    quiet_injected_panics();
    let h = world(NativeHybridPolicy::default());
    h.tl2()
        .chaos()
        .arm(&ChaosPlan::quiet(21).with_panic(FailSite::UstmSealed, Some(1), 1));
    let outcomes = with_watchdog("dead_blocker", || {
        run_hybrid_threads_collect(&h, 2, |th| {
            let tid = th.tid();
            if tid == 1 {
                // Dies inside its sealed commit window, leaving write
                // ownership of COUNTER's line for tid 0 to stall on.
                th.force_failover_next();
                th.transaction(|tx| {
                    tx.write(COUNTER, 100)?;
                    Ok(())
                });
            } else {
                let start = Instant::now();
                while !h.tl2().liveness().is_dead(1) {
                    assert!(start.elapsed() < CELL_DEADLINE, "blocker never died");
                    std::thread::yield_now();
                }
                // The corpse was reaped in-thread before mark-dead
                // became visible here, but the *stall path* reclaim is
                // exercised by the matrix; this pins the end state:
                // traffic through the same line commits cleanly.
                th.force_failover_next();
                th.transaction(|tx| {
                    let v = tx.read(COUNTER)?;
                    tx.write(COUNTER, v + 1)?;
                    Ok(())
                });
            }
        })
    });
    h.tl2().chaos().disarm();
    assert!(outcomes[1].result.is_err());
    assert!(outcomes[0].result.is_ok());
    assert_eq!(
        h.peek(COUNTER),
        101,
        "helper-completed 100, then the survivor's +1"
    );
    assert_eq!(h.ustm().helper_completions(), 1);
    assert_eq!(h.ustm().owned_lines(), 0);
}
