//! Guard teardown robustness (ISSUE 9, satellite): a worker that
//! panics *inside* the commit window — after `mprotect(PROT_NONE)` has
//! been raised on the public view — must not leave the heap
//! unreadable. The window guard restores protection on the unwind, the
//! runner helper-completes the sealed record, and subsequent plain and
//! transactional traffic proceeds as if the death never happened.

use std::sync::Once;

use ufotm_core::TmBackend;
use ufotm_machine::Addr;
use ufotm_native::{
    guard, run_hybrid_threads, run_hybrid_threads_collect, ChaosPlan, FailSite, InjectedPanic,
    NativeHybrid, NativeHybridPolicy,
};

const X: Addr = Addr(4096); // its own page, away from page 0
const Y: Addr = Addr(12288); // a different page: forces a multi-run window

fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

fn world() -> NativeHybrid {
    NativeHybrid::new(
        1 << 14,
        1 << 8,
        1 << 12,
        1,
        1 << 6,
        NativeHybridPolicy::default(),
    )
}

/// The regression proper: die at the `GuardWindow` failpoint (fired
/// run-by-run as protection is raised), then prove the public view was
/// restored — a plain peek must *return*, not fault through a stale
/// `PROT_NONE` page — and the sealed commit was helper-completed.
#[test]
fn panic_inside_the_window_restores_protection_and_completes() {
    quiet_injected_panics();
    let h = world();
    if !h.guard_stats().guarded {
        // Unguarded (feature off, non-x86_64, UFOTM_SKIP_GUARD): the
        // window raises no protection, but the same unwind path runs —
        // covered by `native_torture`'s UstmSealed cells.
        return;
    }
    assert!(guard::available());
    // Two pages in the write set → two mprotect runs → the strike on
    // the *second* run dies with the first page already protected and
    // in `runs`, pinning the incremental-construction unwind.
    h.tl2()
        .chaos()
        .arm(&ChaosPlan::quiet(31).with_panic(FailSite::GuardWindow, Some(0), 2));
    let outcomes = run_hybrid_threads_collect(&h, 1, |th| {
        th.force_failover_next();
        th.transaction(|tx| {
            tx.write(X, 42)?;
            tx.write(Y, 77)?;
            Ok(())
        });
    });
    h.tl2().chaos().disarm();

    let msg = outcomes[0]
        .result
        .as_ref()
        .expect_err("worker must die in-window");
    assert!(msg.contains("guard-window"), "wrong death: {msg}");
    // If the unwind had leaked PROT_NONE, these peeks would fault with
    // no window open and crash the process instead of returning.
    assert_eq!(h.peek(X), 42, "sealed record must be helper-completed");
    assert_eq!(h.peek(Y), 77, "the whole record must be replayed");
    assert_eq!(h.ustm().helper_completions(), 1);
    assert_eq!(h.ustm().owned_lines(), 0);
    h.ustm()
        .audit()
        .expect("otable audit after in-window death");
    let stats = h.guard_stats();
    assert!(
        stats.windows_opened >= 2,
        "victim's window plus the helper's"
    );
}

/// After an in-window death, the guard machinery must still be fully
/// serviceable: fresh commit windows open, protect, and defer racing
/// plain accesses exactly as before the death.
#[test]
fn guard_windows_still_work_after_an_in_window_death() {
    quiet_injected_panics();
    let h = world();
    if !h.guard_stats().guarded {
        return;
    }
    h.tl2()
        .chaos()
        .arm(&ChaosPlan::quiet(32).with_panic(FailSite::GuardWindow, Some(0), 1));
    let outcomes = run_hybrid_threads_collect(&h, 1, |th| {
        th.force_failover_next();
        th.transaction(|tx| {
            tx.write(X, 1)?;
            Ok(())
        });
    });
    h.tl2().chaos().disarm();
    assert!(outcomes[0].result.is_err());

    // A full post-mortem commit cycle: slow path, real window, clean
    // commit — the gate mutex was poisoned by the in-window death and
    // must have been recovered, not cascaded.
    let before = h.guard_stats().windows_opened;
    let (stats, _) = run_hybrid_threads(&h, 1, |th| {
        th.force_failover_next();
        th.transaction(|tx| {
            let v = tx.read(X)?;
            tx.write(X, v + 1)?;
            Ok(())
        });
    });
    assert_eq!(stats.slow.commits, 1);
    assert_eq!(
        h.peek(X),
        2,
        "helper-completed 1, then the live commit's +1"
    );
    assert!(
        h.guard_stats().windows_opened > before,
        "no fresh window opened"
    );
}
