//! The mprotect strong-atomicity guard: real MMU protection standing in
//! for the paper's per-line UFO bits.
//!
//! The paper's USTM keeps plain (non-transactional) code honest with
//! per-cache-line UFO fault-on-read/fault-on-write bits: any plain access
//! that would observe a software transaction's intermediate state takes a
//! hardware fault *before* it completes. Real hardware has no UFO bits,
//! but it has an MMU — this module rebuilds the mechanism at **page**
//! granularity with `mprotect(2)`:
//!
//! * The native heap is a `memfd` file mapped **twice**: a *public* view
//!   (all plain accesses and the TL2 fast path go through it) and a
//!   *shadow* view of the same physical pages (the USTM commit write-back
//!   goes through it, so the writer itself never faults).
//! * During a native-USTM commit window the pages holding the write set
//!   are flipped to `PROT_NONE` on the public view only. A racing plain
//!   access to those pages takes a real SIGSEGV.
//! * The installed SIGSEGV handler classifies the fault: if the address
//!   falls in a registered guarded region it is a plain access racing a
//!   commit window — the handler counts it, records the address, spins
//!   (with `sched_yield`) until every window closes, and returns, which
//!   *re-executes* the faulting instruction. The plain access therefore
//!   completes after the commit, serialized — detected and deferred, never
//!   lost and never torn. Faults outside every registered region restore
//!   the previously-installed disposition and return, so the re-executed
//!   instruction reaches the old handler (or the default crash) untouched.
//!
//! ## Limits vs. the paper's UFO bits (docs/ARCHITECTURE.md §5)
//!
//! Page granularity means false sharing: a plain access to an *unrelated*
//! word on a guarded page stalls for the window too (correct, just
//! slower), where UFO bits would have let it through. And the guard is
//! only raised during the commit window (redo-log USTM publishes lazily),
//! not for the whole transaction as eager UFO acquisition would — the
//! window is exactly the span in which intermediate state exists.
//!
//! Everything here is raw Linux syscalls (`mmap`/`mprotect`/
//! `rt_sigaction`/`memfd_create`) via inline assembly — the workspace has
//! no libc dependency. The module is gated on the `mprotect-guard`
//! feature *and* `cfg(all(target_os = "linux", target_arch = "x86_64"))`;
//! elsewhere (and when `UFOTM_SKIP_GUARD` is set, e.g. under
//! ThreadSanitizer) the heap falls back to plain boxed storage and
//! [`available`] reports `false`.

/// Whether the guard is compiled in *and* usable at runtime (right
/// platform, not disabled via the `UFOTM_SKIP_GUARD` environment
/// variable).
#[must_use]
pub fn available() -> bool {
    imp::compiled_in() && std::env::var_os("UFOTM_SKIP_GUARD").is_none()
}

/// Guard observability counters for one heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Whether this heap is actually dual-mapped and guardable.
    pub guarded: bool,
    /// Commit windows opened on this heap.
    pub windows_opened: u64,
    /// Plain accesses that faulted on this heap's pages *during* a commit
    /// window — each one a strong-atomicity event: detected, stalled past
    /// the window, then re-executed.
    pub faults_in_window: u64,
    /// Faults attributed to this heap that arrived just after the last
    /// window closed (the access simply re-executes; still never lost).
    pub faults_after_window: u64,
}

#[cfg(all(
    feature = "mprotect-guard",
    target_os = "linux",
    target_arch = "x86_64"
))]
pub(crate) use imp::{DualMapping, Window};

#[cfg(all(
    feature = "mprotect-guard",
    target_os = "linux",
    target_arch = "x86_64"
))]
#[allow(unsafe_code)]
mod imp {
    //! The real (x86_64 Linux) implementation. All `unsafe` in the crate
    //! lives in this module: raw syscalls, the signal handler, and the
    //! word views over the two mappings.

    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, Once};

    use super::GuardStats;
    use crate::chaos::{lock_recover, FailSite, NativeChaos};

    pub(crate) fn compiled_in() -> bool {
        true
    }

    // ---- raw syscalls ----------------------------------------------------

    const SYS_CLOSE: usize = 3;
    const SYS_MMAP: usize = 9;
    const SYS_MPROTECT: usize = 10;
    const SYS_MUNMAP: usize = 11;
    const SYS_RT_SIGACTION: usize = 13;
    const SYS_SCHED_YIELD: usize = 24;
    const SYS_FTRUNCATE: usize = 77;
    const SYS_MEMFD_CREATE: usize = 319;

    const PROT_NONE: usize = 0;
    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 1;
    const SIGSEGV: usize = 11;
    const SA_SIGINFO: usize = 0x4;
    const SA_RESTORER: usize = 0x0400_0000;
    const SA_ONSTACK: usize = 0x0800_0000;

    pub(crate) const PAGE_BYTES: usize = 4096;

    /// Raw 6-argument syscall. Returns the kernel's raw result
    /// (`-errno` on failure).
    ///
    /// SAFETY: the caller must pass arguments valid for syscall `n`.
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction with the kernel's register
        // convention; clobbers rcx/r11 as declared. Soundness of the call
        // itself is the forwarded caller contract.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    // SAFETY: same contract as `syscall6` — caller passes arguments valid
    // for syscall `n`; the tail positions are zero-filled, which every
    // syscall used here ignores.
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        // SAFETY: forwarded caller contract.
        unsafe { syscall6(n, a1, a2, a3, a4, 0, 0) }
    }

    // SAFETY: same contract as `syscall6`; unused argument registers are 0.
    unsafe fn syscall3(n: usize, a1: usize, a2: usize, a3: usize) -> isize {
        // SAFETY: forwarded caller contract.
        unsafe { syscall6(n, a1, a2, a3, 0, 0, 0) }
    }

    // SAFETY: same contract as `syscall6`; unused argument registers are 0.
    unsafe fn syscall2(n: usize, a1: usize, a2: usize) -> isize {
        // SAFETY: forwarded caller contract.
        unsafe { syscall6(n, a1, a2, 0, 0, 0, 0) }
    }

    /// Async-signal-safe yield, usable from inside the SIGSEGV handler.
    fn sched_yield() {
        // SAFETY: sched_yield takes no arguments and has no memory effects.
        unsafe {
            syscall6(SYS_SCHED_YIELD, 0, 0, 0, 0, 0, 0);
        }
    }

    /// The kernel's `struct sigaction` on x86_64 (`k_sa_handler`,
    /// `sa_flags`, `sa_restorer`, `sa_mask`).
    #[repr(C)]
    struct KernelSigaction {
        handler: usize,
        flags: usize,
        restorer: usize,
        mask: u64,
    }

    /// `sigreturn` trampoline the kernel jumps to when the handler
    /// returns (we install with `SA_RESTORER` since there is no libc to
    /// provide one).
    #[unsafe(naked)]
    // SAFETY: never called from Rust — the kernel jumps here on handler
    // return with the signal frame already on the stack, which is exactly
    // what `rt_sigreturn` (syscall 15) consumes; naked, so no prologue
    // disturbs that frame.
    unsafe extern "C" fn restorer() {
        core::arch::naked_asm!("mov rax, 15", "syscall");
    }

    // ---- region registry + handler ---------------------------------------

    /// Fixed-size registry of guarded regions (multiple test heaps can be
    /// live in one process; `cargo test` runs tests on concurrent
    /// threads). Registration stores `base` last with `SeqCst` so the
    /// handler — which may run on any thread at any instruction — never
    /// sees a half-registered slot.
    const MAX_REGIONS: usize = 16;

    /// `REGION_BASE` sentinel: the slot is claimed by a registering
    /// thread but its real base/length are not published yet. The
    /// handler skips it like an empty slot.
    const SLOT_CLAIMED: usize = usize::MAX;

    static REGION_BASE: [AtomicUsize; MAX_REGIONS] = [const { AtomicUsize::new(0) }; MAX_REGIONS];
    static REGION_LEN: [AtomicUsize; MAX_REGIONS] = [const { AtomicUsize::new(0) }; MAX_REGIONS];
    static REGION_FAULTS_IN: [AtomicU64; MAX_REGIONS] = [const { AtomicU64::new(0) }; MAX_REGIONS];
    static REGION_FAULTS_AFTER: [AtomicU64; MAX_REGIONS] =
        [const { AtomicU64::new(0) }; MAX_REGIONS];
    static REGION_LAST_FAULT: [AtomicUsize; MAX_REGIONS] =
        [const { AtomicUsize::new(0) }; MAX_REGIONS];

    /// Count of open commit windows across all regions. The handler spins
    /// while this is nonzero; one global counter over-blocks slightly
    /// (a fault in heap A waits for heap B's window too) but keeps the
    /// handler's condition a single load.
    static ACTIVE_WINDOWS: AtomicU64 = AtomicU64::new(0);

    static INSTALL: Once = Once::new();
    static INSTALL_OK: AtomicUsize = AtomicUsize::new(0);
    static OLD_HANDLER: AtomicUsize = AtomicUsize::new(0);
    static OLD_FLAGS: AtomicUsize = AtomicUsize::new(0);
    static OLD_RESTORER: AtomicUsize = AtomicUsize::new(0);
    static OLD_MASK: AtomicU64 = AtomicU64::new(0);

    /// Reinstalls the SIGSEGV disposition that was in place before
    /// [`install_handler`], so the re-executed faulting instruction
    /// re-faults into the old handler (or the default crash).
    /// Async-signal-safe: atomics and one `rt_sigaction` syscall.
    fn restore_previous_disposition() {
        let old = KernelSigaction {
            handler: OLD_HANDLER.load(Ordering::SeqCst),
            flags: OLD_FLAGS.load(Ordering::SeqCst),
            restorer: OLD_RESTORER.load(Ordering::SeqCst),
            mask: OLD_MASK.load(Ordering::SeqCst),
        };
        // SAFETY: `old` is exactly the sigaction rt_sigaction reported at
        // install time.
        unsafe {
            syscall4(
                SYS_RT_SIGACTION,
                SIGSEGV,
                core::ptr::addr_of!(old) as usize,
                0,
                8,
            );
        }
    }

    /// The classifying SIGSEGV handler. Async-signal-safe: atomics,
    /// `sched_yield`, and `rt_sigaction` only — and no longer just by
    /// construction: the D9 `signal-unsafe-reachable` pass walks
    /// everything reachable from here and fails `cargo xtask analyze` on
    /// any allocation, lock, panic, or stdio drifting in.
    // SAFETY: installed via rt_sigaction with SA_SIGINFO, so the kernel
    // calls it with the documented (sig, siginfo, ucontext) arguments;
    // never called from Rust.
    unsafe extern "C" fn segv_handler(
        _sig: i32,
        info: *mut core::ffi::c_void,
        _ucontext: *mut core::ffi::c_void,
    ) {
        // x86_64 siginfo_t: si_signo/si_errno/si_code then the union;
        // for SIGSEGV the first union field (offset 16) is si_addr.
        // SAFETY: `info` points at the kernel-written siginfo_t (SA_SIGINFO
        // guarantees it is non-null and at least 128 bytes); offset 16 is
        // in bounds and usize-aligned.
        let fault_addr = unsafe { core::ptr::read(info.cast::<u8>().add(16).cast::<usize>()) };
        for slot in 0..MAX_REGIONS {
            let base = REGION_BASE[slot].load(Ordering::SeqCst);
            if base == 0 || base == SLOT_CLAIMED {
                continue;
            }
            let len = REGION_LEN[slot].load(Ordering::SeqCst);
            if fault_addr < base || fault_addr >= base + len {
                continue;
            }
            // Ours: a plain access raced a commit window on this heap.
            REGION_LAST_FAULT[slot].store(fault_addr, Ordering::SeqCst);
            if ACTIVE_WINDOWS.load(Ordering::SeqCst) == 0 {
                // The window closed between the fault and this load; the
                // page is readable/writable again and re-execution
                // succeeds immediately.
                REGION_FAULTS_AFTER[slot].fetch_add(1, Ordering::SeqCst);
                return;
            }
            REGION_FAULTS_IN[slot].fetch_add(1, Ordering::SeqCst);
            // Stall until every window closes, then return: the kernel
            // re-executes the faulting instruction, so the access lands
            // strictly after the commit — strong atomicity by deferral.
            let mut spins: u64 = 0;
            while ACTIVE_WINDOWS.load(Ordering::SeqCst) != 0 {
                sched_yield();
                spins += 1;
                if spins > 1 << 32 {
                    // A window has been open for minutes: a committer is
                    // wedged. Fall back to the previous disposition so
                    // the re-fault (the page is still PROT_NONE) crashes
                    // loudly instead of hanging this thread forever.
                    restore_previous_disposition();
                    return;
                }
            }
            return;
        }
        // Not ours (a genuine segfault elsewhere in the process): put the
        // previous disposition back and return. The instruction re-faults
        // straight into the old handler or the default crash.
        restore_previous_disposition();
    }

    /// Installs the handler once per process; returns whether it is in
    /// place.
    fn install_handler() -> bool {
        INSTALL.call_once(|| {
            let act = KernelSigaction {
                handler: segv_handler as *const () as usize,
                flags: SA_SIGINFO | SA_RESTORER | SA_ONSTACK,
                restorer: restorer as *const () as usize,
                mask: 0,
            };
            let mut old = KernelSigaction {
                handler: 0,
                flags: 0,
                restorer: 0,
                mask: 0,
            };
            // SAFETY: both structs are valid kernel sigactions; size of
            // the kernel sigset_t on x86_64 is 8 bytes.
            let rc = unsafe {
                syscall4(
                    SYS_RT_SIGACTION,
                    SIGSEGV,
                    core::ptr::addr_of!(act) as usize,
                    core::ptr::addr_of_mut!(old) as usize,
                    8,
                )
            };
            if rc == 0 {
                OLD_HANDLER.store(old.handler, Ordering::SeqCst);
                OLD_FLAGS.store(old.flags, Ordering::SeqCst);
                OLD_RESTORER.store(old.restorer, Ordering::SeqCst);
                OLD_MASK.store(old.mask, Ordering::SeqCst);
                INSTALL_OK.store(1, Ordering::SeqCst);
            }
        });
        INSTALL_OK.load(Ordering::SeqCst) == 1
    }

    // ---- the dual mapping -------------------------------------------------

    /// One `memfd` mapped twice: the public view (guardable) and the
    /// shadow view (always writable; the USTM write-back path).
    #[derive(Debug)]
    pub(crate) struct DualMapping {
        public_base: usize,
        shadow_base: usize,
        bytes: usize,
        fd: i32,
        slot: usize,
        windows_opened: AtomicU64,
        /// Serializes commit windows on this heap: concurrent committers
        /// would otherwise race each other's `mprotect` transitions.
        window_gate: Mutex<()>,
    }

    // SAFETY: the mappings are process-wide shared memory accessed only
    // through `&AtomicU64` views; the raw base addresses are plain data.
    unsafe impl Send for DualMapping {}
    // SAFETY: shared references only hand out `&AtomicU64` word views, and
    // the window gate (a `Mutex`) serializes the only non-atomic state
    // transitions (the mprotect flips).
    unsafe impl Sync for DualMapping {}

    fn mmap_shared(fd: i32, bytes: usize) -> Option<usize> {
        // SAFETY: anonymous-address shared file mapping; the kernel
        // validates fd/length.
        let p = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                bytes,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd as usize,
                0,
            )
        };
        (p > 0).then_some(p as usize)
    }

    impl DualMapping {
        /// Builds the dual mapping for `bytes` (rounded up to whole
        /// pages) and registers it with the fault handler. `None` if any
        /// step fails (old kernel, slot table full, handler install
        /// refused) — the caller falls back to unguarded boxed storage.
        pub(crate) fn new(bytes: usize) -> Option<Self> {
            if !install_handler() {
                return None;
            }
            let bytes = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
            // SAFETY: NUL-terminated static name, no flags.
            let fd = unsafe { syscall2(SYS_MEMFD_CREATE, c"ufotm-guard".as_ptr() as usize, 0) };
            if fd < 0 {
                return None;
            }
            let fd = fd as i32;
            // SAFETY: freshly created memfd.
            if unsafe { syscall2(SYS_FTRUNCATE, fd as usize, bytes) } != 0 {
                // SAFETY: fd is ours, not yet mapped or shared.
                unsafe { syscall2(SYS_CLOSE, fd as usize, 0) };
                return None;
            }
            let Some(public_base) = mmap_shared(fd, bytes) else {
                // SAFETY: fd is ours and unused elsewhere.
                unsafe { syscall2(SYS_CLOSE, fd as usize, 0) };
                return None;
            };
            let Some(shadow_base) = mmap_shared(fd, bytes) else {
                // SAFETY: unmap/close what we just created.
                unsafe {
                    syscall2(SYS_MUNMAP, public_base, bytes);
                    syscall2(SYS_CLOSE, fd as usize, 0);
                }
                return None;
            };
            // Claim a registry slot with a CAS to the claimed sentinel —
            // never touching slots owned by other live heaps — then fill
            // in this slot's length and counters, and publish the real
            // base *last* (the handler skips both 0 and the sentinel, so
            // it never sees a half-registered slot).
            let claimed = REGION_BASE.iter().position(|b| {
                b.compare_exchange(0, SLOT_CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            });
            let Some(slot) = claimed else {
                // SAFETY: tear down both fresh mappings and the fd.
                unsafe {
                    syscall2(SYS_MUNMAP, public_base, bytes);
                    syscall2(SYS_MUNMAP, shadow_base, bytes);
                    syscall2(SYS_CLOSE, fd as usize, 0);
                }
                return None;
            };
            REGION_LEN[slot].store(bytes, Ordering::SeqCst);
            REGION_FAULTS_IN[slot].store(0, Ordering::SeqCst);
            REGION_FAULTS_AFTER[slot].store(0, Ordering::SeqCst);
            REGION_LAST_FAULT[slot].store(0, Ordering::SeqCst);
            REGION_BASE[slot].store(public_base, Ordering::SeqCst);
            Some(DualMapping {
                public_base,
                shadow_base,
                bytes,
                fd,
                slot,
                windows_opened: AtomicU64::new(0),
                window_gate: Mutex::new(()),
            })
        }

        pub(crate) fn words(&self) -> usize {
            self.bytes / 8
        }

        /// The public (guardable) view of word `w`.
        #[inline]
        pub(crate) fn word(&self, w: usize) -> &AtomicU64 {
            debug_assert!(w < self.words());
            // SAFETY: in-bounds, 8-aligned (mmap is page-aligned), lives
            // as long as `self`, and all access is through atomics.
            unsafe { &*((self.public_base + w * 8) as *const AtomicU64) }
        }

        /// The shadow (never-protected) view of word `w`.
        #[inline]
        pub(crate) fn shadow_word(&self, w: usize) -> &AtomicU64 {
            debug_assert!(w < self.words());
            // SAFETY: as `word`, on the second mapping of the same pages.
            unsafe { &*((self.shadow_base + w * 8) as *const AtomicU64) }
        }

        /// Opens a commit window over the pages containing `word_idxs`
        /// (any order, duplicates fine): flips them to `PROT_NONE` on the
        /// public view. The window closes when the returned guard drops.
        ///
        /// `chaos` (the committing worker's failpoint handle, if any) is
        /// struck at [`FailSite::GuardWindow`] once per protected run —
        /// right after the pages flip, the most hostile instant.
        ///
        /// The window is built **incrementally**: each run is recorded in
        /// the returned [`Window`] only after its pages are protected, so
        /// a panic anywhere past the gate (an injected failpoint, a
        /// failed `mprotect`, or a committer dying mid write-back) drops
        /// a `Window` that restores exactly the pages already flipped.
        /// The public view can never be left `PROT_NONE` by an unwinding
        /// thread. A poisoned gate (a previous holder panicked) is
        /// recovered rather than cascaded: the gate protects no data —
        /// only window exclusivity — and the dead holder's `Window` drop
        /// already restored its pages.
        pub(crate) fn open_window(
            &self,
            word_idxs: impl Iterator<Item = usize>,
            chaos: Option<(&NativeChaos, usize)>,
        ) -> Window<'_> {
            let mut pages: Vec<usize> = word_idxs.map(|w| w * 8 / PAGE_BYTES).collect();
            pages.sort_unstable();
            pages.dedup();
            // Merge contiguous pages into mprotect runs.
            let mut runs: Vec<(usize, usize)> = Vec::new();
            for p in pages {
                match runs.last_mut() {
                    Some((start, n)) if *start + *n == p => *n += 1,
                    _ => runs.push((p, 1)),
                }
            }
            let (gate, _recovered) = lock_recover(&self.window_gate);
            self.windows_opened.fetch_add(1, Ordering::SeqCst);
            ACTIVE_WINDOWS.fetch_add(1, Ordering::SeqCst);
            let mut win = Window {
                map: self,
                runs: Vec::with_capacity(runs.len()),
                _gate: gate,
            };
            for (page, n) in runs {
                // SAFETY: page range is within our public mapping.
                let rc = unsafe {
                    syscall3(
                        SYS_MPROTECT,
                        self.public_base + page * PAGE_BYTES,
                        n * PAGE_BYTES,
                        PROT_NONE,
                    )
                };
                assert_eq!(rc, 0, "mprotect(PROT_NONE) failed");
                win.runs.push((page, n));
                if let Some((c, tid)) = chaos {
                    let _ = c.strike(tid, FailSite::GuardWindow);
                }
            }
            win
        }

        pub(crate) fn stats(&self) -> GuardStats {
            GuardStats {
                guarded: true,
                windows_opened: self.windows_opened.load(Ordering::SeqCst),
                faults_in_window: REGION_FAULTS_IN[self.slot].load(Ordering::SeqCst),
                faults_after_window: REGION_FAULTS_AFTER[self.slot].load(Ordering::SeqCst),
            }
        }

        /// Byte offset (into this heap) of the most recent classified
        /// fault, if any.
        pub(crate) fn last_fault_offset(&self) -> Option<usize> {
            let a = REGION_LAST_FAULT[self.slot].load(Ordering::SeqCst);
            (a != 0).then(|| a - self.public_base)
        }
    }

    impl Drop for DualMapping {
        fn drop(&mut self) {
            // No windows can be open (Window borrows self), but a fault
            // handler on another thread may still be inspecting the slot;
            // callers must quiesce plain accessors before dropping heaps
            // (all test/bench paths join their threads first).
            REGION_BASE[self.slot].store(0, Ordering::SeqCst);
            // SAFETY: our mappings and fd, no further access after drop.
            unsafe {
                syscall2(SYS_MUNMAP, self.public_base, self.bytes);
                syscall2(SYS_MUNMAP, self.shadow_base, self.bytes);
                syscall2(SYS_CLOSE, self.fd as usize, 0);
            }
        }
    }

    /// An open commit window; dropping it restores `PROT_READ|PROT_WRITE`
    /// and releases the gate.
    #[derive(Debug)]
    pub(crate) struct Window<'a> {
        map: &'a DualMapping,
        runs: Vec<(usize, usize)>,
        _gate: MutexGuard<'a, ()>,
    }

    impl Drop for Window<'_> {
        fn drop(&mut self) {
            for &(page, n) in &self.runs {
                // SAFETY: same range we protected at open.
                let rc = unsafe {
                    syscall3(
                        SYS_MPROTECT,
                        self.map.public_base + page * PAGE_BYTES,
                        n * PAGE_BYTES,
                        PROT_READ | PROT_WRITE,
                    )
                };
                assert_eq!(rc, 0, "mprotect(PROT_READ|PROT_WRITE) failed");
            }
            ACTIVE_WINDOWS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(not(all(
    feature = "mprotect-guard",
    target_os = "linux",
    target_arch = "x86_64"
)))]
mod imp {
    //! Stub for platforms without the guard (or with the feature off):
    //! the heap always uses boxed storage and guard stats read all-zero.

    pub(crate) fn compiled_in() -> bool {
        false
    }
}
