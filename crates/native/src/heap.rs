//! The native word heap: boxed atomics, or — when the mprotect guard is
//! available — a dual-mapped region whose public view can be
//! page-protected during USTM commit windows.
//!
//! All transactional and plain accesses in the crate go through
//! [`WordHeap`]. The two storage shapes present the same word-indexed
//! `AtomicU64` interface; the only semantic difference is that the
//! mapped shape distinguishes the *public* view (plain accesses, TL2)
//! from the *shadow* view (USTM write-back, which must not fault inside
//! its own commit window).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::chaos::NativeChaos;
use crate::guard::{self, GuardStats};

#[cfg(all(
    feature = "mprotect-guard",
    target_os = "linux",
    target_arch = "x86_64"
))]
use crate::guard::DualMapping;

/// Word-addressed shared storage for a native TM heap.
#[derive(Debug)]
pub(crate) enum WordHeap {
    /// Plain boxed atomics: no guard, identical public/shadow views.
    Boxed(Box<[AtomicU64]>),
    /// Dual-mapped guardable storage.
    #[cfg(all(
        feature = "mprotect-guard",
        target_os = "linux",
        target_arch = "x86_64"
    ))]
    Mapped(DualMapping),
}

/// An open strong-atomicity commit window (no-op on boxed storage).
/// Dropping it lifts the page protection.
#[derive(Debug)]
pub(crate) struct CommitWindow<'a> {
    #[cfg(all(
        feature = "mprotect-guard",
        target_os = "linux",
        target_arch = "x86_64"
    ))]
    _win: Option<guard::Window<'a>>,
    _heap: std::marker::PhantomData<&'a WordHeap>,
}

impl WordHeap {
    /// Builds storage for `words` words, preferring the guardable dual
    /// mapping when [`guard::available`] and falling back to boxed
    /// atomics otherwise.
    pub(crate) fn new(words: u64) -> Self {
        #[cfg(all(
            feature = "mprotect-guard",
            target_os = "linux",
            target_arch = "x86_64"
        ))]
        if guard::available() {
            if let Some(m) = DualMapping::new(words as usize * 8) {
                return WordHeap::Mapped(m);
            }
        }
        WordHeap::Boxed((0..words).map(|_| AtomicU64::new(0)).collect())
    }

    /// The public view of word `w` — what plain accesses and the TL2
    /// fast path touch; faults during a commit window.
    #[inline]
    pub(crate) fn word(&self, w: usize) -> &AtomicU64 {
        match self {
            WordHeap::Boxed(b) => &b[w],
            #[cfg(all(
                feature = "mprotect-guard",
                target_os = "linux",
                target_arch = "x86_64"
            ))]
            WordHeap::Mapped(m) => m.word(w),
        }
    }

    /// The shadow view of word `w` — the USTM commit path; never
    /// protected. Identical to [`WordHeap::word`] on boxed storage.
    #[inline]
    pub(crate) fn shadow_word(&self, w: usize) -> &AtomicU64 {
        match self {
            WordHeap::Boxed(b) => &b[w],
            #[cfg(all(
                feature = "mprotect-guard",
                target_os = "linux",
                target_arch = "x86_64"
            ))]
            WordHeap::Mapped(m) => m.shadow_word(w),
        }
    }

    /// Convenience: `Acquire` load of the public view.
    pub(crate) fn load(&self, w: usize) -> u64 {
        self.word(w).load(Ordering::Acquire)
    }

    /// Convenience: `Release` store to the public view.
    pub(crate) fn store(&self, w: usize, v: u64) {
        self.word(w).store(v, Ordering::Release);
    }

    /// Opens a strong-atomicity window over the pages containing
    /// `word_idxs`. A no-op handle on boxed storage (the guard then
    /// rests on the hybrid's fast-path quiescence alone). `chaos` is the
    /// committing worker's failpoint handle, struck at the
    /// `GuardWindow` site once protection is up (and, on boxed storage,
    /// struck once anyway so failpoint schedules keep their shape when
    /// the guard is unavailable).
    pub(crate) fn open_window(
        &self,
        word_idxs: impl Iterator<Item = usize>,
        chaos: Option<(&NativeChaos, usize)>,
    ) -> CommitWindow<'_> {
        match self {
            WordHeap::Boxed(_) => {
                let _ = word_idxs;
                if let Some((c, tid)) = chaos {
                    let _ = c.strike(tid, crate::chaos::FailSite::GuardWindow);
                }
                CommitWindow {
                    #[cfg(all(
                        feature = "mprotect-guard",
                        target_os = "linux",
                        target_arch = "x86_64"
                    ))]
                    _win: None,
                    _heap: std::marker::PhantomData,
                }
            }
            #[cfg(all(
                feature = "mprotect-guard",
                target_os = "linux",
                target_arch = "x86_64"
            ))]
            WordHeap::Mapped(m) => CommitWindow {
                _win: Some(m.open_window(word_idxs, chaos)),
                _heap: std::marker::PhantomData,
            },
        }
    }

    /// Guard counters for this heap (all-zero/unguarded on boxed
    /// storage).
    pub(crate) fn guard_stats(&self) -> GuardStats {
        match self {
            WordHeap::Boxed(_) => GuardStats::default(),
            #[cfg(all(
                feature = "mprotect-guard",
                target_os = "linux",
                target_arch = "x86_64"
            ))]
            WordHeap::Mapped(m) => m.stats(),
        }
    }

    /// Byte offset of the most recent classified guard fault, if any.
    pub(crate) fn last_fault_offset(&self) -> Option<usize> {
        match self {
            WordHeap::Boxed(_) => None,
            #[cfg(all(
                feature = "mprotect-guard",
                target_os = "linux",
                target_arch = "x86_64"
            ))]
            WordHeap::Mapped(m) => m.last_fault_offset(),
        }
    }
}
