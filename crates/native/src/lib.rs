//! # `ufotm-native` — the paper's hybrid on real OS threads
//!
//! Host-atomics implementations of the reproduction's TM systems, with
//! **zero simulator involvement**. Where the simulated crates charge
//! deterministic cycles and replay bit-for-bit, this crate measures
//! what the paper's design actually costs in wall-clock ops/sec on
//! real contended cache lines:
//!
//! * [`NativeTl2`] / [`NativeTxn`] / [`NativeThread`] — the
//!   simulated TL2's version-lock protocol on `AtomicU64` stripes; the
//!   hybrid's fast path and a backend in its own right.
//! * [`NativeUstm`] / [`NativeUstmTxn`] ([`ustm`]) — a redo-log USTM
//!   with a sharded ownership table and age-ordered kills; the hybrid's
//!   strongly-atomic slow path.
//! * [`guard`] — the `mprotect`/SIGSEGV strong-atomicity guard standing
//!   in for the paper's UFO bits: USTM commit windows page-protect the
//!   public heap view, racing plain accesses fault, get classified, and
//!   re-execute after the window (feature `mprotect-guard`, Linux
//!   x86_64 only; disable at runtime with `UFOTM_SKIP_GUARD=1`).
//! * [`NativeHybrid`] / [`HybridThread`] ([`hybrid`]) — the failover
//!   driver: TL2 fast path, USTM slow path after `failover_after`
//!   consecutive aborts with jittered backoff, PhTM-style mode gate.
//!
//! The sim and native implementations are cross-validated
//! (`crates/stamp`'s `cross_validate` suite): the same transaction
//! scripts must produce identical final heap states and identical
//! abort classifications on both substrates.
//!
//! ## What this crate is *not*
//!
//! Not deterministic (real races, real interleavings — runs are
//! unrepeatable by design; the `cargo xtask analyze` determinism lints
//! exempt this crate for exactly that reason) and not cycle-accurate
//! ([`spin_work`] is a calibrated busy-loop, not a cycle model). Unlike
//! the weakly-atomic TL2-only backend, the hybrid *is* strongly atomic
//! for its slow path: the guard window defers racing plain accesses,
//! and the mode gate quiesces the uninstrumented fast path.
//!
//! `unsafe` is confined to [`guard`]'s raw-syscall module; the rest of
//! the crate denies it. Inside that module every unsafe operation must
//! sit in its own scoped block (`unsafe_op_in_unsafe_fn` is denied) with
//! a `// SAFETY:` comment the D10 analyze pass enforces.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod chaos;
pub mod guard;
mod heap;
mod tl2;

pub mod hybrid;
pub mod ustm;

pub use chaos::{ChaosPlan, ChaosReport, FailSite, InjectedPanic, Liveness, NativeChaos, PanicAt};
pub use guard::GuardStats;
pub use hybrid::{
    run_hybrid_threads, run_hybrid_threads_collect, HybridOutcome, HybridStats, HybridThread,
    NativeHybrid, NativeHybridPolicy,
};
pub use tl2::{
    run_threads, run_threads_collect, spin_work, DebugWindow, NativeOutcome, NativeStats,
    NativeThread, NativeTl2, NativeTxn,
};
pub use ustm::{NativeUstm, NativeUstmStats, NativeUstmTxn};
