//! The native USTM slow path: a redo-log STM with a sharded ownership
//! table and age-ordered conflict resolution, on real OS threads.
//!
//! This is the host-atomics rendition of the simulated
//! [`ufotm-ustm`](ufotm_ustm) crate, reshaped for real hardware:
//!
//! * **Ownership table** — the same chained-hash shape as the simulated
//!   [`Otable`](ufotm_ustm::Otable) (Fibonacci hash of the 64-byte line
//!   number, power-of-two bins, one record per owned line with a writer
//!   slot and a reader list), but sharded: each bin is a host `Mutex`
//!   over its entry chain, and the protocol never holds more than one
//!   bin lock at a time (lock → decide → unlock → wait with
//!   `yield_now`), so bin lock order cannot deadlock.
//! * **Versioning** — *lazy redo* instead of the simulator's eager undo:
//!   writes buffer in a `BTreeMap` and publish at commit, because on
//!   real hardware in-place speculative stores would be visible to
//!   uninstrumented plain code with no UFO bit to hide them. Read
//!   ownership is still eager (acquired at first read of a line), which
//!   keeps conflict detection eager like the paper's USTM.
//! * **Conflict resolution** — age-ordered, like the simulator: each
//!   transaction draws a monotonically increasing timestamp at begin; an
//!   older transaction **kills** a younger conflictor (and waits for it
//!   to unwind and release ownership), a younger transaction **stalls**
//!   behind an older one. Stalling only ever waits on strictly older
//!   transactions, so waits are acyclic and the oldest transaction in
//!   the system always makes progress. Kills are delivered through a
//!   per-thread packed `AtomicU64` status slot
//!   (`[ts:40 | killer+1:16 | phase:8]`); a victim observes its doom at
//!   its next read / `work` / stall iteration / commit seal, unwinds,
//!   and returns [`UstmAbort::Killed`] with the killer recorded — the
//!   same classification (and `Display` text) as the simulated USTM.
//! * **Commit** — acquire write ownership of the redo log's lines in
//!   sorted line order (kill younger owners, stall behind older ones),
//!   *seal* the status slot (`ACTIVE → COMMITTING`; a sealed transaction
//!   can no longer be killed, mirroring the simulator's committing
//!   transactions stalling their attackers), open the strong-atomicity
//!   guard window ([`crate::guard`]), write the redo log back through
//!   the shadow view with `Release` stores, close the window, release
//!   ownership, retire the slot.
//!
//! USTM's own heap reads go through the **shadow** view: a reader holds
//! read ownership of every line it has read, so no committer can be
//! writing those lines back concurrently, and the shadow view never
//! faults inside the reader's (or its own) guard window.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use ufotm_core::{Stop, TxScope};
use ufotm_machine::Addr;
use ufotm_ustm::UstmAbort;

use crate::chaos::{lock_recover, FailSite};
use crate::tl2::{spin_work, NativeTl2};

/// Same Fibonacci hash as the simulated otable (`Otable::index_of`), so
/// a given line chains into the "same" bin in both worlds.
const BIN_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

const LINE_BYTES: u64 = 64;

// Status-slot phases (low 8 bits of the packed word).
const PHASE_INACTIVE: u64 = 0;
const PHASE_ACTIVE: u64 = 1;
const PHASE_COMMITTING: u64 = 2;
/// A helper won the race to reclaim a dead owner's slot and is completing
/// (or discarding) its work; everyone else waits for the slot to retire.
const PHASE_REAPING: u64 = 3;

/// Packs a status slot: `[ts:40 | killer+1:16 | phase:8]`. `killer+1`
/// so that 0 means "not killed" and thread id 0 can still kill.
fn pack(ts: u64, killer_plus1: u64, phase: u64) -> u64 {
    debug_assert!(ts < 1 << 40, "USTM timestamp overflow");
    debug_assert!(killer_plus1 < 1 << 16);
    ts << 24 | killer_plus1 << 8 | phase
}

fn slot_phase(word: u64) -> u64 {
    word & 0xFF
}

fn slot_killer(word: u64) -> Option<usize> {
    let k = (word >> 8) & 0xFFFF;
    (k != 0).then(|| (k - 1) as usize)
}

/// One ownership record: a line, its (at most one) writer, and its
/// readers — the native mirror of the simulated `OtableEntry`'s
/// `{line, perm, owners}` with the owner set split by permission.
#[derive(Debug)]
struct OtEntry {
    line: u64,
    /// The committing transaction holding write ownership, `(tid, ts)`.
    writer: Option<(usize, u64)>,
    /// Transactions holding read ownership, `(tid, ts)` each.
    readers: Vec<(usize, u64)>,
}

/// A published redo record: `(word addr, value)` pairs in commit order.
type RedoRecord = Vec<(u64, u64)>;

/// Shared native USTM state: the sharded ownership table, the per-thread
/// status slots, and the timestamp source. Operates over the word heap
/// of a [`NativeTl2`] (the two paths of the hybrid share one heap).
#[derive(Debug)]
pub struct NativeUstm {
    bins: Box<[Mutex<Vec<OtEntry>>]>,
    slots: Box<[AtomicU64]>,
    next_ts: AtomicU64,
    mask: u64,
    /// Per-thread published redo records `(word addr, value)`, written
    /// *before* the seal CAS so that a committer that dies sealed leaves
    /// everything a helper needs to finish its write-back. Only the
    /// owner writes its slot while alive; helpers read it only after
    /// winning the `PHASE_REAPING` CAS on a dead owner, so the two never
    /// race.
    records: Box<[Mutex<RedoRecord>]>,
    poison_recovered: AtomicU64,
    helper_completions: AtomicU64,
    orphan_releases: AtomicU64,
}

impl NativeUstm {
    /// Creates a table with `otable_bins` bins and status slots for
    /// `threads` transaction handles.
    ///
    /// # Panics
    ///
    /// Panics if `otable_bins` is not a power of two or `threads`
    /// exceeds the 16-bit killer-id encoding.
    #[must_use]
    pub fn new(threads: usize, otable_bins: u64) -> Self {
        assert!(
            otable_bins.is_power_of_two(),
            "otable bins must be a power of two"
        );
        assert!(threads < (1 << 16) - 1, "too many USTM threads to encode");
        NativeUstm {
            bins: (0..otable_bins).map(|_| Mutex::new(Vec::new())).collect(),
            slots: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            next_ts: AtomicU64::new(0),
            mask: otable_bins - 1,
            records: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
            poison_recovered: AtomicU64::new(0),
            helper_completions: AtomicU64::new(0),
            orphan_releases: AtomicU64::new(0),
        }
    }

    fn bin_index(&self, line: u64) -> usize {
        (line.wrapping_mul(BIN_MULT) >> 32 & self.mask) as usize
    }

    /// Locks a bin by index, recovering from poison instead of cascading
    /// the panic across every thread that touches the bin afterwards. A
    /// bin is only poisoned by a worker that panicked *while holding it*
    /// (possible only at an injected failpoint or a genuine bug outside
    /// the protocol's own critical sections — they contain no panics);
    /// the chain itself is still structurally sound ([`Self::audit`]),
    /// so recovery is safe and the event is just counted.
    fn lock_bin_idx(&self, idx: usize) -> MutexGuard<'_, Vec<OtEntry>> {
        let (g, recovered) = lock_recover(&self.bins[idx]);
        if recovered {
            self.poison_recovered.fetch_add(1, Ordering::Relaxed);
        }
        g
    }

    fn lock_bin(&self, line: u64) -> MutexGuard<'_, Vec<OtEntry>> {
        self.lock_bin_idx(self.bin_index(line))
    }

    /// Entries currently in the table (all bins) — test observability.
    #[must_use]
    pub fn owned_lines(&self) -> usize {
        (0..self.bins.len())
            .map(|i| self.lock_bin_idx(i).len())
            .sum()
    }

    /// Otable-bin poison recoveries so far.
    #[must_use]
    pub fn poison_recovered(&self) -> u64 {
        self.poison_recovered.load(Ordering::Relaxed)
    }

    /// Sealed redo records of dead committers finished by helpers.
    #[must_use]
    pub fn helper_completions(&self) -> u64 {
        self.helper_completions.load(Ordering::Relaxed)
    }

    /// Unsealed dead transactions whose ownerships were swept.
    #[must_use]
    pub fn orphan_releases(&self) -> u64 {
        self.orphan_releases.load(Ordering::Relaxed)
    }

    /// Structural consistency audit of the ownership table, run after
    /// poison recovery (and by torture tests at quiescence). Checks that
    /// every entry's line hashes to the bin it chains in, that no bin
    /// holds two entries for one line, and that no entry lists the same
    /// reader twice.
    ///
    /// # Errors
    ///
    /// A description of the first violation found.
    pub fn audit(&self) -> Result<(), String> {
        for i in 0..self.bins.len() {
            let bin = self.lock_bin_idx(i);
            for (pos, e) in bin.iter().enumerate() {
                if self.bin_index(e.line) != i {
                    return Err(format!("line {} chained into wrong bin {i}", e.line));
                }
                if bin[..pos].iter().any(|prev| prev.line == e.line) {
                    return Err(format!("duplicate entries for line {} in bin {i}", e.line));
                }
                for (rpos, &(t, _)) in e.readers.iter().enumerate() {
                    if e.readers[..rpos].iter().any(|&(t2, _)| t2 == t) {
                        return Err(format!("line {}: reader {t} listed twice", e.line));
                    }
                }
            }
        }
        Ok(())
    }

    /// Removes every ownership record held by `victim` across all bins,
    /// garbage-collecting emptied entries.
    fn sweep_owner(&self, victim: usize) {
        for i in 0..self.bins.len() {
            let mut bin = self.lock_bin_idx(i);
            for e in bin.iter_mut() {
                e.readers.retain(|&(t, _)| t != victim);
                if matches!(e.writer, Some((t, _)) if t == victim) {
                    e.writer = None;
                }
            }
            bin.retain(|e| e.writer.is_some() || !e.readers.is_empty());
        }
    }

    /// Reclaims everything a **dead** worker left behind: a sealed
    /// (`COMMITTING`) transaction is *helper-completed* — its published
    /// redo record is replayed through a fresh guard window (idempotent:
    /// the full record is replayed even if the dead committer had
    /// already stored some of it) — while an unsealed (`ACTIVE`) one is
    /// simply discarded; in both cases its ownership records are swept
    /// and its status slot retired.
    ///
    /// Racing helpers serialize on a `COMMITTING/ACTIVE → REAPING` CAS:
    /// the winner does the work, losers wait for the slot to retire.
    /// Callers must only name a victim that the liveness registry has
    /// marked dead (i.e. its body has actually unwound).
    pub fn reclaim_dead(&self, heap: &NativeTl2, victim: usize) {
        debug_assert!(
            heap.liveness().is_dead(victim),
            "reclaiming a live worker's ownerships"
        );
        loop {
            let cur = self.slots[victim].load(Ordering::SeqCst);
            let ts = cur >> 24;
            match slot_phase(cur) {
                PHASE_COMMITTING => {
                    if self.slots[victim]
                        .compare_exchange(
                            cur,
                            pack(ts, 0, PHASE_REAPING),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_err()
                    {
                        continue;
                    }
                    let record: Vec<(u64, u64)> = {
                        let (rec, recovered) = lock_recover(&self.records[victim]);
                        if recovered {
                            self.poison_recovered.fetch_add(1, Ordering::Relaxed);
                        }
                        rec.clone()
                    };
                    {
                        let _win = heap
                            .heap()
                            .open_window(record.iter().map(|&(a, _)| (a / 8) as usize), None);
                        for &(a, v) in &record {
                            heap.heap()
                                .shadow_word((a / 8) as usize)
                                .store(v, Ordering::Release);
                        }
                    }
                    self.sweep_owner(victim);
                    self.slots[victim].store(0, Ordering::SeqCst);
                    self.helper_completions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                PHASE_ACTIVE => {
                    if self.slots[victim]
                        .compare_exchange(
                            cur,
                            pack(ts, 0, PHASE_REAPING),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_err()
                    {
                        continue;
                    }
                    self.sweep_owner(victim);
                    self.slots[victim].store(0, Ordering::SeqCst);
                    self.orphan_releases.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                PHASE_REAPING => {
                    // Another helper won; wait for it to retire the slot.
                    while slot_phase(self.slots[victim].load(Ordering::SeqCst)) == PHASE_REAPING {
                        std::thread::yield_now();
                    }
                    return;
                }
                _ => {
                    // INACTIVE: the victim died between transactions.
                    // Sweep anyway — idempotent, and it catches any
                    // leftovers from exotic unwind paths.
                    self.sweep_owner(victim);
                    return;
                }
            }
        }
    }

    /// Test scaffolding: deliberately poisons the bin that `line` chains
    /// into, reproducing the cascade the poison-tolerant bins defend
    /// against.
    #[doc(hidden)]
    pub fn debug_poison_bin(&self, line: u64) {
        let idx = self.bin_index(line);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = self.bins[idx].lock();
            panic!("deliberate bin poison (test scaffolding)");
        }));
    }
}

/// Per-handle USTM event counters (native analogue of `UstmStats`, with
/// aborts split by [`UstmAbort`] class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeUstmStats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts because an older transaction killed this one.
    pub aborts_killed: u64,
    /// Explicit aborts requested by the body.
    pub aborts_explicit: u64,
    /// Kill requests this handle delivered to younger conflictors.
    pub kills_issued: u64,
    /// Stall iterations spent waiting for a conflicting owner to
    /// release (each is one bin-unlock/yield/retry round).
    pub stalls: u64,
}

impl NativeUstmStats {
    /// Total aborts across classes.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts_killed + self.aborts_explicit
    }

    /// Folds another handle's counters into this one. Exhaustive
    /// destructuring: adding a field without summing it here is a
    /// compile error.
    pub fn merge(&mut self, other: &NativeUstmStats) {
        let NativeUstmStats {
            begins,
            commits,
            aborts_killed,
            aborts_explicit,
            kills_issued,
            stalls,
        } = *other;
        self.begins += begins;
        self.commits += commits;
        self.aborts_killed += aborts_killed;
        self.aborts_explicit += aborts_explicit;
        self.kills_issued += kills_issued;
        self.stalls += stalls;
    }
}

/// A per-thread USTM transaction handle — the native mirror of
/// [`UstmTxn`](ufotm_ustm::UstmTxn), usable step by step
/// (begin/read/write/commit) by protocol tests and the cross-validation
/// scripts, or through the retry loop in [`NativeUstmTxn::run`] /
/// the hybrid's slow path.
#[derive(Debug)]
pub struct NativeUstmTxn<'a> {
    heap: &'a NativeTl2,
    ustm: &'a NativeUstm,
    tid: usize,
    ts: u64,
    /// Lines this transaction holds read ownership of.
    reads: Vec<u64>,
    /// The redo log: word address → value, published at commit.
    writes: BTreeMap<u64, u64>,
    /// Lines write-acquired so far during commit.
    write_owned: Vec<u64>,
    active: bool,
    last_killer: Option<usize>,
    /// Event counters for this handle.
    pub stats: NativeUstmStats,
}

impl<'a> NativeUstmTxn<'a> {
    /// Creates a handle for thread `tid` over `heap`'s words and
    /// `ustm`'s ownership table.
    ///
    /// # Panics
    ///
    /// Panics if `tid` has no status slot in `ustm`.
    #[must_use]
    pub fn new(heap: &'a NativeTl2, ustm: &'a NativeUstm, tid: usize) -> Self {
        assert!(tid < ustm.slots.len(), "tid {tid} has no USTM status slot");
        assert!(
            tid < crate::chaos::MAX_WORKERS,
            "tid {tid} exceeds the liveness registry"
        );
        heap.liveness().revive(tid);
        NativeUstmTxn {
            heap,
            ustm,
            tid,
            ts: 0,
            reads: Vec::new(),
            writes: BTreeMap::new(),
            write_owned: Vec::new(),
            active: false,
            last_killer: None,
            stats: NativeUstmStats::default(),
        }
    }

    /// Whether a transaction is active on this handle.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn my_slot(&self) -> &AtomicU64 {
        &self.ustm.slots[self.tid]
    }

    /// Begins a transaction: draws a fresh (nonzero) timestamp and goes
    /// `ACTIVE`.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin(&mut self) {
        assert!(!self.active, "nested native transactions are not supported");
        self.heap.liveness().beat(self.tid);
        self.ts = self.ustm.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.my_slot()
            .store(pack(self.ts, 0, PHASE_ACTIVE), Ordering::SeqCst);
        self.reads.clear();
        self.writes.clear();
        self.write_owned.clear();
        self.last_killer = None;
        self.active = true;
        self.stats.begins += 1;
    }

    /// If an older transaction has killed this one, who.
    fn doomed(&self) -> Option<usize> {
        slot_killer(self.my_slot().load(Ordering::SeqCst))
    }

    /// Releases every ownership record this transaction holds (one bin
    /// lock at a time), garbage-collecting empty entries.
    fn release_ownership(&mut self) {
        for &line in &self.reads {
            let mut bin = self.ustm.lock_bin(line);
            if let Some(pos) = bin.iter().position(|e| e.line == line) {
                bin[pos].readers.retain(|&(t, _)| t != self.tid);
                if bin[pos].readers.is_empty() && bin[pos].writer.is_none() {
                    bin.swap_remove(pos);
                }
            }
        }
        for &line in &self.write_owned {
            let mut bin = self.ustm.lock_bin(line);
            if let Some(pos) = bin.iter().position(|e| e.line == line) {
                if matches!(bin[pos].writer, Some((t, _)) if t == self.tid) {
                    bin[pos].writer = None;
                }
                if bin[pos].readers.is_empty() && bin[pos].writer.is_none() {
                    bin.swap_remove(pos);
                }
            }
        }
        self.reads.clear();
        self.write_owned.clear();
    }

    /// Unwinds a killed transaction: release ownership, drop the redo
    /// log, retire the slot, record the killer for
    /// [`NativeUstmTxn::wait_for_killer`].
    fn unwind_killed(&mut self, by: usize) -> UstmAbort {
        self.release_ownership();
        self.writes.clear();
        self.my_slot().store(0, Ordering::SeqCst);
        self.active = false;
        self.last_killer = Some(by);
        self.stats.aborts_killed += 1;
        UstmAbort::Killed { by }
    }

    /// Explicitly aborts and rolls back the transaction, returning the
    /// [`UstmAbort::Explicit`] classification (mirrors the simulated
    /// `UstmTxn::abort_explicit`).
    pub fn abort_explicit(&mut self) -> UstmAbort {
        debug_assert!(self.active);
        self.release_ownership();
        self.writes.clear();
        self.my_slot().store(0, Ordering::SeqCst);
        self.active = false;
        self.stats.aborts_explicit += 1;
        UstmAbort::Explicit
    }

    /// Requests a kill of `(victim, victim_ts)` if it is still `ACTIVE`
    /// and unkilled. A sealed (`COMMITTING`) victim cannot be killed —
    /// the caller stalls behind it instead, exactly like the simulator's
    /// attacker stalling on a committing transaction.
    fn issue_kill(&mut self, victim: usize, victim_ts: u64) {
        debug_assert!(victim_ts > self.ts, "only younger transactions are killed");
        let slot = &self.ustm.slots[victim];
        let cur = slot.load(Ordering::SeqCst);
        if cur == pack(victim_ts, 0, PHASE_ACTIVE)
            && slot
                .compare_exchange(
                    cur,
                    pack(victim_ts, self.tid as u64 + 1, PHASE_ACTIVE),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        {
            self.stats.kills_issued += 1;
        }
        // CAS failure means the victim is already killed, sealed, or
        // gone — in every case the caller just waits for the ownership
        // record to clear.
    }

    /// One stall round: drop everything, yield, and let the caller's
    /// loop re-examine the bin.
    fn stall(&mut self) {
        self.stats.stalls += 1;
        std::thread::yield_now();
    }

    /// If the owner this transaction is stalled behind has died, reclaim
    /// its leavings (helper-complete a sealed record, discard an
    /// unsealed one) so the stall loop can make progress instead of
    /// spinning on a ghost forever.
    fn unblock_if_dead(&self, blocker: usize) {
        if self.heap.liveness().is_dead(blocker) {
            self.ustm.reclaim_dead(self.heap, blocker);
        }
    }

    /// Acquires read ownership of `line`. Never holds the bin lock
    /// while waiting.
    fn acquire_read(&mut self, line: u64) -> Result<(), UstmAbort> {
        loop {
            if let Some(by) = self.doomed() {
                return Err(self.unwind_killed(by));
            }
            let blocker;
            {
                let mut bin = self.ustm.lock_bin(line);
                match bin.iter_mut().find(|e| e.line == line) {
                    Some(e) => {
                        if let Some((wtid, wts)) = e.writer {
                            debug_assert_ne!(wtid, self.tid, "read under own write ownership");
                            if wts > self.ts {
                                self.issue_kill(wtid, wts);
                            }
                            // Fall through to stall (younger writer: until
                            // it unwinds; older/sealed: until it retires).
                            blocker = wtid;
                        } else {
                            if !e.readers.iter().any(|&(t, _)| t == self.tid) {
                                e.readers.push((self.tid, self.ts));
                            }
                            return Ok(());
                        }
                    }
                    None => {
                        bin.push(OtEntry {
                            line,
                            writer: None,
                            readers: vec![(self.tid, self.ts)],
                        });
                        return Ok(());
                    }
                }
            }
            self.unblock_if_dead(blocker);
            self.stall();
        }
    }

    /// Acquires write ownership of `line` (commit path). Kills younger
    /// conflicting owners, stalls behind older ones.
    fn acquire_write(&mut self, line: u64) -> Result<(), UstmAbort> {
        loop {
            if let Some(by) = self.doomed() {
                return Err(self.unwind_killed(by));
            }
            let blocker;
            {
                let mut bin = self.ustm.lock_bin(line);
                let e = match bin.iter_mut().find(|e| e.line == line) {
                    Some(e) => e,
                    None => {
                        bin.push(OtEntry {
                            line,
                            writer: None,
                            readers: Vec::new(),
                        });
                        bin.last_mut().expect("just pushed")
                    }
                };
                if let Some((wtid, wts)) = e.writer {
                    debug_assert_ne!(wtid, self.tid, "double write acquisition");
                    if wts > self.ts {
                        self.issue_kill(wtid, wts);
                    }
                    blocker = wtid;
                } else if let Some(&(rtid, rts)) = e.readers.iter().find(|&&(t, _)| t != self.tid) {
                    if rts > self.ts {
                        self.issue_kill(rtid, rts);
                    }
                    blocker = rtid;
                } else {
                    e.writer = Some((self.tid, self.ts));
                    self.write_owned.push(line);
                    return Ok(());
                }
            }
            self.unblock_if_dead(blocker);
            self.stall();
        }
    }

    /// Transactional read: redo log first, then eager read-ownership
    /// acquisition and a shadow-view load.
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if an older transaction killed this one —
    /// the transaction has already been rolled back.
    pub fn read(&mut self, addr: Addr) -> Result<u64, UstmAbort> {
        debug_assert!(self.active);
        if self.heap.chaos().strike(self.tid, FailSite::UstmRead) {
            return Err(self.abort_explicit());
        }
        if let Some(by) = self.doomed() {
            return Err(self.unwind_killed(by));
        }
        if let Some(&v) = self.writes.get(&addr.0) {
            return Ok(v);
        }
        let w = self.heap.word_index(addr);
        let line = addr.0 / LINE_BYTES;
        if !self.reads.contains(&line) {
            self.acquire_read(line)?;
            self.reads.push(line);
        }
        Ok(self.heap.heap().shadow_word(w).load(Ordering::Acquire))
    }

    /// Transactional write: buffers into the redo log (lazy versioning;
    /// ownership is taken at commit).
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if a kill has landed (checked so a doomed
    /// writer-loop cannot starve its killer).
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), UstmAbort> {
        debug_assert!(self.active);
        if let Some(by) = self.doomed() {
            return Err(self.unwind_killed(by));
        }
        let _ = self.heap.word_index(addr); // bounds-check now, not at publish
        self.writes.insert(addr.0, value);
        Ok(())
    }

    /// Transactionally allocates `words` fresh words from the shared
    /// bump allocator (aborted attempts leak, as on the TL2 path).
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if a kill has landed.
    pub fn alloc(&mut self, words: u64) -> Result<Addr, UstmAbort> {
        debug_assert!(self.active);
        if let Some(by) = self.doomed() {
            return Err(self.unwind_killed(by));
        }
        Ok(self.heap.alloc_words(words))
    }

    /// In-transaction compute: spins, then checks for an asynchronous
    /// kill (the native analogue of the simulator delivering a kill
    /// during cycle-charged work).
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if a kill landed while computing.
    pub fn work(&mut self, cycles: u64) -> Result<(), UstmAbort> {
        debug_assert!(self.active);
        spin_work(cycles);
        if let Some(by) = self.doomed() {
            return Err(self.unwind_killed(by));
        }
        Ok(())
    }

    /// Commits: sorted-order write acquisition → seal → guard window →
    /// shadow write-back → release → retire.
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if an older transaction killed this one
    /// before the seal; the transaction has been rolled back.
    pub fn commit(&mut self) -> Result<(), UstmAbort> {
        debug_assert!(self.active);
        // Phase 1: acquire write ownership in canonical (sorted) line
        // order. Acquisition happens while still ACTIVE (killable), so
        // an older committer can always break a would-be deadlock by
        // killing us out of our acquisition loop.
        let mut lines: Vec<u64> = self.writes.keys().map(|&a| a / LINE_BYTES).collect();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            self.acquire_write(line)?;
        }
        // Ownerships held, not yet sealed: a forced abort (or injected
        // panic) here still unwinds as a plain ACTIVE rollback.
        if self.heap.chaos().strike(self.tid, FailSite::UstmCommit) {
            return Err(self.abort_explicit());
        }
        if !self.writes.is_empty() {
            // Publish the redo record *before* sealing: once sealed, this
            // transaction is unkillable and everyone stalls behind it, so
            // if it dies a helper must be able to finish the write-back
            // from this record alone.
            {
                let (mut rec, recovered) = lock_recover(&self.ustm.records[self.tid]);
                if recovered {
                    self.ustm.poison_recovered.fetch_add(1, Ordering::Relaxed);
                }
                rec.clear();
                rec.extend(self.writes.iter().map(|(&a, &v)| (a, v)));
            }
            // Phase 2: seal. After this CAS no kill can land (killers
            // observe COMMITTING and stall until we retire).
            if self
                .my_slot()
                .compare_exchange(
                    pack(self.ts, 0, PHASE_ACTIVE),
                    pack(self.ts, 0, PHASE_COMMITTING),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                let by = self
                    .doomed()
                    .expect("seal failed without a recorded killer");
                return Err(self.unwind_killed(by));
            }
            // Phase 3: strong-atomicity window + redo write-back through
            // the shadow view. Plain accesses to these pages fault and
            // re-execute after the window; USTM readers are excluded by
            // ownership; the TL2 fast path is quiesced by the hybrid's
            // mode gate.
            {
                let _win = self.heap.heap().open_window(
                    self.writes.keys().map(|&a| (a / 8) as usize),
                    Some((self.heap.chaos(), self.tid)),
                );
                // Sealed, window up, write-back not yet begun: a delay
                // here stalls the committer with the public view
                // protected (the exact race the plain-access tests
                // drive), and a panic leaves a sealed record for
                // helper-completion — the window guard restores
                // protection on the way out.
                let _ = self.heap.chaos().strike(self.tid, FailSite::UstmSealed);
                for (&a, &v) in &self.writes {
                    self.heap
                        .heap()
                        .shadow_word((a / 8) as usize)
                        .store(v, Ordering::Release);
                }
            }
        }
        // A read-only transaction skips seal and write-back: its reads
        // were protected by read ownership the whole time, so even a
        // kill flag that lands at this instant cannot invalidate them —
        // the commit serializes before the killer's write.
        self.release_ownership();
        self.my_slot().store(0, Ordering::SeqCst);
        self.writes.clear();
        self.active = false;
        self.stats.commits += 1;
        Ok(())
    }

    /// After an `Err(Killed)`, waits until the killer transaction has
    /// advanced (retired or changed state) before the caller retries —
    /// the native mirror of the simulated `UstmTxn::wait_for_killer`,
    /// which stops a freshly-killed victim from immediately re-attacking
    /// the older transaction that killed it.
    pub fn wait_for_killer(&mut self) {
        let Some(k) = self.last_killer.take() else {
            return;
        };
        let slot = &self.ustm.slots[k];
        let s0 = slot.load(Ordering::SeqCst);
        if slot_phase(s0) == PHASE_INACTIVE {
            return;
        }
        while slot.load(Ordering::SeqCst) == s0 {
            // A killer that died before retiring would otherwise park
            // this victim forever; reclaiming it advances the slot.
            if self.heap.liveness().is_dead(k) {
                self.ustm.reclaim_dead(self.heap, k);
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Runs `body` as a transaction, retrying (with killer-waits) until
    /// commit, and returns its result. Explicit aborts re-issue, like
    /// the simulated `UstmTxn::run`.
    pub fn run<R>(
        &mut self,
        mut body: impl FnMut(&mut NativeUstmTxn<'a>) -> Result<R, UstmAbort>,
    ) -> R {
        loop {
            self.begin();
            match body(self) {
                Ok(r) => match self.commit() {
                    Ok(()) => return r,
                    Err(UstmAbort::Killed { .. }) => self.wait_for_killer(),
                    Err(_) => {}
                },
                Err(UstmAbort::Killed { .. }) => self.wait_for_killer(),
                Err(UstmAbort::Explicit | UstmAbort::RetryWoken) => {
                    if self.active {
                        // The body surfaced its own abort without going
                        // through `abort_explicit`: roll back for it.
                        let _ = self.abort_explicit();
                    }
                }
            }
        }
    }
}

impl TxScope for NativeUstmTxn<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
        NativeUstmTxn::read(self, addr).map_err(|_| Stop)
    }

    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
        NativeUstmTxn::write(self, addr, value).map_err(|_| Stop)
    }

    fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
        NativeUstmTxn::alloc(self, words).map_err(|_| Stop)
    }

    fn work(&mut self, cycles: u64) -> Result<(), Stop> {
        NativeUstmTxn::work(self, cycles).map_err(|_| Stop)
    }
}
