//! The native hybrid: TL2 fast path, USTM slow path, PhTM-style mode
//! gate, and abort-count failover — the real-thread rendition of the
//! simulated `HybridTm` driver.
//!
//! Each [`HybridThread`] runs transactions on the TL2 fast path
//! ([`NativeTxn`]) until `failover_after` consecutive aborts (with
//! jittered exponential backoff between attempts, the policy shape of
//! `ufotm_core::HybridPolicy`), then executes **one** transaction on the
//! USTM slow path ([`NativeUstmTxn`]) and returns to the fast path.
//!
//! ## The mode gate
//!
//! TL2 never consults the USTM ownership table, so a fast-path
//! transaction racing a slow-path commit would be invisible to USTM's
//! conflict detection. The hybrid therefore phase-gates the two paths
//! (PhTM-style — fast transactions subscribe to a slow-mode stop word,
//! like the simulated hardware path subscribing to the serial gate):
//!
//! * A fast transaction registers in `fast_inflight`, then checks
//!   `slow_mode`; if a slow transaction is pending it deregisters and
//!   spin-yields until the mode clears.
//! * A slow transaction raises `slow_mode`, then waits for
//!   `fast_inflight` to drain before running. Multiple slow
//!   transactions run concurrently — USTM's ownership table is the
//!   concurrency control within the slow mode.
//!
//! Plain accesses ([`NativeHybrid::peek`]/[`NativeHybrid::poke`], and
//! the backend's `plain_load`/`plain_store` which route through them)
//! register in the same inflight count as fast transactions, so the
//! gate also closes the plain-access hole the `mprotect` guard cannot
//! cover on unguarded (boxed/TSan/non-x86_64) heaps: with the gate
//! drained, the only code touching USTM-written lines during a slow
//! commit is USTM itself.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use ufotm_core::{Stop, TmBackend, TxScope};
use ufotm_machine::Addr;
use ufotm_ustm::UstmAbort;

use crate::chaos::{self, lock_recover, FailSite};
use crate::guard::GuardStats;
use crate::tl2::{spin_work, NativeStats, NativeTl2, NativeTxn};
use crate::ustm::{NativeUstm, NativeUstmStats, NativeUstmTxn};

/// Failover/backoff policy for the native hybrid — the same shape as
/// the simulated `HybridPolicy`'s retry knobs, with jitter on by
/// default (real threads, unlike sim CPUs, gain nothing from
/// deterministic lockstep backoff).
#[derive(Clone, Copy, Debug)]
pub struct NativeHybridPolicy {
    /// Consecutive fast-path aborts before one slow-path execution.
    pub failover_after: u32,
    /// Base spin units for fast-path retry backoff.
    pub backoff_base: u64,
    /// Backoff doubles per abort up to `base << cap`.
    pub backoff_cap_exp: u32,
    /// ± percentage of random jitter applied to each backoff.
    pub backoff_jitter_pct: u64,
    /// Slow-path attempts before escalating to the serial-irrevocable
    /// tier (the native mirror of the simulator's third watchdog tier).
    pub serial_after: u32,
}

impl Default for NativeHybridPolicy {
    fn default() -> Self {
        NativeHybridPolicy {
            failover_after: 4,
            backoff_base: 50,
            backoff_cap_exp: 7,
            backoff_jitter_pct: 25,
            serial_after: 8,
        }
    }
}

/// Shared native hybrid state: the TL2 world (which owns the word
/// heap), the USTM ownership table, and the mode gate.
#[derive(Debug)]
pub struct NativeHybrid {
    tl2: NativeTl2,
    ustm: NativeUstm,
    /// Count of slow-path transactions pending or running.
    slow_mode: AtomicU64,
    /// Count of fast-path transactions currently executing.
    fast_inflight: AtomicU64,
    /// Nonzero while a serial-irrevocable transaction runs; both paths
    /// subscribe to it (fast via the gate, slow via attempt parking).
    serial_mode: AtomicU64,
    /// Serializes serial-tier transactions.
    serial_gate: Mutex<()>,
    /// Per-tid flag: this tid currently holds a `fast_inflight`
    /// registration. Lets [`NativeHybrid::reap_dead`] repair the gate
    /// when a worker dies between register and deregister.
    fast_held: Box<[AtomicU64]>,
    /// Per-tid flag: this tid currently holds a `slow_mode`
    /// registration.
    slow_held: Box<[AtomicU64]>,
    policy: NativeHybridPolicy,
}

impl NativeHybrid {
    /// Creates hybrid state: a TL2 world of `heap_words` /
    /// `lock_entries` / `alloc_base_word` (see [`NativeTl2::new`]) plus
    /// a USTM ownership table of `otable_bins` bins with status slots
    /// for `threads`.
    #[must_use]
    pub fn new(
        heap_words: u64,
        lock_entries: u64,
        alloc_base_word: u64,
        threads: usize,
        otable_bins: u64,
        policy: NativeHybridPolicy,
    ) -> Self {
        NativeHybrid {
            tl2: NativeTl2::new(heap_words, lock_entries, alloc_base_word),
            ustm: NativeUstm::new(threads, otable_bins),
            slow_mode: AtomicU64::new(0),
            fast_inflight: AtomicU64::new(0),
            serial_mode: AtomicU64::new(0),
            serial_gate: Mutex::new(()),
            fast_held: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            slow_held: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            policy,
        }
    }

    /// Repairs everything a **dead** worker left behind in the hybrid:
    /// its USTM leavings (helper-completing a sealed commit — done
    /// first, while any gate registration the corpse leaked still holds
    /// the fast path off unguarded heaps), its orphaned TL2 stripe
    /// locks, and finally any `fast_inflight`/`slow_mode` registration
    /// it died holding (which would otherwise wedge the gate forever).
    /// Idempotent and safe to call from multiple survivors — the held
    /// flags are consumed by CAS.
    pub fn reap_dead(&self, tid: usize) {
        self.ustm.reclaim_dead(&self.tl2, tid);
        self.tl2.sweep_orphans();
        if self.fast_held[tid]
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.fast_inflight.fetch_sub(1, Ordering::SeqCst);
        }
        if self.slow_held[tid]
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.slow_mode.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Reaps every tid the liveness registry has marked dead.
    pub fn reap_all_dead(&self) {
        for tid in 0..self.slow_held.len() {
            if self.tl2.liveness().is_dead(tid) {
                self.reap_dead(tid);
            }
        }
    }

    /// The underlying TL2 world (heap host) — for setup/verify peeks
    /// and pokes and the debug guard scaffolding.
    #[must_use]
    pub fn tl2(&self) -> &NativeTl2 {
        &self.tl2
    }

    /// The USTM ownership table — test observability.
    #[must_use]
    pub fn ustm(&self) -> &NativeUstm {
        &self.ustm
    }

    /// Registers a fast-path transaction *or* a plain accessor in
    /// `fast_inflight`, quiescing while any slow-path transaction is
    /// pending (the PhTM-style stop-word subscription). Routing plain
    /// accesses through the same gate closes the hole the `mprotect`
    /// guard cannot cover on unguarded (boxed/TSan/non-x86_64) heaps:
    /// a pending slow commit drains plain accessors exactly like fast
    /// transactions before touching the heap.
    fn gate_enter(&self) {
        // Delay-only failpoint (anonymous stream): widens the window in
        // which a plain accessor sits between registering and checking.
        let _ = self.tl2.chaos().strike_anon(FailSite::HybridGate);
        loop {
            self.fast_inflight.fetch_add(1, Ordering::SeqCst);
            if self.slow_mode.load(Ordering::SeqCst) == 0
                && self.serial_mode.load(Ordering::SeqCst) == 0
            {
                return;
            }
            self.fast_inflight.fetch_sub(1, Ordering::SeqCst);
            while self.slow_mode.load(Ordering::SeqCst) != 0
                || self.serial_mode.load(Ordering::SeqCst) != 0
            {
                std::thread::yield_now();
            }
        }
    }

    fn gate_exit(&self) {
        self.fast_inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Plain (non-transactional) load, gated against slow-path commit
    /// windows; see [`NativeTl2::peek`].
    #[must_use]
    pub fn peek(&self, addr: Addr) -> u64 {
        self.gate_enter();
        let v = self.tl2.peek(addr);
        self.gate_exit();
        v
    }

    /// Plain (non-transactional) store, gated against slow-path commit
    /// windows; see [`NativeTl2::poke`].
    pub fn poke(&self, addr: Addr, value: u64) {
        self.gate_enter();
        self.tl2.poke(addr, value);
        self.gate_exit();
    }

    /// Host-side allocation from the shared bump allocator.
    #[must_use]
    pub fn host_alloc(&self, words: u64) -> Addr {
        self.tl2.host_alloc(words)
    }

    /// Guard counters for the shared heap.
    #[must_use]
    pub fn guard_stats(&self) -> GuardStats {
        self.tl2.guard_stats()
    }
}

/// Merged per-thread hybrid counters: fast-path TL2 stats, slow-path
/// USTM stats, and failover accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// TL2 fast-path counters.
    pub fast: NativeStats,
    /// USTM slow-path counters.
    pub slow: NativeUstmStats,
    /// Transactions that failed over to the slow path after
    /// `failover_after` consecutive fast aborts.
    pub failovers: u64,
    /// Failovers injected by [`HybridThread::force_failover_next`]
    /// (test/cross-validation scaffolding).
    pub forced_failovers: u64,
    /// Transactions completed on the serial-irrevocable tier.
    pub serial_commits: u64,
    /// Escalations from the slow path to the serial tier (after
    /// `serial_after` failed slow attempts).
    pub serial_escalations: u64,
}

impl HybridStats {
    /// Transactions committed on any tier.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.fast.commits + self.slow.commits + self.serial_commits
    }

    /// Total aborts on either retrying path (the serial tier never
    /// aborts).
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.fast.total_aborts() + self.slow.total_aborts()
    }

    /// Folds another thread's counters into this one. Exhaustive
    /// destructuring: adding a field without summing it here is a
    /// compile error.
    pub fn merge(&mut self, other: &HybridStats) {
        let HybridStats {
            fast,
            slow,
            failovers,
            forced_failovers,
            serial_commits,
            serial_escalations,
        } = *other;
        self.fast.merge(&fast);
        self.slow.merge(&slow);
        self.failovers += failovers;
        self.forced_failovers += forced_failovers;
        self.serial_commits += serial_commits;
        self.serial_escalations += serial_escalations;
    }
}

/// One OS thread's hybrid backend handle: a fast-path and a slow-path
/// transaction handle over the shared state, implementing
/// [`TmBackend`] so backend-generic workloads run on the hybrid
/// unchanged.
#[derive(Debug)]
pub struct HybridThread<'a> {
    shared: &'a NativeHybrid,
    fast: NativeTxn<'a>,
    slow: NativeUstmTxn<'a>,
    barrier: Option<&'a Barrier>,
    tid: usize,
    threads: usize,
    force_slow: bool,
    failovers: u64,
    forced_failovers: u64,
    serial_commits: u64,
    serial_escalations: u64,
    rng: u64,
}

impl<'a> HybridThread<'a> {
    /// Creates the handle for thread `tid` of `threads`. `barrier` is
    /// the shared phase barrier; pass `None` for single-threaded
    /// protocol scripts that never call [`TmBackend::barrier`].
    #[must_use]
    pub fn new(
        shared: &'a NativeHybrid,
        barrier: Option<&'a Barrier>,
        tid: usize,
        threads: usize,
    ) -> Self {
        HybridThread {
            shared,
            fast: NativeTxn::new(&shared.tl2, tid),
            slow: NativeUstmTxn::new(&shared.tl2, &shared.ustm, tid),
            barrier,
            tid,
            threads,
            force_slow: false,
            failovers: 0,
            forced_failovers: 0,
            serial_commits: 0,
            serial_escalations: 0,
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
        }
    }

    /// Makes the next [`TmBackend::transaction`] on this handle run on
    /// the USTM slow path regardless of abort counts — deterministic
    /// failover for tests and cross-validation scripts (the native
    /// mirror of the simulated driver's forced failover hook).
    pub fn force_failover_next(&mut self) {
        self.force_slow = true;
    }

    /// This handle's merged counters.
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        HybridStats {
            fast: self.fast.stats,
            slow: self.slow.stats,
            failovers: self.failovers,
            forced_failovers: self.forced_failovers,
            serial_commits: self.serial_commits,
            serial_escalations: self.serial_escalations,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64; per-thread seed, jitter only (no fairness claims).
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Jittered exponential backoff between fast-path retries
    /// (`base << min(n, cap)` ± `jitter_pct`%, the `HybridPolicy`
    /// schedule with jitter).
    fn backoff(&mut self, consecutive: u32) {
        let p = self.shared.policy;
        let base = p.backoff_base << consecutive.min(p.backoff_cap_exp);
        let spin = if p.backoff_jitter_pct == 0 {
            base
        } else {
            let span = base * p.backoff_jitter_pct / 100;
            base - span + self.next_rand() % (2 * span + 1)
        };
        spin_work(spin);
        std::thread::yield_now();
    }

    /// Registers a fast-path transaction, quiescing while any slow-path
    /// transaction is pending; see [`NativeHybrid::gate_enter`].
    fn enter_fast(&self) {
        self.shared.gate_enter();
    }

    fn exit_fast(&self) {
        self.shared.gate_exit();
    }

    /// One fast-path attempt; `Some(r)` on commit.
    fn try_fast<R>(
        &mut self,
        body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Stop>,
    ) -> Option<R> {
        // Held-flag first, then the body: if this worker dies at an
        // injected failpoint inside the attempt, `reap_dead` can see the
        // flag and give its gate registration back.
        self.enter_fast();
        self.shared.fast_held[self.tid].store(1, Ordering::SeqCst);
        self.fast.begin();
        let committed = match body(&mut self.fast) {
            Ok(r) => self.fast.commit().is_ok().then_some(r),
            Err(Stop) => {
                if self.fast.is_active() {
                    self.fast.drop_attempt();
                }
                None
            }
        };
        self.shared.fast_held[self.tid].store(0, Ordering::SeqCst);
        self.exit_fast();
        committed
    }

    /// Runs one transaction to commit on the USTM slow path: raise the
    /// mode, drain the fast path, retry the body under USTM until it
    /// commits, release the mode. After `serial_after` failed attempts,
    /// escalates to the serial-irrevocable tier — the third watchdog
    /// tier, mirroring the simulator's. Between attempts the slow path
    /// parks (deregistering from the mode) while a serial transaction
    /// runs, so the serial tier's drain always terminates.
    fn run_slow<R>(&mut self, body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        let shared = self.shared;
        shared.slow_held[self.tid].store(1, Ordering::SeqCst);
        shared.slow_mode.fetch_add(1, Ordering::SeqCst);
        while shared.fast_inflight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        let mut attempts = 0u32;
        let committed = loop {
            if attempts >= shared.policy.serial_after {
                break None;
            }
            if shared.serial_mode.load(Ordering::SeqCst) != 0 {
                // Park: hand the mode back so the serial tier can drain,
                // re-register once it completes.
                shared.slow_mode.fetch_sub(1, Ordering::SeqCst);
                shared.slow_held[self.tid].store(0, Ordering::SeqCst);
                while shared.serial_mode.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
                shared.slow_held[self.tid].store(1, Ordering::SeqCst);
                shared.slow_mode.fetch_add(1, Ordering::SeqCst);
                while shared.fast_inflight.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
            }
            attempts += 1;
            self.slow.begin();
            match body(&mut self.slow) {
                Ok(r) => match self.slow.commit() {
                    Ok(()) => break Some(r),
                    Err(UstmAbort::Killed { .. }) => self.slow.wait_for_killer(),
                    Err(_) => {}
                },
                Err(Stop) => {
                    if self.slow.is_active() {
                        // The body surfaced a hand-made Stop with the
                        // attempt still live: roll it back and retry.
                        let _ = self.slow.abort_explicit();
                    } else {
                        // Protocol abort (killed): pause behind the
                        // killer before retrying.
                        self.slow.wait_for_killer();
                    }
                }
            }
        };
        shared.slow_mode.fetch_sub(1, Ordering::SeqCst);
        shared.slow_held[self.tid].store(0, Ordering::SeqCst);
        match committed {
            Some(r) => r,
            None => {
                self.serial_escalations += 1;
                self.run_serial(body)
            }
        }
    }

    /// The serial-irrevocable tier: take the serial gate, raise
    /// `serial_mode` (fast transactions and plain accessors park at the
    /// gate; slow transactions park between attempts), reap every dead
    /// worker, drain both paths, then execute the body **directly** on
    /// the heap — no locks, no ownership, no aborts, and no chaos
    /// strikes, so completion is unconditional. The native livelock of
    /// mutual kills that wedges a two-tier hybrid completes here.
    fn run_serial<R>(&mut self, body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        let shared = self.shared;
        let (gate, _recovered) = lock_recover(&shared.serial_gate);
        shared.serial_mode.store(1, Ordering::SeqCst);
        loop {
            // Dead workers can never deregister; give their
            // registrations back before judging the drain.
            shared.reap_all_dead();
            if shared.fast_inflight.load(Ordering::SeqCst) == 0
                && shared.slow_mode.load(Ordering::SeqCst) == 0
            {
                break;
            }
            std::thread::yield_now();
        }
        let mut scope = SerialScope { shared };
        let r = match body(&mut scope) {
            Ok(r) => r,
            Err(Stop) => {
                // Irrevocable: direct stores are already public, so a
                // hand-made Stop cannot roll back. Bodies that fabricate
                // aborts are scaffolding-only and never reach the serial
                // tier; a real workload body only fails via its scope.
                panic!("transaction body surfaced a hand-made Stop on the serial tier")
            }
        };
        self.serial_commits += 1;
        shared.serial_mode.store(0, Ordering::SeqCst);
        drop(gate);
        r
    }
}

/// The serial tier's [`TxScope`]: direct, uninstrumented heap access.
/// Sound because `run_serial` holds every other path parked for the
/// whole body, and no new fast/slow transaction starts until
/// `serial_mode` drops.
struct SerialScope<'a> {
    shared: &'a NativeHybrid,
}

impl TxScope for SerialScope<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
        Ok(self.shared.tl2.peek(addr))
    }

    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
        self.shared.tl2.poke(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
        Ok(self.shared.tl2.host_alloc(words))
    }

    fn work(&mut self, cycles: u64) -> Result<(), Stop> {
        spin_work(cycles);
        Ok(())
    }
}

impl TmBackend for HybridThread<'_> {
    fn transaction<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        let mut consecutive = 0u32;
        loop {
            if self.force_slow || consecutive >= self.shared.policy.failover_after {
                let forced = std::mem::take(&mut self.force_slow);
                let r = self.run_slow(&mut body);
                self.failovers += 1;
                if forced {
                    self.forced_failovers += 1;
                }
                return r;
            }
            if let Some(r) = self.try_fast(&mut body) {
                return r;
            }
            consecutive += 1;
            self.backoff(consecutive);
        }
    }

    fn plain_load(&mut self, addr: Addr) -> u64 {
        self.shared.peek(addr)
    }

    fn plain_store(&mut self, addr: Addr, value: u64) {
        self.shared.poke(addr, value);
    }

    fn compute(&mut self, cycles: u64) {
        spin_work(cycles);
    }

    fn barrier(&mut self) {
        self.barrier
            .expect("this hybrid handle has no phase barrier")
            .wait();
    }

    fn tid(&self) -> usize {
        self.tid
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn force_failover_next(&mut self) {
        HybridThread::force_failover_next(self);
    }

    fn commit_counts(&mut self) -> (u64, u64) {
        // Serial commits count on the "slow" side, mirroring the
        // simulated backend's sw + lock + serial rollup.
        (
            self.fast.stats.commits,
            self.slow.stats.commits + self.serial_commits,
        )
    }

    fn failovers(&mut self) -> u64 {
        self.failovers
    }

    fn serial_commits(&mut self) -> u64 {
        self.serial_commits
    }

    fn orphan_reclaims(&mut self) -> u64 {
        self.shared.tl2.orphan_steals() + self.shared.ustm.orphan_releases()
    }

    fn helper_completions(&mut self) -> u64 {
        self.shared.ustm.helper_completions()
    }
}

/// One worker's join outcome from [`run_hybrid_threads_collect`]; see
/// [`crate::tl2::NativeOutcome`].
#[derive(Clone, Debug)]
pub struct HybridOutcome<R> {
    /// Worker tid (outcomes are returned in tid order).
    pub tid: usize,
    /// The worker's merged counters at join time.
    pub stats: HybridStats,
    /// The body's result, or the rendered panic payload.
    pub result: Result<R, String>,
}

/// Runs `body` on `threads` real OS threads over `shared`, each with
/// its own [`HybridThread`] handle and a common phase barrier, and
/// collects **every** worker's outcome. A panicked worker is marked
/// dead and immediately reaped (in-thread, before it exits): its USTM
/// leavings are helper-completed or discarded, its TL2 stripe locks
/// swept, and any gate registration it died holding is repaired, so
/// survivors keep committing while the corpse is still warm.
///
/// Bodies that may be killed by panic injection must not use the phase
/// barrier (a dead worker never arrives).
pub fn run_hybrid_threads_collect<R: Send>(
    shared: &NativeHybrid,
    threads: usize,
    body: impl Fn(&mut HybridThread<'_>) -> R + Sync,
) -> Vec<HybridOutcome<R>> {
    assert!(threads >= 1, "at least one thread");
    let barrier = Barrier::new(threads);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let barrier = &barrier;
                let body = &body;
                scope.spawn(move || {
                    let mut th = HybridThread::new(shared, Some(barrier), tid, threads);
                    let r = catch_unwind(AssertUnwindSafe(|| body(&mut th)));
                    let stats = th.stats();
                    let result = r.map_err(|payload| {
                        shared.tl2.liveness().mark_dead(tid);
                        shared.reap_dead(tid);
                        chaos::panic_message(payload.as_ref())
                    });
                    HybridOutcome { tid, stats, result }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hybrid worker wrapper itself panicked"))
            .collect::<Vec<_>>()
    });
    if outcomes.iter().any(|o| o.result.is_err()) {
        shared.reap_all_dead();
    }
    outcomes
}

/// Runs `body` on `threads` real OS threads over `shared`, each with
/// its own [`HybridThread`] handle and a common phase barrier. Returns
/// the merged stats and each thread's result (in tid order).
///
/// # Panics
///
/// Panics if any worker panicked, naming every dead tid with its
/// payload and per-thread counters. Use [`run_hybrid_threads_collect`]
/// to observe the survivors instead.
pub fn run_hybrid_threads<R: Send>(
    shared: &NativeHybrid,
    threads: usize,
    body: impl Fn(&mut HybridThread<'_>) -> R + Sync,
) -> (HybridStats, Vec<R>) {
    let outcomes = run_hybrid_threads_collect(shared, threads, body);
    let mut stats = HybridStats::default();
    let mut results = Vec::with_capacity(threads);
    let mut deaths = Vec::new();
    for o in outcomes {
        stats.merge(&o.stats);
        match o.result {
            Ok(r) => results.push(r),
            Err(msg) => deaths.push(format!("tid {}: {msg} (stats {:?})", o.tid, o.stats)),
        }
    }
    assert!(
        deaths.is_empty(),
        "hybrid worker thread(s) panicked: {}",
        deaths.join("; ")
    );
    (stats, results)
}
