//! The native hybrid: TL2 fast path, USTM slow path, PhTM-style mode
//! gate, and abort-count failover — the real-thread rendition of the
//! simulated `HybridTm` driver.
//!
//! Each [`HybridThread`] runs transactions on the TL2 fast path
//! ([`NativeTxn`]) until `failover_after` consecutive aborts (with
//! jittered exponential backoff between attempts, the policy shape of
//! `ufotm_core::HybridPolicy`), then executes **one** transaction on the
//! USTM slow path ([`NativeUstmTxn`]) and returns to the fast path.
//!
//! ## The mode gate
//!
//! TL2 never consults the USTM ownership table, so a fast-path
//! transaction racing a slow-path commit would be invisible to USTM's
//! conflict detection. The hybrid therefore phase-gates the two paths
//! (PhTM-style — fast transactions subscribe to a slow-mode stop word,
//! like the simulated hardware path subscribing to the serial gate):
//!
//! * A fast transaction registers in `fast_inflight`, then checks
//!   `slow_mode`; if a slow transaction is pending it deregisters and
//!   spin-yields until the mode clears.
//! * A slow transaction raises `slow_mode`, then waits for
//!   `fast_inflight` to drain before running. Multiple slow
//!   transactions run concurrently — USTM's ownership table is the
//!   concurrency control within the slow mode.
//!
//! Plain accesses ([`NativeHybrid::peek`]/[`NativeHybrid::poke`], and
//! the backend's `plain_load`/`plain_store` which route through them)
//! register in the same inflight count as fast transactions, so the
//! gate also closes the plain-access hole the `mprotect` guard cannot
//! cover on unguarded (boxed/TSan/non-x86_64) heaps: with the gate
//! drained, the only code touching USTM-written lines during a slow
//! commit is USTM itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use ufotm_core::{Stop, TmBackend, TxScope};
use ufotm_machine::Addr;
use ufotm_ustm::UstmAbort;

use crate::guard::GuardStats;
use crate::tl2::{spin_work, NativeStats, NativeTl2, NativeTxn};
use crate::ustm::{NativeUstm, NativeUstmStats, NativeUstmTxn};

/// Failover/backoff policy for the native hybrid — the same shape as
/// the simulated `HybridPolicy`'s retry knobs, with jitter on by
/// default (real threads, unlike sim CPUs, gain nothing from
/// deterministic lockstep backoff).
#[derive(Clone, Copy, Debug)]
pub struct NativeHybridPolicy {
    /// Consecutive fast-path aborts before one slow-path execution.
    pub failover_after: u32,
    /// Base spin units for fast-path retry backoff.
    pub backoff_base: u64,
    /// Backoff doubles per abort up to `base << cap`.
    pub backoff_cap_exp: u32,
    /// ± percentage of random jitter applied to each backoff.
    pub backoff_jitter_pct: u64,
}

impl Default for NativeHybridPolicy {
    fn default() -> Self {
        NativeHybridPolicy {
            failover_after: 4,
            backoff_base: 50,
            backoff_cap_exp: 7,
            backoff_jitter_pct: 25,
        }
    }
}

/// Shared native hybrid state: the TL2 world (which owns the word
/// heap), the USTM ownership table, and the mode gate.
#[derive(Debug)]
pub struct NativeHybrid {
    tl2: NativeTl2,
    ustm: NativeUstm,
    /// Count of slow-path transactions pending or running.
    slow_mode: AtomicU64,
    /// Count of fast-path transactions currently executing.
    fast_inflight: AtomicU64,
    policy: NativeHybridPolicy,
}

impl NativeHybrid {
    /// Creates hybrid state: a TL2 world of `heap_words` /
    /// `lock_entries` / `alloc_base_word` (see [`NativeTl2::new`]) plus
    /// a USTM ownership table of `otable_bins` bins with status slots
    /// for `threads`.
    #[must_use]
    pub fn new(
        heap_words: u64,
        lock_entries: u64,
        alloc_base_word: u64,
        threads: usize,
        otable_bins: u64,
        policy: NativeHybridPolicy,
    ) -> Self {
        NativeHybrid {
            tl2: NativeTl2::new(heap_words, lock_entries, alloc_base_word),
            ustm: NativeUstm::new(threads, otable_bins),
            slow_mode: AtomicU64::new(0),
            fast_inflight: AtomicU64::new(0),
            policy,
        }
    }

    /// The underlying TL2 world (heap host) — for setup/verify peeks
    /// and pokes and the debug guard scaffolding.
    #[must_use]
    pub fn tl2(&self) -> &NativeTl2 {
        &self.tl2
    }

    /// The USTM ownership table — test observability.
    #[must_use]
    pub fn ustm(&self) -> &NativeUstm {
        &self.ustm
    }

    /// Registers a fast-path transaction *or* a plain accessor in
    /// `fast_inflight`, quiescing while any slow-path transaction is
    /// pending (the PhTM-style stop-word subscription). Routing plain
    /// accesses through the same gate closes the hole the `mprotect`
    /// guard cannot cover on unguarded (boxed/TSan/non-x86_64) heaps:
    /// a pending slow commit drains plain accessors exactly like fast
    /// transactions before touching the heap.
    fn gate_enter(&self) {
        loop {
            self.fast_inflight.fetch_add(1, Ordering::SeqCst);
            if self.slow_mode.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.fast_inflight.fetch_sub(1, Ordering::SeqCst);
            while self.slow_mode.load(Ordering::SeqCst) != 0 {
                std::thread::yield_now();
            }
        }
    }

    fn gate_exit(&self) {
        self.fast_inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Plain (non-transactional) load, gated against slow-path commit
    /// windows; see [`NativeTl2::peek`].
    #[must_use]
    pub fn peek(&self, addr: Addr) -> u64 {
        self.gate_enter();
        let v = self.tl2.peek(addr);
        self.gate_exit();
        v
    }

    /// Plain (non-transactional) store, gated against slow-path commit
    /// windows; see [`NativeTl2::poke`].
    pub fn poke(&self, addr: Addr, value: u64) {
        self.gate_enter();
        self.tl2.poke(addr, value);
        self.gate_exit();
    }

    /// Host-side allocation from the shared bump allocator.
    #[must_use]
    pub fn host_alloc(&self, words: u64) -> Addr {
        self.tl2.host_alloc(words)
    }

    /// Guard counters for the shared heap.
    #[must_use]
    pub fn guard_stats(&self) -> GuardStats {
        self.tl2.guard_stats()
    }
}

/// Merged per-thread hybrid counters: fast-path TL2 stats, slow-path
/// USTM stats, and failover accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// TL2 fast-path counters.
    pub fast: NativeStats,
    /// USTM slow-path counters.
    pub slow: NativeUstmStats,
    /// Transactions that failed over to the slow path after
    /// `failover_after` consecutive fast aborts.
    pub failovers: u64,
    /// Failovers injected by [`HybridThread::force_failover_next`]
    /// (test/cross-validation scaffolding).
    pub forced_failovers: u64,
}

impl HybridStats {
    /// Transactions committed on either path.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.fast.commits + self.slow.commits
    }

    /// Total aborts on either path.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.fast.total_aborts() + self.slow.total_aborts()
    }

    /// Folds another thread's counters into this one. Exhaustive
    /// destructuring: adding a field without summing it here is a
    /// compile error.
    pub fn merge(&mut self, other: &HybridStats) {
        let HybridStats {
            fast,
            slow,
            failovers,
            forced_failovers,
        } = *other;
        self.fast.merge(&fast);
        self.slow.merge(&slow);
        self.failovers += failovers;
        self.forced_failovers += forced_failovers;
    }
}

/// One OS thread's hybrid backend handle: a fast-path and a slow-path
/// transaction handle over the shared state, implementing
/// [`TmBackend`] so backend-generic workloads run on the hybrid
/// unchanged.
#[derive(Debug)]
pub struct HybridThread<'a> {
    shared: &'a NativeHybrid,
    fast: NativeTxn<'a>,
    slow: NativeUstmTxn<'a>,
    barrier: Option<&'a Barrier>,
    tid: usize,
    threads: usize,
    force_slow: bool,
    failovers: u64,
    forced_failovers: u64,
    rng: u64,
}

impl<'a> HybridThread<'a> {
    /// Creates the handle for thread `tid` of `threads`. `barrier` is
    /// the shared phase barrier; pass `None` for single-threaded
    /// protocol scripts that never call [`TmBackend::barrier`].
    #[must_use]
    pub fn new(
        shared: &'a NativeHybrid,
        barrier: Option<&'a Barrier>,
        tid: usize,
        threads: usize,
    ) -> Self {
        HybridThread {
            shared,
            fast: NativeTxn::new(&shared.tl2, tid),
            slow: NativeUstmTxn::new(&shared.tl2, &shared.ustm, tid),
            barrier,
            tid,
            threads,
            force_slow: false,
            failovers: 0,
            forced_failovers: 0,
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
        }
    }

    /// Makes the next [`TmBackend::transaction`] on this handle run on
    /// the USTM slow path regardless of abort counts — deterministic
    /// failover for tests and cross-validation scripts (the native
    /// mirror of the simulated driver's forced failover hook).
    pub fn force_failover_next(&mut self) {
        self.force_slow = true;
    }

    /// This handle's merged counters.
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        HybridStats {
            fast: self.fast.stats,
            slow: self.slow.stats,
            failovers: self.failovers,
            forced_failovers: self.forced_failovers,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64; per-thread seed, jitter only (no fairness claims).
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Jittered exponential backoff between fast-path retries
    /// (`base << min(n, cap)` ± `jitter_pct`%, the `HybridPolicy`
    /// schedule with jitter).
    fn backoff(&mut self, consecutive: u32) {
        let p = self.shared.policy;
        let base = p.backoff_base << consecutive.min(p.backoff_cap_exp);
        let spin = if p.backoff_jitter_pct == 0 {
            base
        } else {
            let span = base * p.backoff_jitter_pct / 100;
            base - span + self.next_rand() % (2 * span + 1)
        };
        spin_work(spin);
        std::thread::yield_now();
    }

    /// Registers a fast-path transaction, quiescing while any slow-path
    /// transaction is pending; see [`NativeHybrid::gate_enter`].
    fn enter_fast(&self) {
        self.shared.gate_enter();
    }

    fn exit_fast(&self) {
        self.shared.gate_exit();
    }

    /// One fast-path attempt; `Some(r)` on commit.
    fn try_fast<R>(
        &mut self,
        body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Stop>,
    ) -> Option<R> {
        self.enter_fast();
        self.fast.begin();
        let committed = match body(&mut self.fast) {
            Ok(r) => self.fast.commit().is_ok().then_some(r),
            Err(Stop) => {
                if self.fast.is_active() {
                    self.fast.drop_attempt();
                }
                None
            }
        };
        self.exit_fast();
        committed
    }

    /// Runs one transaction to commit on the USTM slow path: raise the
    /// mode, drain the fast path, retry the body under USTM until it
    /// commits, release the mode.
    fn run_slow<R>(&mut self, body: &mut impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        self.shared.slow_mode.fetch_add(1, Ordering::SeqCst);
        while self.shared.fast_inflight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        let r = loop {
            self.slow.begin();
            match body(&mut self.slow) {
                Ok(r) => match self.slow.commit() {
                    Ok(()) => break r,
                    Err(UstmAbort::Killed { .. }) => self.slow.wait_for_killer(),
                    Err(_) => {}
                },
                Err(Stop) => {
                    if self.slow.is_active() {
                        // The body surfaced a hand-made Stop with the
                        // attempt still live: roll it back and retry.
                        let _ = self.slow.abort_explicit();
                    } else {
                        // Protocol abort (killed): pause behind the
                        // killer before retrying.
                        self.slow.wait_for_killer();
                    }
                }
            }
        };
        self.shared.slow_mode.fetch_sub(1, Ordering::SeqCst);
        r
    }
}

impl TmBackend for HybridThread<'_> {
    fn transaction<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        let mut consecutive = 0u32;
        loop {
            if self.force_slow || consecutive >= self.shared.policy.failover_after {
                let forced = std::mem::take(&mut self.force_slow);
                let r = self.run_slow(&mut body);
                self.failovers += 1;
                if forced {
                    self.forced_failovers += 1;
                }
                return r;
            }
            if let Some(r) = self.try_fast(&mut body) {
                return r;
            }
            consecutive += 1;
            self.backoff(consecutive);
        }
    }

    fn plain_load(&mut self, addr: Addr) -> u64 {
        self.shared.peek(addr)
    }

    fn plain_store(&mut self, addr: Addr, value: u64) {
        self.shared.poke(addr, value);
    }

    fn compute(&mut self, cycles: u64) {
        spin_work(cycles);
    }

    fn barrier(&mut self) {
        self.barrier
            .expect("this hybrid handle has no phase barrier")
            .wait();
    }

    fn tid(&self) -> usize {
        self.tid
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn force_failover_next(&mut self) {
        HybridThread::force_failover_next(self);
    }

    fn commit_counts(&mut self) -> (u64, u64) {
        (self.fast.stats.commits, self.slow.stats.commits)
    }

    fn failovers(&mut self) -> u64 {
        self.failovers
    }
}

/// Runs `body` on `threads` real OS threads over `shared`, each with
/// its own [`HybridThread`] handle and a common phase barrier. Returns
/// the merged stats and each thread's result (in tid order).
///
/// # Panics
///
/// Propagates worker panics (verification failures, heap exhaustion).
pub fn run_hybrid_threads<R: Send>(
    shared: &NativeHybrid,
    threads: usize,
    body: impl Fn(&mut HybridThread<'_>) -> R + Sync,
) -> (HybridStats, Vec<R>) {
    assert!(threads >= 1, "at least one thread");
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let barrier = &barrier;
                let body = &body;
                scope.spawn(move || {
                    let mut th = HybridThread::new(shared, Some(barrier), tid, threads);
                    let r = body(&mut th);
                    (th.stats(), r)
                })
            })
            .collect();
        let mut stats = HybridStats::default();
        let mut results = Vec::with_capacity(threads);
        for h in handles {
            let (s, r) = h.join().expect("hybrid worker thread panicked");
            stats.merge(&s);
            results.push(r);
        }
        (stats, results)
    })
}
