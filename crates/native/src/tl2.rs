//! Host-atomics TL2: the fast path of the native hybrid (and a backend
//! in its own right).
//!
//! The same version-lock + global-clock protocol as the simulated
//! [`ufotm-tl2`](ufotm_tl2) crate — striped version-locks keyed by cache
//! line, a global version clock, read-set validation, lock-ordered
//! write-back — but executed with `AtomicU64` operations on real host
//! memory, with **zero simulator involvement**.
//!
//! ## Protocol (mirrors `ufotm_tl2::Tl2Txn` phase for phase)
//!
//! * **begin** — sample the global clock into `rv`.
//! * **read** — pre-sample the stripe lock, load the word, post-sample;
//!   valid iff both samples are unlocked, equal, and `version <= rv`.
//! * **write** — buffer in a `BTreeMap` (lazy versioning).
//! * **commit** — acquire write-stripe locks in sorted stripe order
//!   (single-shot CAS, [`Tl2Abort::LockBusy`] on contention), bump the
//!   clock to get `wv`, validate the read set
//!   ([`Tl2Abort::CommitValidation`] on failure), publish the write set
//!   with `Release` stores, release each lock stamped `wv`.
//!
//! A stripe lock word is `version << 1` when free and
//! `(((epoch << 8) | owner_tid) << 1) | 1` when held, so readers
//! distinguish locked-by-me during commit validation exactly like the
//! simulated `LockWord { version, holder }` — and, new in the chaos
//! layer, so a waiter that observes a lock stamped by a **dead** owner
//! (the [`crate::chaos::Liveness`] registry, marked precisely by the
//! runner when a worker's body unwinds) can steal-and-invalidate the
//! stripe instead of spinning forever. The epoch guards tid reuse: a
//! revived worker advances its epoch, so its fresh locks can never be
//! confused with its previous incarnation's orphans. Steals are sound
//! because injected TL2 panics only fire *before* write-back begins
//! (see [`crate::chaos::FailSite::panic_safe`]); the orphaned stripe
//! still holds pre-transaction data, and restamping it with a fresh
//! clock version merely invalidates concurrent readers.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use ufotm_core::{Stop, TmBackend, TxScope};
use ufotm_machine::Addr;
use ufotm_tl2::Tl2Abort;

use crate::chaos::{self, FailSite, Liveness, NativeChaos, MAX_WORKERS};
use crate::guard::GuardStats;
use crate::heap::{CommitWindow, WordHeap};

/// Same stripe hash as the simulated TL2 (`Tl2Shared::lock_index`), so a
/// given address contends on the "same" stripe in both worlds.
const STRIPE_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Cache-line granularity of the stripes, matching the simulated
/// machine's 64-byte lines.
const LINE_BYTES: u64 = 64;

/// Burns roughly `cycles` iterations of a pause-hinted busy loop — the
/// native stand-in for the simulator's cycle-charged `work`.
pub fn spin_work(cycles: u64) {
    for _ in 0..cycles {
        std::hint::spin_loop();
    }
}

/// Shared native TL2 state: the word heap, the stripe lock table, the
/// global version clock, and a bump allocator. All atomics — shareable
/// by reference across OS threads. Also the *heap host* for the native
/// USTM and hybrid, which operate on the same words.
#[derive(Debug)]
pub struct NativeTl2 {
    heap: WordHeap,
    heap_words: u64,
    locks: Box<[AtomicU64]>,
    clock: AtomicU64,
    next_free: AtomicU64,
    mask: u64,
    chaos: NativeChaos,
    liveness: Liveness,
    orphan_steals: AtomicU64,
}

impl NativeTl2 {
    /// Creates a heap of `heap_words` words (all zero), a lock table of
    /// `lock_entries` stripes, and a bump allocator starting at word
    /// index `alloc_base_word` (everything below it is workload static
    /// data, addressed with the same [`Addr`] arithmetic as the
    /// simulator).
    ///
    /// When the mprotect guard is available the heap is dual-mapped so
    /// USTM commit windows can page-protect it (see
    /// [`crate::guard`]); otherwise plain boxed atomics.
    ///
    /// # Panics
    ///
    /// Panics if `lock_entries` is not a power of two or
    /// `alloc_base_word` exceeds the heap.
    #[must_use]
    pub fn new(heap_words: u64, lock_entries: u64, alloc_base_word: u64) -> Self {
        assert!(
            lock_entries.is_power_of_two(),
            "lock entries must be a power of two"
        );
        assert!(
            alloc_base_word <= heap_words,
            "alloc base past the end of the heap"
        );
        NativeTl2 {
            heap: WordHeap::new(heap_words),
            heap_words,
            locks: (0..lock_entries).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
            next_free: AtomicU64::new(alloc_base_word),
            mask: lock_entries - 1,
            chaos: NativeChaos::new(),
            liveness: Liveness::new(),
            orphan_steals: AtomicU64::new(0),
        }
    }

    /// The failpoint engine shared by every layer stacked on this heap
    /// (USTM, guard, hybrid). Disarmed by default; arm it with a
    /// [`crate::ChaosPlan`] to inject faults.
    #[must_use]
    pub fn chaos(&self) -> &NativeChaos {
        &self.chaos
    }

    /// The worker-liveness registry for this world.
    #[must_use]
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Orphaned stripe locks stolen from dead owners so far.
    #[must_use]
    pub fn orphan_steals(&self) -> u64 {
        self.orphan_steals.load(Ordering::Relaxed)
    }

    /// Attempts to steal stripe `s`, whose lock word was observed as
    /// `observed` (held). Succeeds only when the stamped owner is marked
    /// dead **and** the stamped epoch matches the owner's current epoch
    /// (so a revived tid's live locks are never stolen). The stripe is
    /// restamped with a freshly bumped clock version, invalidating any
    /// reader that sampled the orphaned word.
    fn try_reclaim(&self, s: usize, observed: u64) -> bool {
        if observed & 1 == 0 {
            return false;
        }
        let tid = ((observed >> 1) & 0xFF) as usize;
        let epoch = observed >> 9;
        if !self.liveness.is_dead(tid) || self.liveness.epoch(tid) != epoch {
            return false;
        }
        let wv = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
        let stolen = self.locks[s]
            .compare_exchange(observed, wv << 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        if stolen {
            self.orphan_steals.fetch_add(1, Ordering::Relaxed);
        }
        stolen
    }

    /// Walks the whole stripe table, stealing every lock orphaned by a
    /// dead owner. Runners call this after any worker death so stripes
    /// no live waiter happens to touch are still released. Returns the
    /// number of steals.
    pub fn sweep_orphans(&self) -> u64 {
        let mut stolen = 0;
        for s in 0..self.locks.len() {
            let w = self.locks[s].load(Ordering::Acquire);
            if w & 1 == 1 && self.try_reclaim(s, w) {
                stolen += 1;
            }
        }
        stolen
    }

    pub(crate) fn heap(&self) -> &WordHeap {
        &self.heap
    }

    pub(crate) fn word_index(&self, addr: Addr) -> usize {
        debug_assert_eq!(addr.0 % 8, 0, "unaligned word address {addr:?}");
        let w = (addr.0 / 8) as usize;
        assert!(
            (w as u64) < self.heap_words,
            "address {addr:?} past the native heap"
        );
        w
    }

    fn stripe_of(&self, addr: Addr) -> usize {
        let line = addr.0 / LINE_BYTES;
        ((line.wrapping_mul(STRIPE_MULT) >> 33) & self.mask) as usize
    }

    /// Plain (non-transactional) load, for setup and verification phases.
    ///
    /// Goes through the *public* heap view: if a USTM commit window is
    /// open over the page, this access faults into the guard handler and
    /// completes after the window — the native rendition of the paper's
    /// strong atomicity for plain reads.
    #[must_use]
    pub fn peek(&self, addr: Addr) -> u64 {
        self.heap.load(self.word_index(addr))
    }

    /// Plain (non-transactional) store. Racing a live *fast-path*
    /// transaction with `poke` has the usual weakly-atomic TL2
    /// semantics; against the USTM slow path it is guarded (faults
    /// during commit windows and lands after, never torn into the redo
    /// write-back).
    pub fn poke(&self, addr: Addr, value: u64) {
        self.heap.store(self.word_index(addr), value);
    }

    /// The global version clock's current value.
    #[must_use]
    pub fn clock_now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Host-side (non-transactional) allocation from the same bump
    /// allocator transactions use — for setup phases that build linked
    /// structures before threads start.
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion.
    #[must_use]
    pub fn host_alloc(&self, words: u64) -> Addr {
        self.alloc_words(words)
    }

    /// Guard observability counters for this heap (zero/unguarded when
    /// the mprotect guard is unavailable or disabled).
    #[must_use]
    pub fn guard_stats(&self) -> GuardStats {
        self.heap.guard_stats()
    }

    /// Test scaffolding: forcibly holds `addr`'s stripe lock as
    /// `owner`, returning the displaced lock word for
    /// [`NativeTl2::debug_restore_stripe`]. Deterministically provokes
    /// [`Tl2Abort::LockBusy`] in single-threaded protocol tests — never
    /// use it with live worker threads.
    #[doc(hidden)]
    pub fn debug_lock_stripe(&self, addr: Addr, owner: usize) -> u64 {
        let s = self.stripe_of(addr);
        self.locks[s].swap((owner as u64) << 1 | 1, Ordering::AcqRel)
    }

    /// Test scaffolding: undoes [`NativeTl2::debug_lock_stripe`].
    #[doc(hidden)]
    pub fn debug_restore_stripe(&self, addr: Addr, raw: u64) {
        let s = self.stripe_of(addr);
        self.locks[s].store(raw, Ordering::Release);
    }

    /// Test scaffolding: opens a strong-atomicity commit window over the
    /// pages holding `addrs`, exactly as a USTM commit does. The window
    /// closes when the returned handle drops. Guard tests use this to
    /// pin the window open while a racing thread pokes into it.
    #[doc(hidden)]
    pub fn debug_open_window(&self, addrs: &[Addr]) -> DebugWindow<'_> {
        DebugWindow {
            _win: self
                .heap
                .open_window(addrs.iter().map(|&a| self.word_index(a)), None),
        }
    }

    /// Test scaffolding: reads through the *shadow* view (never
    /// page-protected), so a guard test can observe heap state while a
    /// window is open without faulting itself.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_shadow_peek(&self, addr: Addr) -> u64 {
        self.heap
            .shadow_word(self.word_index(addr))
            .load(Ordering::Acquire)
    }

    /// Test scaffolding: byte offset into the heap of the most recent
    /// classified guard fault, if any.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_last_fault_offset(&self) -> Option<usize> {
        self.heap.last_fault_offset()
    }

    pub(crate) fn alloc_words(&self, words: u64) -> Addr {
        let w = self.next_free.fetch_add(words, Ordering::Relaxed);
        assert!(
            w + words <= self.heap_words,
            "native heap exhausted ({} words)",
            self.heap_words
        );
        Addr(w * 8)
    }
}

/// An open debug commit window (see [`NativeTl2::debug_open_window`]).
#[derive(Debug)]
pub struct DebugWindow<'a> {
    _win: CommitWindow<'a>,
}

/// Per-handle event counters, one [`Tl2Abort`] bucket each (the native
/// analogue of `Tl2Stats`, with aborts split by class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts from read-time validation.
    pub read_validation_aborts: u64,
    /// Aborts from a busy write lock at commit.
    pub lock_busy_aborts: u64,
    /// Aborts from commit-time read-set validation.
    pub commit_validation_aborts: u64,
}

impl NativeStats {
    /// Total aborts across classes.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.read_validation_aborts + self.lock_busy_aborts + self.commit_validation_aborts
    }

    /// Folds another handle's counters into this one. Exhaustive
    /// destructuring: adding a field without summing it here is a
    /// compile error.
    pub fn merge(&mut self, other: &NativeStats) {
        let NativeStats {
            begins,
            commits,
            read_validation_aborts,
            lock_busy_aborts,
            commit_validation_aborts,
        } = *other;
        self.begins += begins;
        self.commits += commits;
        self.read_validation_aborts += read_validation_aborts;
        self.lock_busy_aborts += lock_busy_aborts;
        self.commit_validation_aborts += commit_validation_aborts;
    }

    fn count_abort(&mut self, abort: Tl2Abort) {
        match abort {
            Tl2Abort::ReadValidation => self.read_validation_aborts += 1,
            Tl2Abort::LockBusy => self.lock_busy_aborts += 1,
            Tl2Abort::CommitValidation => self.commit_validation_aborts += 1,
        }
    }
}

/// A per-thread transaction handle over a shared [`NativeTl2`] — the
/// native mirror of `ufotm_tl2::Tl2Txn`, usable step by step
/// (begin/read/write/commit) by the cross-validation scripts or through
/// the retry loop in [`NativeThread`].
#[derive(Debug)]
pub struct NativeTxn<'a> {
    pub(crate) shared: &'a NativeTl2,
    pub(crate) tid: usize,
    rv: u64,
    reads: Vec<usize>,
    writes: BTreeMap<u64, u64>,
    active: bool,
    consecutive_aborts: u32,
    /// Event counters for this handle.
    pub stats: NativeStats,
}

impl<'a> NativeTxn<'a> {
    /// Creates a handle for thread `tid`. Revives `tid` in the shared
    /// liveness registry, advancing its ownership epoch so any lock
    /// words orphaned by a previous incarnation of this tid become
    /// stealable.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds [`MAX_WORKERS`].
    #[must_use]
    pub fn new(shared: &'a NativeTl2, tid: usize) -> Self {
        assert!(tid < MAX_WORKERS, "tid {tid} exceeds the liveness registry");
        shared.liveness.revive(tid);
        NativeTxn {
            shared,
            tid,
            rv: 0,
            reads: Vec::new(),
            writes: BTreeMap::new(),
            active: false,
            consecutive_aborts: 0,
            stats: NativeStats::default(),
        }
    }

    fn my_lock_word(&self) -> u64 {
        let epoch = self.shared.liveness.epoch(self.tid);
        ((epoch << 8) | self.tid as u64) << 1 | 1
    }

    /// Whether a transaction is active on this handle.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Begins a transaction: samples the global version clock.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin(&mut self) {
        assert!(!self.active, "nested native transactions are not supported");
        self.shared.liveness.beat(self.tid);
        self.rv = self.shared.clock.load(Ordering::Acquire);
        self.reads.clear();
        self.writes.clear();
        self.active = true;
        self.stats.begins += 1;
    }

    fn fail(&mut self, abort: Tl2Abort) {
        self.reads.clear();
        self.writes.clear();
        self.active = false;
        self.consecutive_aborts += 1;
        self.stats.count_abort(abort);
    }

    /// Abandons the current attempt (buffers dropped, abort counted).
    pub fn drop_attempt(&mut self) {
        debug_assert!(self.active);
        self.fail(Tl2Abort::ReadValidation);
    }

    /// Transactional read with pre/post lock sampling.
    ///
    /// # Errors
    ///
    /// [`Tl2Abort::ReadValidation`] — the attempt is already rolled
    /// back; retry the transaction.
    pub fn read(&mut self, addr: Addr) -> Result<u64, Tl2Abort> {
        debug_assert!(self.active);
        if self.shared.chaos.strike(self.tid, FailSite::Tl2Read) {
            self.fail(Tl2Abort::ReadValidation);
            return Err(Tl2Abort::ReadValidation);
        }
        if let Some(&v) = self.writes.get(&addr.0) {
            return Ok(v);
        }
        let w = self.shared.word_index(addr);
        let s = self.shared.stripe_of(addr);
        let pre = self.shared.locks[s].load(Ordering::Acquire);
        let value = self.shared.heap.word(w).load(Ordering::Acquire);
        let post = self.shared.locks[s].load(Ordering::Acquire);
        let unlocked = pre & 1 == 0 && post & 1 == 0;
        if unlocked && pre == post && post >> 1 <= self.rv {
            self.reads.push(s);
            Ok(value)
        } else {
            // A lock stamped by a dead owner would make this stripe
            // unreadable forever; steal it so the retry can proceed.
            if post & 1 == 1 {
                self.shared.try_reclaim(s, post);
            }
            self.fail(Tl2Abort::ReadValidation);
            Err(Tl2Abort::ReadValidation)
        }
    }

    /// Transactional (buffered) write.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` for symmetry with the simulated API.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), Tl2Abort> {
        debug_assert!(self.active);
        let _ = self.shared.word_index(addr); // bounds-check now, not at publish
        self.writes.insert(addr.0, value);
        Ok(())
    }

    /// Transactionally allocates `words` fresh words (bump allocator).
    /// An aborted attempt leaks its allocation — acceptable for
    /// benchmark-lifetime heaps, and verification only walks reachable
    /// cells.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` for symmetry.
    pub fn alloc(&mut self, words: u64) -> Result<Addr, Tl2Abort> {
        debug_assert!(self.active);
        Ok(self.shared.alloc_words(words))
    }

    /// Commits: lock write stripes → bump clock → validate read set →
    /// publish → release stamped with the new version.
    ///
    /// # Errors
    ///
    /// [`Tl2Abort::LockBusy`] or [`Tl2Abort::CommitValidation`]; the
    /// attempt is already rolled back (locks released, buffers dropped).
    pub fn commit(&mut self) -> Result<(), Tl2Abort> {
        debug_assert!(self.active);
        if self.writes.is_empty() {
            // Read-only fast path: every read already validated against rv.
            self.active = false;
            self.consecutive_aborts = 0;
            self.stats.commits += 1;
            return Ok(());
        }
        if self.shared.chaos.strike(self.tid, FailSite::Tl2Commit) {
            self.fail(Tl2Abort::CommitValidation);
            return Err(Tl2Abort::CommitValidation);
        }
        // Phase 1: acquire write locks in canonical (sorted) stripe order.
        let mut stripes: Vec<usize> = self
            .writes
            .keys()
            .map(|&a| self.shared.stripe_of(Addr(a)))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let mine = self.my_lock_word();
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(stripes.len());
        for &s in &stripes {
            let mut cur = self.shared.locks[s].load(Ordering::Relaxed);
            if cur & 1 == 1 && self.shared.try_reclaim(s, cur) {
                cur = self.shared.locks[s].load(Ordering::Relaxed);
            }
            let acquired = cur & 1 == 0
                && self.shared.locks[s]
                    .compare_exchange(cur, mine, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok();
            if !acquired {
                self.rollback_locks(&held);
                self.fail(Tl2Abort::LockBusy);
                return Err(Tl2Abort::LockBusy);
            }
            held.push((s, cur));
        }
        // Locks held, nothing published yet: a panic injected here
        // orphans the stripes, and a steal is still sound.
        if self.shared.chaos.strike(self.tid, FailSite::Tl2LockHeld) {
            self.rollback_locks(&held);
            self.fail(Tl2Abort::LockBusy);
            return Err(Tl2Abort::LockBusy);
        }
        // Phase 2: increment the global clock.
        let wv = self.shared.clock.fetch_add(1, Ordering::AcqRel) + 1;
        // Phase 3: validate the read set (like the simulated TL2, no
        // rv+1 == wv shortcut — identical classification on both sides).
        // A stripe this commit itself write-locked must be validated
        // against the version it *displaced* in phase 1: acquisition
        // overwrote the packed version word, but the simulated TL2's
        // struct lock keeps `version` visible while held, and a
        // concurrent commit may have bumped it past rv mid-body.
        for &s in &self.reads {
            let l = self.shared.locks[s].load(Ordering::Acquire);
            let bad = if l == mine {
                let displaced = held
                    .iter()
                    .find(|&&(hs, _)| hs == s)
                    .expect("self-held stripe missing from held set")
                    .1;
                displaced >> 1 > self.rv
            } else if l & 1 == 1 {
                // Still abort this attempt, but free a dead owner's
                // stripe so the retry does not hit the same wall.
                self.shared.try_reclaim(s, l);
                true
            } else {
                l >> 1 > self.rv
            };
            if bad {
                self.rollback_locks(&held);
                self.fail(Tl2Abort::CommitValidation);
                return Err(Tl2Abort::CommitValidation);
            }
        }
        // Phase 4: publish the write set. Delay-only failpoint: a panic
        // mid-publication would tear the heap with no redo record to
        // recover from ([`FailSite::Tl2WriteBack`] is not panic-safe).
        let _ = self.shared.chaos.strike(self.tid, FailSite::Tl2WriteBack);
        for (&a, &v) in &self.writes {
            self.shared
                .heap
                .word((a / 8) as usize)
                .store(v, Ordering::Release);
        }
        // Phase 5: release locks stamped with the new version.
        for &(s, _) in &held {
            self.shared.locks[s].store(wv << 1, Ordering::Release);
        }
        self.writes.clear();
        self.reads.clear();
        self.active = false;
        self.consecutive_aborts = 0;
        self.stats.commits += 1;
        Ok(())
    }

    fn rollback_locks(&self, held: &[(usize, u64)]) {
        for &(s, old) in held {
            self.shared.locks[s].store(old, Ordering::Release);
        }
    }

    pub(crate) fn backoff(&self) {
        // Exponential pause backoff, capped like the simulated TL2's
        // `backoff_base << min(aborts, 6)` schedule.
        spin_work(16u64 << self.consecutive_aborts.min(6));
    }

    /// Runs `body` as a transaction, retrying with exponential backoff
    /// until commit, and returns its result.
    pub fn run<R>(&mut self, mut body: impl FnMut(&mut NativeTxn<'a>) -> Result<R, Tl2Abort>) -> R {
        loop {
            self.begin();
            if let Ok(r) = body(self) {
                if self.commit().is_ok() {
                    return r;
                }
            } else if self.active {
                // A body may surface its own error while the attempt is
                // still live (e.g. a fabricated abort): drop it cleanly.
                self.drop_attempt();
            }
            self.backoff();
        }
    }
}

impl TxScope for NativeTxn<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
        NativeTxn::read(self, addr).map_err(|_| Stop)
    }

    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
        NativeTxn::write(self, addr, value).map_err(|_| Stop)
    }

    fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
        NativeTxn::alloc(self, words).map_err(|_| Stop)
    }

    fn work(&mut self, cycles: u64) -> Result<(), Stop> {
        spin_work(cycles);
        Ok(())
    }
}

/// One OS thread's backend handle: a [`NativeTxn`] plus the shared phase
/// barrier, implementing [`TmBackend`] so backend-generic workloads run
/// on real threads unchanged.
#[derive(Debug)]
pub struct NativeThread<'a> {
    txn: NativeTxn<'a>,
    barrier: &'a Barrier,
    threads: usize,
}

impl<'a> NativeThread<'a> {
    /// Creates the handle for thread `tid` of `threads`.
    #[must_use]
    pub fn new(shared: &'a NativeTl2, barrier: &'a Barrier, tid: usize, threads: usize) -> Self {
        NativeThread {
            txn: NativeTxn::new(shared, tid),
            barrier,
            threads,
        }
    }

    /// This handle's event counters.
    #[must_use]
    pub fn stats(&self) -> NativeStats {
        self.txn.stats
    }
}

impl TmBackend for NativeThread<'_> {
    fn transaction<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        loop {
            self.txn.begin();
            match body(&mut self.txn) {
                Ok(r) => {
                    if self.txn.commit().is_ok() {
                        return r;
                    }
                }
                Err(Stop) => {
                    if self.txn.is_active() {
                        self.txn.drop_attempt();
                    }
                }
            }
            self.txn.backoff();
        }
    }

    fn plain_load(&mut self, addr: Addr) -> u64 {
        self.txn.shared.peek(addr)
    }

    fn plain_store(&mut self, addr: Addr, value: u64) {
        self.txn.shared.poke(addr, value);
    }

    fn compute(&mut self, cycles: u64) {
        spin_work(cycles);
    }

    fn barrier(&mut self) {
        self.barrier.wait();
    }

    fn tid(&self) -> usize {
        self.txn.tid
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn orphan_reclaims(&mut self) -> u64 {
        self.txn.shared.orphan_steals()
    }
}

/// One worker's join outcome from [`run_threads_collect`]: its per-thread
/// counters survive even when the body panicked, so torture tests can
/// assert that the *surviving* threads still committed.
#[derive(Clone, Debug)]
pub struct NativeOutcome<R> {
    /// Worker tid (outcomes are returned in tid order).
    pub tid: usize,
    /// The worker's event counters at join time.
    pub stats: NativeStats,
    /// The body's result, or the rendered panic payload.
    pub result: Result<R, String>,
}

/// Runs `body` on `threads` real OS threads over `shared`, each with its
/// own [`NativeThread`] handle and a common phase barrier, and collects
/// **every** worker's outcome — a panicked worker is marked dead in the
/// liveness registry (in-thread, before it exits, so survivors start
/// reclaiming its locks while still running), its panic payload is
/// rendered into the outcome, and its counters survive.
///
/// After all workers join, if any died, the stripe table is swept for
/// remaining orphans.
///
/// Bodies that may be killed by panic injection must not use the phase
/// barrier: a dead worker never arrives and the survivors would wait
/// forever.
pub fn run_threads_collect<R: Send>(
    shared: &NativeTl2,
    threads: usize,
    body: impl Fn(&mut NativeThread<'_>) -> R + Sync,
) -> Vec<NativeOutcome<R>> {
    assert!(threads >= 1, "at least one thread");
    let barrier = Barrier::new(threads);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let barrier = &barrier;
                let body = &body;
                scope.spawn(move || {
                    let mut th = NativeThread::new(shared, barrier, tid, threads);
                    let r = catch_unwind(AssertUnwindSafe(|| body(&mut th)));
                    let stats = th.stats();
                    let result = r.map_err(|payload| {
                        shared.liveness.mark_dead(tid);
                        chaos::panic_message(payload.as_ref())
                    });
                    NativeOutcome { tid, stats, result }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("native worker wrapper itself panicked"))
            .collect::<Vec<_>>()
    });
    if outcomes.iter().any(|o| o.result.is_err()) {
        shared.sweep_orphans();
    }
    outcomes
}

/// Runs `body` on `threads` real OS threads over `shared`, each with its
/// own [`NativeThread`] handle and a common phase barrier. Returns the
/// merged stats and each thread's result (in tid order).
///
/// # Panics
///
/// Panics if any worker panicked, naming every dead tid with its payload
/// and per-thread counters. Use [`run_threads_collect`] to observe the
/// survivors instead.
pub fn run_threads<R: Send>(
    shared: &NativeTl2,
    threads: usize,
    body: impl Fn(&mut NativeThread<'_>) -> R + Sync,
) -> (NativeStats, Vec<R>) {
    let outcomes = run_threads_collect(shared, threads, body);
    let mut stats = NativeStats::default();
    let mut results = Vec::with_capacity(threads);
    let mut deaths = Vec::new();
    for o in outcomes {
        stats.merge(&o.stats);
        match o.result {
            Ok(r) => results.push(r),
            Err(msg) => deaths.push(format!("tid {}: {msg} (stats {:?})", o.tid, o.stats)),
        }
    }
    assert!(
        deaths.is_empty(),
        "native worker thread(s) panicked: {}",
        deaths.join("; ")
    );
    (stats, results)
}
