//! Seeded failpoint engine and worker-liveness registry for the native
//! substrate.
//!
//! The simulator earned its robustness through a deterministic chaos engine;
//! real threads cannot be single-stepped, so this module takes the next-best
//! approach: **named injection points** threaded through the TL2, USTM, guard,
//! and hybrid layers, each of which may — driven by a per-run seed — force an
//! abort, stall the caller, or panic the worker outright. Torture tests sweep
//! seeds and failpoint mixes; a failing cell echoes its seed so the schedule
//! replays.
//!
//! The module also owns the [`Liveness`] registry: a per-worker dead flag,
//! heartbeat, and ownership epoch. Runners mark a worker dead the moment its
//! body unwinds (`catch_unwind`), which makes death *precise* — survivors only
//! reclaim locks whose stamped owner has actually terminated, never one that
//! is merely slow. Epochs guard against tid reuse: a stolen lock stamped with
//! a stale epoch is never confused with the reincarnated worker's fresh locks.

use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Maximum worker threads tracked by the liveness registry (tids `0..256`).
pub const MAX_WORKERS: usize = 256;

/// Number of rng/hit streams: one per possible tid plus one anonymous stream
/// for injection points that fire outside any worker context.
const STREAMS: usize = MAX_WORKERS + 1;

/// Stream index used by [`NativeChaos::strike_anon`].
const ANON_STREAM: usize = MAX_WORKERS;

/// Named failpoint sites threaded through the native stack.
///
/// Each site records whether a deliberate worker panic there is *sound to
/// recover from* (`panic_safe`) and whether a forced abort is meaningful
/// (`abort_capable`). The asymmetry is deliberate: a TL2 committer that dies
/// mid-publication has already torn the heap with no redo record to finish
/// from, so `Tl2WriteBack` is delay-only; a USTM committer publishes its
/// sealed redo record *before* write-back, so panics inside the commit window
/// are recoverable by helper-completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailSite {
    /// TL2 transactional read (pre/post lock sampling).
    Tl2Read,
    /// TL2 commit, before any stripe lock is acquired.
    Tl2Commit,
    /// TL2 commit, stripe locks held, read set not yet validated.
    Tl2LockHeld,
    /// TL2 commit, mid write-back. Delay-only: a panic here would tear.
    Tl2WriteBack,
    /// USTM transactional read.
    UstmRead,
    /// USTM commit, ownerships acquired, not yet sealed.
    UstmCommit,
    /// USTM commit, sealed (`COMMITTING`), inside the guard window.
    UstmSealed,
    /// Guard commit window, right after protection was raised.
    GuardWindow,
    /// Hybrid PhTM gate entry (anonymous stream; delay-only).
    HybridGate,
}

/// Number of distinct failpoint sites.
pub const SITES: usize = 9;

impl FailSite {
    /// All sites, in index order.
    pub const ALL: [FailSite; SITES] = [
        FailSite::Tl2Read,
        FailSite::Tl2Commit,
        FailSite::Tl2LockHeld,
        FailSite::Tl2WriteBack,
        FailSite::UstmRead,
        FailSite::UstmCommit,
        FailSite::UstmSealed,
        FailSite::GuardWindow,
        FailSite::HybridGate,
    ];

    /// Dense index of this site.
    pub fn index(self) -> usize {
        match self {
            FailSite::Tl2Read => 0,
            FailSite::Tl2Commit => 1,
            FailSite::Tl2LockHeld => 2,
            FailSite::Tl2WriteBack => 3,
            FailSite::UstmRead => 4,
            FailSite::UstmCommit => 5,
            FailSite::UstmSealed => 6,
            FailSite::GuardWindow => 7,
            FailSite::HybridGate => 8,
        }
    }

    /// Short stable name, echoed in panic payloads and reports.
    pub fn name(self) -> &'static str {
        match self {
            FailSite::Tl2Read => "tl2-read",
            FailSite::Tl2Commit => "tl2-commit",
            FailSite::Tl2LockHeld => "tl2-lock-held",
            FailSite::Tl2WriteBack => "tl2-write-back",
            FailSite::UstmRead => "ustm-read",
            FailSite::UstmCommit => "ustm-commit",
            FailSite::UstmSealed => "ustm-sealed",
            FailSite::GuardWindow => "guard-window",
            FailSite::HybridGate => "hybrid-gate",
        }
    }

    /// Whether a deliberate worker panic at this site is recoverable by the
    /// reclamation machinery (steal for TL2 pre-publication sites,
    /// helper-completion for sealed USTM records).
    pub fn panic_safe(self) -> bool {
        !matches!(self, FailSite::Tl2WriteBack | FailSite::HybridGate)
    }

    /// Whether a forced abort at this site is meaningful (the transaction can
    /// still retry cleanly).
    pub fn abort_capable(self) -> bool {
        matches!(
            self,
            FailSite::Tl2Read
                | FailSite::Tl2Commit
                | FailSite::Tl2LockHeld
                | FailSite::UstmRead
                | FailSite::UstmCommit
        )
    }
}

/// A one-shot deliberate panic: kill the worker whose `tid` matches (or any
/// worker if `None`) the `hit`-th time it reaches `site` (1-based).
#[derive(Clone, Copy, Debug)]
pub struct PanicAt {
    /// Injection site to die at.
    pub site: FailSite,
    /// Victim tid, or `None` for whichever worker arrives at the hit count.
    pub tid: Option<usize>,
    /// 1-based hit count on that site's per-stream counter.
    pub hit: u64,
}

/// A declarative, seed-driven chaos schedule for one run.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Per-run seed; echo it on failure to replay the schedule.
    pub seed: u64,
    /// Forced-abort probability per site, in per-mil (`0..=1000`).
    pub abort_pmil: [u16; SITES],
    /// Delay probability per site, in per-mil (`0..=1000`).
    pub delay_pmil: [u16; SITES],
    /// Spin iterations burned when a delay fires.
    pub delay_spins: u32,
    /// One-shot deliberate worker panics.
    pub panics: Vec<PanicAt>,
}

impl ChaosPlan {
    /// No injected faults at all (rates zero, no panics).
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            abort_pmil: [0; SITES],
            delay_pmil: [0; SITES],
            delay_spins: 0,
            panics: Vec::new(),
        }
    }

    /// Moderate aborts and delays on every capable site.
    pub fn mixed(seed: u64) -> Self {
        let mut plan = ChaosPlan::quiet(seed);
        for site in FailSite::ALL {
            if site.abort_capable() {
                plan.abort_pmil[site.index()] = 60;
            }
            plan.delay_pmil[site.index()] = 40;
        }
        plan.delay_spins = 400;
        plan
    }

    /// Heavy forced aborts, no delays.
    pub fn abort_storm(seed: u64) -> Self {
        let mut plan = ChaosPlan::quiet(seed);
        for site in FailSite::ALL {
            if site.abort_capable() {
                plan.abort_pmil[site.index()] = 350;
            }
        }
        plan
    }

    /// Heavy delays everywhere, no forced aborts.
    pub fn stall_storm(seed: u64) -> Self {
        let mut plan = ChaosPlan::quiet(seed);
        for site in FailSite::ALL {
            plan.delay_pmil[site.index()] = 250;
        }
        plan.delay_spins = 2_000;
        plan
    }

    /// Add a one-shot worker panic to the schedule.
    pub fn with_panic(mut self, site: FailSite, tid: Option<usize>, hit: u64) -> Self {
        self.panics.push(PanicAt { site, tid, hit });
        self
    }

    /// Check the plan for unsound or out-of-range entries.
    ///
    /// Rejects probabilities above 1000 per-mil, forced aborts on sites that
    /// cannot abort, panics at sites that are not panic-safe, zero hit counts,
    /// and out-of-range victim tids.
    pub fn validate(&self) -> Result<(), String> {
        for site in FailSite::ALL {
            let i = site.index();
            if self.abort_pmil[i] > 1000 || self.delay_pmil[i] > 1000 {
                return Err(format!("{}: per-mil rate above 1000", site.name()));
            }
            if self.abort_pmil[i] > 0 && !site.abort_capable() {
                return Err(format!("{}: site cannot force aborts", site.name()));
            }
        }
        if self.panics.len() > PANIC_SLOTS {
            return Err(format!("more than {PANIC_SLOTS} one-shot panics"));
        }
        for p in &self.panics {
            if !p.site.panic_safe() {
                return Err(format!("{}: panic at this site would tear", p.site.name()));
            }
            if p.hit == 0 || p.hit >= 1 << 40 {
                return Err(format!("{}: hit count out of range", p.site.name()));
            }
            if let Some(tid) = p.tid {
                if tid >= MAX_WORKERS {
                    return Err(format!("{}: tid {tid} out of range", p.site.name()));
                }
            }
        }
        Ok(())
    }
}

/// Payload of a deliberately injected worker panic. Runners downcast this to
/// tell injected deaths from genuine bugs when rendering join outcomes.
#[derive(Clone, Copy, Debug)]
pub struct InjectedPanic {
    /// Name of the failpoint site that fired.
    pub site: &'static str,
    /// Tid of the worker that was killed.
    pub tid: usize,
}

/// Maximum number of one-shot panic points per plan.
const PANIC_SLOTS: usize = 16;

/// Sentinel tid selector meaning "any worker".
const TID_ANY: u64 = 0x3FF;

/// Outcome of [`NativeChaos::strike`] as seen by the caller: `true` means the
/// transaction must treat the strike as a forced abort.
///
/// Shared, lock-free failpoint engine. One instance is owned by the TL2 world
/// and shared (by reference) with the USTM, guard, and hybrid layers.
///
/// `strike` costs a single relaxed load while disarmed, so leaving the engine
/// wired into the hot paths does not move the bench floors.
pub struct NativeChaos {
    armed: AtomicBool,
    seed: AtomicU64,
    abort_pmil: [AtomicU32; SITES],
    delay_pmil: [AtomicU32; SITES],
    delay_spins: AtomicU32,
    /// Packed one-shot panic points: bit 63 live flag, bits 50..54 site,
    /// bits 40..50 tid selector (`TID_ANY` = any), bits 0..40 hit count.
    panic_slots: [AtomicU64; PANIC_SLOTS],
    /// Per-stream xorshift state (one stream per tid plus one anonymous).
    rng: Box<[AtomicU64]>,
    /// Per-(site, stream) hit counters; panic points trigger on exact counts.
    hits: Box<[AtomicU64]>,
    forced_aborts: AtomicU64,
    delays: AtomicU64,
    panics_fired: AtomicU64,
}

impl Default for NativeChaos {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeChaos {
    /// New, disarmed engine. All strikes are no-ops until [`Self::arm`].
    pub fn new() -> Self {
        NativeChaos {
            armed: AtomicBool::new(false),
            seed: AtomicU64::new(0),
            abort_pmil: std::array::from_fn(|_| AtomicU32::new(0)),
            delay_pmil: std::array::from_fn(|_| AtomicU32::new(0)),
            delay_spins: AtomicU32::new(0),
            panic_slots: std::array::from_fn(|_| AtomicU64::new(0)),
            rng: (0..STREAMS).map(|_| AtomicU64::new(1)).collect(),
            hits: (0..SITES * STREAMS).map(|_| AtomicU64::new(0)).collect(),
            forced_aborts: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            panics_fired: AtomicU64::new(0),
        }
    }

    /// Install `plan` and start striking. Panics if the plan fails
    /// [`ChaosPlan::validate`].
    pub fn arm(&self, plan: &ChaosPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid chaos plan: {e}");
        }
        self.seed.store(plan.seed, Ordering::Relaxed);
        for i in 0..SITES {
            self.abort_pmil[i].store(u32::from(plan.abort_pmil[i]), Ordering::Relaxed);
            self.delay_pmil[i].store(u32::from(plan.delay_pmil[i]), Ordering::Relaxed);
        }
        self.delay_spins.store(plan.delay_spins, Ordering::Relaxed);
        for (i, slot) in self.panic_slots.iter().enumerate() {
            let word = match plan.panics.get(i) {
                Some(p) => {
                    let tidsel = p.tid.map_or(TID_ANY, |t| t as u64);
                    (1 << 63) | ((p.site.index() as u64) << 50) | (tidsel << 40) | p.hit
                }
                None => 0,
            };
            slot.store(word, Ordering::Relaxed);
        }
        // Seed every stream from the plan seed so schedules replay.
        for (s, cell) in self.rng.iter().enumerate() {
            let mut z = plan
                .seed
                .wrapping_add((s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // splitmix64 scramble so nearby seeds diverge immediately.
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            cell.store((z ^ (z >> 31)) | 1, Ordering::Relaxed);
        }
        for h in self.hits.iter() {
            h.store(0, Ordering::Relaxed);
        }
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop striking. Counters are preserved for [`Self::report`].
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Hit a failpoint from worker `tid`. Returns `true` if the caller must
    /// abort the current transaction; spins in place when a delay fires;
    /// panics the calling thread (payload [`InjectedPanic`]) when a one-shot
    /// panic point matches.
    pub fn strike(&self, tid: usize, site: FailSite) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        debug_assert!(tid < MAX_WORKERS);
        self.strike_stream(tid.min(MAX_WORKERS - 1), tid, site)
    }

    /// Hit a failpoint from outside any worker context (single anonymous
    /// stream; panic points never match it).
    pub fn strike_anon(&self, site: FailSite) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.strike_stream(ANON_STREAM, usize::MAX, site)
    }

    fn strike_stream(&self, stream: usize, tid: usize, site: FailSite) -> bool {
        let si = site.index();
        let hit = self.hits[si * STREAMS + stream].fetch_add(1, Ordering::Relaxed) + 1;

        // One-shot panic points fire on exact hit counts, so a replayed seed
        // kills the same worker at the same dynamic instant.
        if tid != usize::MAX {
            for slot in &self.panic_slots {
                let word = slot.load(Ordering::Relaxed);
                if word & (1 << 63) == 0 {
                    continue;
                }
                let s_site = ((word >> 50) & 0xF) as usize;
                let s_tid = (word >> 40) & TID_ANY;
                let s_hit = word & ((1 << 40) - 1);
                if s_site == si
                    && (s_tid == TID_ANY || s_tid == tid as u64)
                    && s_hit == hit
                    && slot
                        .compare_exchange(word, 0, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok()
                {
                    self.panics_fired.fetch_add(1, Ordering::Relaxed);
                    panic_any(InjectedPanic {
                        site: site.name(),
                        tid,
                    });
                }
            }
        }

        let delay_rate = self.delay_pmil[si].load(Ordering::Relaxed);
        let abort_rate = self.abort_pmil[si].load(Ordering::Relaxed);
        if delay_rate == 0 && abort_rate == 0 {
            return false;
        }
        let draw = self.next_rand(stream) % 1000;
        if (draw as u32) < delay_rate {
            self.delays.fetch_add(1, Ordering::Relaxed);
            let spins = self.delay_spins.load(Ordering::Relaxed);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        if (draw as u32) < abort_rate {
            self.forced_aborts.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    fn next_rand(&self, stream: usize) -> u64 {
        let cell = &self.rng[stream];
        let mut x = cell.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.store(x, Ordering::Relaxed);
        x
    }

    /// Snapshot of what the engine actually did this run.
    pub fn report(&self) -> ChaosReport {
        let mut site_hits = [0u64; SITES];
        for (si, out) in site_hits.iter_mut().enumerate() {
            for s in 0..STREAMS {
                *out += self.hits[si * STREAMS + s].load(Ordering::Relaxed);
            }
        }
        ChaosReport {
            seed: self.seed.load(Ordering::Relaxed),
            forced_aborts: self.forced_aborts.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            panics_fired: self.panics_fired.load(Ordering::Relaxed),
            site_hits,
        }
    }
}

impl std::fmt::Debug for NativeChaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeChaos")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// What the chaos engine actually injected during a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosReport {
    /// Seed the plan was armed with; echo on failure to replay.
    pub seed: u64,
    /// Forced aborts returned to callers.
    pub forced_aborts: u64,
    /// Delay strikes that spun in place.
    pub delays: u64,
    /// One-shot worker panics that fired.
    pub panics_fired: u64,
    /// Total strikes observed per site (all streams).
    pub site_hits: [u64; SITES],
}

/// Per-worker liveness registry: dead flags, heartbeats, and ownership epochs.
///
/// Death is *precise*: only a runner that has observed the worker's body
/// unwind calls [`Liveness::mark_dead`], so reclamation never steals from a
/// stalled-but-alive owner. Epochs are stamped into TL2 lock words (and
/// checked before a steal) so a reused tid can never be confused with the
/// orphaned locks of its previous incarnation.
pub struct Liveness {
    dead: Box<[AtomicU64]>,
    beats: Box<[AtomicU64]>,
    epochs: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Liveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dead: Vec<usize> = (0..MAX_WORKERS).filter(|&t| self.is_dead(t)).collect();
        f.debug_struct("Liveness")
            .field("dead", &dead)
            .finish_non_exhaustive()
    }
}

impl Default for Liveness {
    fn default() -> Self {
        Self::new()
    }
}

impl Liveness {
    /// Fresh registry: every tid alive, epoch zero.
    pub fn new() -> Self {
        Liveness {
            dead: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
            beats: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
            epochs: (0..MAX_WORKERS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Declare `tid` alive again and advance its epoch, invalidating any lock
    /// words stamped by a previous incarnation. Called when a worker handle is
    /// created. Returns the new epoch.
    pub fn revive(&self, tid: usize) -> u64 {
        self.dead[tid].store(0, Ordering::SeqCst);
        self.epochs[tid].fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Declare `tid` dead. Only call after its body has actually unwound.
    pub fn mark_dead(&self, tid: usize) {
        self.dead[tid].store(1, Ordering::SeqCst);
    }

    /// Whether `tid` has been marked dead.
    pub fn is_dead(&self, tid: usize) -> bool {
        self.dead[tid].load(Ordering::SeqCst) != 0
    }

    /// Record a heartbeat for `tid` (diagnostics only; never used to infer
    /// death).
    pub fn beat(&self, tid: usize) {
        self.beats[tid].fetch_add(1, Ordering::Relaxed);
    }

    /// Heartbeats recorded for `tid`.
    pub fn beats(&self, tid: usize) -> u64 {
        self.beats[tid].load(Ordering::Relaxed)
    }

    /// Current ownership epoch of `tid`.
    pub fn epoch(&self, tid: usize) -> u64 {
        self.epochs[tid].load(Ordering::SeqCst)
    }
}

/// Lock a mutex, recovering from poison instead of cascading the panic.
///
/// Returns the guard and whether poison was recovered, so callers can count
/// recoveries and trigger a structural audit of the protected data.
pub fn lock_recover<T>(m: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match m.lock() {
        Ok(g) => (g, false),
        Err(poison) => (PoisonError::into_inner(poison), true),
    }
}

/// Render a panic payload for join-outcome reports, recognising
/// [`InjectedPanic`] so torture logs distinguish scheduled deaths from bugs.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(inj) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic at {} (tid {})", inj.site, inj.tid)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_engine_never_strikes() {
        let chaos = NativeChaos::new();
        for site in FailSite::ALL {
            assert!(!chaos.strike(0, site));
            assert!(!chaos.strike_anon(site));
        }
        let r = chaos.report();
        assert_eq!(r.forced_aborts + r.delays + r.panics_fired, 0);
    }

    #[test]
    fn abort_storm_forces_aborts_deterministically() {
        let chaos = NativeChaos::new();
        chaos.arm(&ChaosPlan::abort_storm(42));
        let mut pattern_a = Vec::new();
        for _ in 0..256 {
            pattern_a.push(chaos.strike(3, FailSite::Tl2Commit));
        }
        assert!(
            pattern_a.iter().any(|&b| b),
            "350 pmil never fired in 256 draws"
        );
        // Re-arming with the same seed replays the identical decision stream.
        chaos.arm(&ChaosPlan::abort_storm(42));
        let pattern_b: Vec<bool> = (0..256)
            .map(|_| chaos.strike(3, FailSite::Tl2Commit))
            .collect();
        assert_eq!(pattern_a, pattern_b);
    }

    #[test]
    fn one_shot_panic_fires_exactly_once_at_hit() {
        let chaos = NativeChaos::new();
        chaos.arm(&ChaosPlan::quiet(7).with_panic(FailSite::UstmCommit, Some(2), 3));
        assert!(!chaos.strike(2, FailSite::UstmCommit));
        assert!(!chaos.strike(2, FailSite::UstmCommit));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaos.strike(2, FailSite::UstmCommit);
        }))
        .unwrap_err();
        let inj = err
            .downcast_ref::<InjectedPanic>()
            .expect("InjectedPanic payload");
        assert_eq!(inj.site, "ustm-commit");
        assert_eq!(inj.tid, 2);
        // One-shot: the consumed slot never fires again.
        assert!(!chaos.strike(2, FailSite::UstmCommit));
        assert_eq!(chaos.report().panics_fired, 1);
    }

    #[test]
    fn plan_validation_rejects_unsound_entries() {
        let mut p = ChaosPlan::quiet(1);
        p.abort_pmil[FailSite::GuardWindow.index()] = 10;
        assert!(p.validate().is_err(), "guard window cannot force aborts");
        let p = ChaosPlan::quiet(1).with_panic(FailSite::Tl2WriteBack, None, 1);
        assert!(p.validate().is_err(), "write-back panic would tear");
        let mut p = ChaosPlan::quiet(1);
        p.delay_pmil[0] = 1001;
        assert!(p.validate().is_err(), "rate above 1000 pmil");
        assert!(ChaosPlan::mixed(9).validate().is_ok());
        assert!(ChaosPlan::stall_storm(9).validate().is_ok());
    }

    #[test]
    fn liveness_epochs_advance_on_revive() {
        let live = Liveness::new();
        assert!(!live.is_dead(5));
        let e1 = live.revive(5);
        live.mark_dead(5);
        assert!(live.is_dead(5));
        let e2 = live.revive(5);
        assert!(!live.is_dead(5));
        assert!(e2 > e1);
        assert_eq!(live.epoch(5), e2);
    }

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(17u64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        let (g, recovered) = lock_recover(&m);
        assert!(recovered);
        assert_eq!(*g, 17);
    }
}
