//! # `ufotm-tl2` — the TL2 baseline STM
//!
//! The paper compares USTM against TL2 (Dice, Shalev, Shavit — DISC 2006)
//! "to link our performance with previously published results". This crate
//! implements TL2 over the same simulated machine: a lazy-versioning,
//! commit-time-locking STM with a **global version clock** and a hashed
//! table of per-line versioned write locks.
//!
//! * `begin` samples the global clock into a read version `rv`.
//! * Reads post-validate: lock word sampled before and after the data load
//!   must be unlocked and no newer than `rv`.
//! * Writes are buffered locally (lazy versioning).
//! * Commit locks the write set, increments the global clock, re-validates
//!   the read set, publishes the buffered writes, and releases the locks
//!   stamped with the new version.
//!
//! TL2 is *weakly atomic*: nothing protects transactional data from plain
//! code, which is exactly the contrast the paper draws with USTM + UFO.
//! The global clock and the lock table live at simulated addresses, so
//! clock contention and lock-table cache traffic are modelled, not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ufotm_machine::{AccessResult, Addr, LineAddr};
use ufotm_sim::Ctx;

/// Unwraps machine ops issued from TL2 runtime code (plain accesses with
/// UFO disabled cannot fault).
fn mop<T>(r: AccessResult<T>) -> T {
    r.expect("machine op cannot fault in TL2 runtime context")
}

/// Gives TL2 access to its shared state inside a larger world type.
pub trait HasTl2 {
    /// The embedded TL2 shared state.
    fn tl2(&mut self) -> &mut Tl2Shared;
}

impl HasTl2 for Tl2Shared {
    fn tl2(&mut self) -> &mut Tl2Shared {
        self
    }
}

/// Why a TL2 transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tl2Abort {
    /// A read observed a locked or too-new lock word.
    ReadValidation,
    /// Commit could not acquire a write lock.
    LockBusy,
    /// Commit-time read-set validation failed.
    CommitValidation,
}

impl std::fmt::Display for Tl2Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tl2Abort::ReadValidation => f.write_str("read validation failed"),
            Tl2Abort::LockBusy => f.write_str("write lock busy at commit"),
            Tl2Abort::CommitValidation => f.write_str("commit validation failed"),
        }
    }
}

impl std::error::Error for Tl2Abort {}

/// One versioned write lock.
#[derive(Clone, Copy, Debug, Default)]
struct LockWord {
    version: u64,
    holder: Option<usize>,
}

/// TL2 tuning knobs (fixed per-operation costs beyond memory traffic).
#[derive(Clone, Debug)]
pub struct Tl2Config {
    /// Fixed cost of `begin` (clock sample bookkeeping).
    pub begin_cost: u64,
    /// Fixed cost of a read barrier (two lock samples are charged as
    /// simulated loads already; this covers the compare/branch work).
    pub read_cost: u64,
    /// Fixed cost of buffering a write.
    pub write_cost: u64,
    /// Fixed per-entry cost at commit (lock CAS, validation compare).
    pub commit_entry_cost: u64,
    /// Base backoff after an abort (doubles per consecutive abort).
    pub backoff_base: u64,
}

impl Default for Tl2Config {
    fn default() -> Self {
        Tl2Config {
            begin_cost: 20,
            read_cost: 4,
            write_cost: 6,
            commit_entry_cost: 10,
            backoff_base: 100,
        }
    }
}

/// Aggregate TL2 event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tl2Stats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts by validation failure or lock contention.
    pub aborts: u64,
}

/// Shared TL2 state: the global version clock and the lock table.
#[derive(Clone, Debug)]
pub struct Tl2Shared {
    /// Tuning knobs.
    pub config: Tl2Config,
    /// Event counters.
    pub stats: Tl2Stats,
    clock: u64,
    clock_addr: Addr,
    locks: Vec<LockWord>,
    lock_base: Addr,
    mask: u64,
}

impl Tl2Shared {
    /// Words of simulated memory TL2 needs for a lock table of
    /// `lock_entries` entries (plus one line for the global clock).
    #[must_use]
    pub fn required_words(lock_entries: u64) -> u64 {
        lock_entries + 8
    }

    /// Creates the shared state with its metadata at simulated address
    /// `base` (reserve [`Tl2Shared::required_words`]` * 8` bytes).
    ///
    /// # Panics
    ///
    /// Panics if `lock_entries` is not a power of two.
    #[must_use]
    pub fn new(config: Tl2Config, base: Addr, lock_entries: u64) -> Self {
        assert!(
            lock_entries.is_power_of_two(),
            "lock entries must be a power of two"
        );
        Tl2Shared {
            config,
            stats: Tl2Stats::default(),
            clock: 0,
            clock_addr: base,
            locks: vec![LockWord::default(); lock_entries as usize],
            lock_base: Addr(base.0 + 64),
            mask: lock_entries - 1,
        }
    }

    fn lock_index(&self, line: LineAddr) -> usize {
        ((line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) & self.mask) as usize
    }

    fn lock_addr(&self, index: usize) -> Addr {
        Addr(self.lock_base.0 + index as u64 * 8)
    }
}

/// A per-thread TL2 transaction handle. Use [`Tl2Txn::run`] for the retry
/// loop with exponential backoff.
#[derive(Debug)]
pub struct Tl2Txn {
    cpu: usize,
    rv: u64,
    reads: Vec<usize>,
    // BTreeMap, not HashMap: the phase-4 write-back issues one
    // cycle-charged store per word, so publication order is
    // timing-visible — it must not depend on hash state.
    writes: BTreeMap<u64, u64>,
    write_lines: Vec<LineAddr>,
    active: bool,
    consecutive_aborts: u32,
}

impl Tl2Txn {
    /// Creates a handle for the thread on `cpu`.
    #[must_use]
    pub fn new(cpu: usize) -> Self {
        Tl2Txn {
            cpu,
            rv: 0,
            reads: Vec::new(),
            writes: BTreeMap::new(),
            write_lines: Vec::new(),
            active: false,
            consecutive_aborts: 0,
        }
    }

    /// Whether a transaction is active on this handle.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Abandons the current attempt without committing (used when the body
    /// requests an operation TL2 cannot honour, e.g. transactional
    /// waiting): buffers are dropped and an abort is counted.
    pub fn drop_attempt<U: HasTl2>(&mut self, ctx: &mut Ctx<U>) {
        debug_assert!(self.active);
        self.fail(ctx, Tl2Abort::ReadValidation);
    }

    /// Begins a transaction: samples the global version clock.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin<U: HasTl2>(&mut self, ctx: &mut Ctx<U>) {
        assert!(!self.active, "nested TL2 transactions are not supported");
        let cpu = self.cpu;
        self.rv = ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            mop(m.work(cpu, t.config.begin_cost));
            mop(m.load(cpu, t.clock_addr));
            t.stats.begins += 1;
            t.clock
        });
        self.reads.clear();
        self.writes.clear();
        self.write_lines.clear();
        self.active = true;
    }

    /// Transactional read with post-validation.
    ///
    /// # Errors
    ///
    /// [`Tl2Abort::ReadValidation`] — the transaction must be retried (its
    /// buffers are already cleared).
    pub fn read<U: HasTl2>(&mut self, ctx: &mut Ctx<U>, addr: Addr) -> Result<u64, Tl2Abort> {
        debug_assert!(self.active);
        let cpu = self.cpu;
        if let Some(&v) = self.writes.get(&addr.0) {
            ctx.with(|w| mop(w.machine.work(cpu, w.shared.tl2().config.read_cost)));
            return Ok(v);
        }
        let rv = self.rv;
        let line = addr.line();
        let r = ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            mop(m.work(cpu, t.config.read_cost));
            let idx = t.lock_index(line);
            let la = t.lock_addr(idx);
            mop(m.load(cpu, la)); // pre-sample
            let pre = t.locks[idx];
            let v = mop(m.load(cpu, addr));
            mop(m.load(cpu, la)); // post-sample
            let post = t.locks[idx];
            let ok = pre.holder.is_none()
                && post.holder.is_none()
                && pre.version == post.version
                && post.version <= rv;
            if ok {
                Ok((idx, v))
            } else {
                Err(Tl2Abort::ReadValidation)
            }
        });
        match r {
            Ok((idx, v)) => {
                self.reads.push(idx);
                Ok(v)
            }
            Err(e) => {
                self.fail(ctx, e);
                Err(e)
            }
        }
    }

    /// Transactional (buffered) write.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for interface symmetry with the
    /// eager systems.
    pub fn write<U: HasTl2>(
        &mut self,
        ctx: &mut Ctx<U>,
        addr: Addr,
        value: u64,
    ) -> Result<(), Tl2Abort> {
        debug_assert!(self.active);
        let cpu = self.cpu;
        ctx.with(|w| mop(w.machine.work(cpu, w.shared.tl2().config.write_cost)));
        if self.writes.insert(addr.0, value).is_none() {
            let line = addr.line();
            if !self.write_lines.contains(&line) {
                self.write_lines.push(line);
            }
        }
        Ok(())
    }

    /// Commits: lock write set → bump clock → validate read set → publish →
    /// release.
    ///
    /// # Errors
    ///
    /// [`Tl2Abort::LockBusy`] or [`Tl2Abort::CommitValidation`]; the
    /// transaction has been rolled back (buffers dropped, locks released).
    pub fn commit<U: HasTl2>(&mut self, ctx: &mut Ctx<U>) -> Result<(), Tl2Abort> {
        debug_assert!(self.active);
        let cpu = self.cpu;
        if self.writes.is_empty() {
            // Read-only fast path: incremental validation suffices.
            ctx.with(|w| {
                let t = w.shared.tl2();
                t.stats.commits += 1;
            });
            self.active = false;
            self.consecutive_aborts = 0;
            return Ok(());
        }
        // Phase 1: acquire write locks (sorted to keep lock order canonical).
        let mut lock_idxs: Vec<usize> = Vec::with_capacity(self.write_lines.len());
        let lines = self.write_lines.clone();
        let line_locks: Vec<(LineAddr, usize)> = ctx.with(|w| {
            let t = w.shared.tl2();
            let mut idxs: Vec<(LineAddr, usize)> =
                lines.iter().map(|&l| (l, t.lock_index(l))).collect();
            idxs.sort_by_key(|&(_, i)| i);
            idxs.dedup_by_key(|&mut (_, i)| i);
            idxs
        });
        for &(_, idx) in &line_locks {
            let acquired = ctx.with(|w| {
                let m = &mut w.machine;
                let t = w.shared.tl2();
                mop(m.work(cpu, t.config.commit_entry_cost));
                let la = t.lock_addr(idx);
                mop(m.load(cpu, la));
                match t.locks[idx].holder {
                    None => {
                        t.locks[idx].holder = Some(cpu);
                        mop(m.store(cpu, la, 1));
                        true
                    }
                    Some(h) => h == cpu,
                }
            });
            if !acquired {
                self.release_locks(ctx, &lock_idxs);
                self.fail(ctx, Tl2Abort::LockBusy);
                return Err(Tl2Abort::LockBusy);
            }
            lock_idxs.push(idx);
        }
        // Phase 2: increment the global clock.
        let wv = ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            mop(m.load(cpu, t.clock_addr));
            t.clock += 1;
            let wv = t.clock;
            mop(m.store(cpu, t.clock_addr, wv));
            wv
        });
        // Phase 3: validate the read set.
        let rv = self.rv;
        let reads = std::mem::take(&mut self.reads);
        let valid = ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            for &idx in &reads {
                mop(m.work(cpu, t.config.commit_entry_cost / 2));
                let lw = t.locks[idx];
                let held_by_me = lw.holder == Some(cpu);
                if lw.version > rv || (lw.holder.is_some() && !held_by_me) {
                    return false;
                }
            }
            true
        });
        if !valid {
            self.release_locks(ctx, &lock_idxs);
            self.fail(ctx, Tl2Abort::CommitValidation);
            return Err(Tl2Abort::CommitValidation);
        }
        // Phase 4: publish the write set.
        let writes: Vec<(u64, u64)> = std::mem::take(&mut self.writes).into_iter().collect();
        for (a, v) in writes {
            ctx.with(|w| mop(w.machine.store(cpu, Addr(a), v)));
        }
        // Phase 5: release locks stamped with the new version.
        ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            for &idx in &lock_idxs {
                t.locks[idx] = LockWord {
                    version: wv,
                    holder: None,
                };
                let la = t.lock_addr(idx);
                mop(m.store(cpu, la, wv << 1));
            }
            t.stats.commits += 1;
        });
        self.active = false;
        self.consecutive_aborts = 0;
        Ok(())
    }

    /// Runs `body` as a transaction, retrying with exponential backoff until
    /// commit.
    pub fn run<U: HasTl2, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        mut body: impl FnMut(&mut Tl2Txn, &mut Ctx<U>) -> Result<R, Tl2Abort>,
    ) -> R {
        loop {
            self.begin(ctx);
            if let Ok(r) = body(self, ctx) {
                if self.commit(ctx).is_ok() {
                    return r;
                }
            }
            let shift = self.consecutive_aborts.min(6);
            let base = ctx.with(|w| w.shared.tl2().config.backoff_base);
            mop(ctx.stall(base << shift));
        }
    }

    fn release_locks<U: HasTl2>(&mut self, ctx: &mut Ctx<U>, idxs: &[usize]) {
        let cpu = self.cpu;
        let idxs = idxs.to_vec();
        ctx.with(|w| {
            let m = &mut w.machine;
            let t = w.shared.tl2();
            for idx in idxs {
                if t.locks[idx].holder == Some(cpu) {
                    t.locks[idx].holder = None;
                    let la = t.lock_addr(idx);
                    mop(m.store(cpu, la, t.locks[idx].version << 1));
                }
            }
        });
    }

    fn fail<U: HasTl2>(&mut self, ctx: &mut Ctx<U>, _why: Tl2Abort) {
        ctx.with(|w| w.shared.tl2().stats.aborts += 1);
        self.reads.clear();
        self.writes.clear();
        self.write_lines.clear();
        self.active = false;
        self.consecutive_aborts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, ThreadFn};

    const DATA: Addr = Addr(0);

    fn world(cpus: usize) -> (Machine, Tl2Shared) {
        let machine = Machine::new(MachineConfig::table4(cpus));
        let shared = Tl2Shared::new(Tl2Config::default(), Addr(1 << 20), 4096);
        (machine, shared)
    }

    #[test]
    fn single_txn_commits_lazily() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<Tl2Shared>| {
            let mut txn = Tl2Txn::new(0);
            txn.begin(ctx);
            txn.write(ctx, DATA, 7).unwrap();
            // Lazy versioning: nothing in memory before commit.
            assert_eq!(ctx.with(|w| w.machine.peek(DATA)), 0);
            assert_eq!(txn.read(ctx, DATA).unwrap(), 7, "read-own-write");
            txn.commit(ctx).unwrap();
            assert_eq!(ctx.with(|w| w.machine.peek(DATA)), 7);
        }) as ThreadFn<Tl2Shared>]);
        assert_eq!(r.shared.stats.commits, 1);
        assert_eq!(r.shared.stats.aborts, 0);
    }

    #[test]
    fn read_only_txn_needs_no_locks() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<Tl2Shared>| {
            let mut txn = Tl2Txn::new(0);
            let v = txn.run(ctx, |t, ctx| t.read(ctx, DATA));
            assert_eq!(v, 0);
        }) as ThreadFn<Tl2Shared>]);
        assert_eq!(r.shared.stats.commits, 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (machine, shared) = world(4);
        let mk = |cpu: usize| -> ThreadFn<Tl2Shared> {
            Box::new(move |ctx| {
                let mut txn = Tl2Txn::new(cpu);
                for _ in 0..25 {
                    txn.run(ctx, |t, ctx| {
                        let v = t.read(ctx, DATA)?;
                        ctx.work(50).unwrap();
                        t.write(ctx, DATA, v + 1)
                    });
                }
            })
        };
        let r = Sim::new(machine, shared).run((0..4).map(mk).collect());
        assert_eq!(r.machine.peek(DATA), 100);
        assert_eq!(r.shared.stats.commits, 100);
        assert!(r.shared.stats.aborts > 0, "contention must cause aborts");
    }

    #[test]
    fn isolation_across_lines() {
        let a = Addr(0);
        let b = Addr(4096);
        let (machine, shared) = world(3);
        let mk = |cpu: usize| -> ThreadFn<Tl2Shared> {
            Box::new(move |ctx| {
                let mut txn = Tl2Txn::new(cpu);
                for _ in 0..10 {
                    txn.run(ctx, |t, ctx| {
                        let va = t.read(ctx, a)?;
                        let vb = t.read(ctx, b)?;
                        assert_eq!(va, vb, "TL2 snapshot violated");
                        ctx.work(30).unwrap();
                        t.write(ctx, a, va + 1)?;
                        t.write(ctx, b, vb + 1)
                    });
                }
            })
        };
        let r = Sim::new(machine, shared).run((0..3).map(mk).collect());
        assert_eq!(r.machine.peek(a), 30);
        assert_eq!(r.machine.peek(b), 30);
    }

    #[test]
    fn write_own_read_upgrade_consistency() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<Tl2Shared>| {
            let mut txn = Tl2Txn::new(0);
            txn.run(ctx, |t, ctx| {
                let v = t.read(ctx, DATA)?;
                t.write(ctx, DATA, v + 1)?;
                assert_eq!(t.read(ctx, DATA)?, v + 1, "read-own-write after read");
                t.write(ctx, DATA, v + 2)?;
                assert_eq!(t.read(ctx, DATA)?, v + 2);
                Ok(())
            });
        }) as ThreadFn<Tl2Shared>]);
        assert_eq!(r.machine.peek(DATA), 2);
    }

    #[test]
    fn commit_version_advances_clock_once_per_writer() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<Tl2Shared>| {
            let mut txn = Tl2Txn::new(0);
            for i in 0..5u64 {
                txn.run(ctx, |t, ctx| t.write(ctx, Addr(i * 4096), i));
            }
            // Read-only transactions leave the clock untouched.
            txn.run(ctx, |t, ctx| t.read(ctx, DATA));
        }) as ThreadFn<Tl2Shared>]);
        assert_eq!(r.shared.clock, 5);
        assert_eq!(r.shared.stats.commits, 6);
    }

    #[test]
    fn drop_attempt_counts_an_abort_and_clears_state() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<Tl2Shared>| {
            let mut txn = Tl2Txn::new(0);
            txn.begin(ctx);
            txn.write(ctx, DATA, 9).unwrap();
            txn.drop_attempt(ctx);
            assert!(!txn.is_active());
            // Nothing published.
            assert_eq!(ctx.with(|w| w.machine.peek(DATA)), 0);
            // A fresh attempt works normally.
            txn.run(ctx, |t, ctx| t.write(ctx, DATA, 1));
        }) as ThreadFn<Tl2Shared>]);
        assert_eq!(r.shared.stats.aborts, 1);
        assert_eq!(r.machine.peek(DATA), 1);
    }

    #[test]
    fn many_disjoint_writers_scale_without_aborts() {
        let (machine, shared) = world(4);
        let mk = |cpu: usize| -> ThreadFn<Tl2Shared> {
            Box::new(move |ctx| {
                let mut txn = Tl2Txn::new(cpu);
                for i in 0..10u64 {
                    let a = Addr(4096 * (1 + cpu as u64) + i * 64);
                    txn.run(ctx, |t, ctx| t.write(ctx, a, i));
                }
            })
        };
        let r = Sim::new(machine, shared).run((0..4).map(mk).collect());
        assert_eq!(r.shared.stats.commits, 40);
        assert_eq!(
            r.shared.stats.aborts, 0,
            "disjoint writers must not conflict"
        );
    }

    #[test]
    fn stale_read_aborts() {
        // A transaction that sampled the clock, then sees a line updated by
        // a later commit, must fail validation.
        let (machine, shared) = world(2);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<Tl2Shared>| {
                let mut txn = Tl2Txn::new(0);
                txn.begin(ctx);
                ctx.work(10_000).unwrap(); // cpu1 commits meanwhile
                let e = txn.read(ctx, DATA).unwrap_err();
                assert_eq!(e, Tl2Abort::ReadValidation);
            }) as ThreadFn<Tl2Shared>,
            Box::new(|ctx: &mut Ctx<Tl2Shared>| {
                ctx.work(100).unwrap();
                let mut txn = Tl2Txn::new(1);
                txn.run(ctx, |t, ctx| t.write(ctx, DATA, 5));
            }) as ThreadFn<Tl2Shared>,
        ]);
        assert_eq!(r.shared.stats.aborts, 1);
        assert_eq!(r.machine.peek(DATA), 5);
    }
}
