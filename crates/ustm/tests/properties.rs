//! Seed-sweep tests of USTM through the full engine: randomized
//! multi-threaded transaction mixes must serialize, and after every run the
//! otable must be empty and no residual UFO protection may remain.
//! Failures print the seed; replay with `CHAOS_SEED=<n>`.

use ufotm_machine::{Addr, Machine, MachineConfig, SimRng, UfoBits};
use ufotm_sim::{for_each_seed, seed_count, Sim, ThreadFn};
use ufotm_ustm::{nont_load, nont_store, UstmConfig, UstmShared, UstmTxn};

/// Per-thread script: a list of transactions, each touching a set of slots
/// (each slot on its own line) with a read-modify-write.
#[derive(Clone, Debug)]
struct Script {
    txns: Vec<Vec<u8>>, // each txn: slot indices (may repeat)
    work: u64,
}

fn gen_script(rng: &mut SimRng, slots: u8) -> Script {
    let n = rng.gen_index(0..8);
    let txns = (0..n)
        .map(|_| {
            let k = rng.gen_index(1..6);
            (0..k)
                .map(|_| rng.gen_range(0..u64::from(slots)) as u8)
                .collect()
        })
        .collect();
    Script {
        txns,
        work: rng.gen_range(0..150),
    }
}

fn gen_scripts(rng: &mut SimRng, slots: u8) -> Vec<Script> {
    let threads = rng.gen_index(1..4);
    (0..threads).map(|_| gen_script(rng, slots)).collect()
}

fn slot_addr(i: u8) -> Addr {
    Addr(4096 + u64::from(i) * 128)
}

/// Runs the scripts and checks: per-slot totals, empty otable, clear UFO
/// bits, zero live descriptors.
fn run_scripts(config: UstmConfig, scripts: Vec<Script>, slots: u8) {
    let threads = scripts.len();
    if threads == 0 {
        return;
    }
    let machine = Machine::new(MachineConfig::table4(threads));
    let shared = UstmShared::new(config.clone(), Addr(1 << 21), threads, 1024);
    // Expected increments per slot across all scripts.
    let mut expected = vec![0u64; slots as usize];
    for s in &scripts {
        for txn in &s.txns {
            for &slot in txn {
                expected[slot as usize] += 1;
            }
        }
    }
    let bodies: Vec<ThreadFn<UstmShared>> = scripts
        .into_iter()
        .enumerate()
        .map(|(cpu, script)| -> ThreadFn<UstmShared> {
            Box::new(move |ctx| {
                let mut txn = UstmTxn::new(cpu);
                for slots_in_txn in script.txns {
                    let work = script.work;
                    txn.run(ctx, |t, ctx| {
                        for &slot in &slots_in_txn {
                            let a = slot_addr(slot);
                            let v = t.read(ctx, a)?;
                            if work > 0 {
                                ctx.work(work).expect("txn compute");
                            }
                            t.write(ctx, a, v + 1)?;
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();
    let r = Sim::new(machine, shared).run(bodies);

    for (i, &e) in expected.iter().enumerate() {
        assert_eq!(
            r.machine.peek(slot_addr(i as u8)),
            e,
            "slot {i} lost or duplicated increments"
        );
    }
    assert_eq!(r.shared.otable.live_entries(), 0, "otable must drain");
    for i in 0..slots {
        assert_eq!(
            r.machine.peek_ufo(slot_addr(i).line()),
            UfoBits::NONE,
            "slot {i} left UFO protection behind"
        );
    }
    for (cpu, slot) in r.shared.slots.iter().enumerate() {
        assert_eq!(
            slot.status,
            ufotm_ustm::TxnStatus::Inactive,
            "cpu {cpu} descriptor not retired"
        );
    }
    let s = r.shared.stats;
    assert_eq!(
        s.begins,
        s.commits + s.aborts + s.retries_entered,
        "descriptor accounting"
    );
}

#[test]
fn strong_ustm_serializes_and_cleans_up() {
    for_each_seed(0, seed_count(10), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let scripts = gen_scripts(&mut rng, 5);
        run_scripts(UstmConfig::default(), scripts, 5);
    });
}

#[test]
fn weak_ustm_serializes_and_cleans_up() {
    for_each_seed(5000, seed_count(10), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let scripts = gen_scripts(&mut rng, 5);
        run_scripts(UstmConfig::weak(), scripts, 5);
    });
}

/// Mixed transactional and (strong-atomicity-mediated) plain traffic on the
/// same lines must still serialize: plain increments use nonT helpers that
/// fault and wait.
#[test]
fn mixed_transactional_and_plain_increments() {
    let threads = 3;
    let machine = Machine::new(MachineConfig::table4(threads));
    let shared = UstmShared::new(UstmConfig::default(), Addr(1 << 21), threads, 1024);
    let target = slot_addr(0);
    let bodies: Vec<ThreadFn<UstmShared>> = (0..threads)
        .map(|cpu| -> ThreadFn<UstmShared> {
            Box::new(move |ctx| {
                if cpu == 2 {
                    // Plain thread: 30 nonT increments under strong
                    // atomicity. The read and write are separate accesses,
                    // so we serialize against transactions via the fault
                    // handler but not against *other plain code*; with a
                    // single plain thread the count stays exact.
                    ctx.set_ufo_enabled(true);
                    for _ in 0..30 {
                        let v = nont_load(ctx, target);
                        nont_store(ctx, target, v + 1);
                    }
                } else {
                    let mut txn = UstmTxn::new(cpu);
                    for _ in 0..30 {
                        txn.run(ctx, |t, ctx| {
                            let v = t.read(ctx, target)?;
                            ctx.work(25).expect("compute");
                            t.write(ctx, target, v + 1)
                        });
                    }
                }
            })
        })
        .collect();
    let r = Sim::new(machine, shared).run(bodies);
    // Transactional increments are atomic; the plain thread's RMW is not
    // atomic against whole transactions (a transaction can commit between
    // its load and store, and the stale plain store then wins — that is
    // lock-free programming, not a TM bug). Strong atomicity guarantees
    // only that no access observes or destroys *in-flight* transactional
    // state, so every plain store lands: the count is at least the plain
    // thread's 30 and at most the full 90.
    let v = r.machine.peek(target);
    assert!((30..=90).contains(&v), "count {v} outside [30, 90]");
    assert_eq!(r.shared.otable.live_entries(), 0);
    assert_eq!(r.machine.peek_ufo(target.line()), UfoBits::NONE);
}
