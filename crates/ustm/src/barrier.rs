//! Transaction lifecycle and the read/write barriers (paper Algorithms 1–2).

use std::collections::BTreeMap;

use ufotm_machine::{cpu_bit, AccessResult, Addr, LineAddr, UfoBits, LINE_WORDS};
use ufotm_sim::Ctx;

use crate::otable::Perm;
use crate::txn::{TxnStatus, UstmShared};
use crate::{HasUstm, UstmAbort};

/// Unwraps a machine operation issued from STM runtime code, where the
/// machine's error cases (nack, BTM abort, UFO fault) cannot occur: the STM
/// runs non-transactionally with its own UFO faults disabled.
pub(crate) fn mop<T>(r: AccessResult<T>) -> T {
    r.expect("machine op cannot fault in STM runtime context")
}

const WORDS: usize = LINE_WORDS as usize;

/// Outcome of one otable acquisition attempt.
enum Acquire {
    /// Ownership obtained.
    Done,
    /// This transaction has been killed.
    Doomed { by: usize },
    /// Conflictors were killed; wait for them to release, then re-attempt.
    /// The mask records which CPUs we are waiting out.
    Wait { conflictors: u64 },
}

/// Outcome of one wait poll.
enum Poll {
    Released,
    NotYet,
    Doomed { by: usize },
}

/// A per-thread USTM transaction handle.
///
/// The usual entry point is [`UstmTxn::run`], which wraps begin / body /
/// commit in a retry loop honouring the paper's blocking protocol (an
/// aborted transaction waits for its killer to retire before reissuing).
/// `read`/`write` return `Err` only after the transaction has been fully
/// rolled back (logged values restored, ownership released), so bodies just
/// propagate with `?`.
#[derive(Debug)]
pub struct UstmTxn {
    cpu: usize,
    ts: u64,
    active: bool,
    // BTreeMap, not HashMap: ownership release is a cycle-charged
    // per-line loop, so iteration order is timing-visible — it must not
    // depend on hash state or replays diverge.
    owned: BTreeMap<LineAddr, Perm>,
    undo: Vec<(LineAddr, [u64; WORDS])>,
    log_count: u64,
    /// Set while unwinding: who killed us and the killer's age, so the
    /// retry can wait for the killer to retire.
    killed_by: Option<(usize, u64)>,
}

impl UstmTxn {
    /// Creates a handle for the thread running on `cpu`.
    #[must_use]
    pub fn new(cpu: usize) -> Self {
        UstmTxn {
            cpu,
            ts: 0,
            active: false,
            owned: BTreeMap::new(),
            undo: Vec::new(),
            log_count: 0,
            killed_by: None,
        }
    }

    /// The CPU this handle is bound to.
    #[must_use]
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// Whether a transaction is in flight.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// This transaction's age (valid while active).
    #[must_use]
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Lines currently owned, with permissions (for the hybrid's
    /// inspection, e.g. the `retry` integration).
    pub fn owned_lines(&self) -> impl Iterator<Item = (LineAddr, Perm)> + '_ {
        self.owned.iter().map(|(&l, &p)| (l, p))
    }

    /// `ustm_begin`: starts a transaction (checkpoint, sequence number,
    /// descriptor update; disables this thread's UFO faults in strong mode).
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active on this handle.
    pub fn begin<U: HasUstm>(&mut self, ctx: &mut Ctx<U>) {
        assert!(!self.active, "nested USTM transactions are not supported");
        let cpu = self.cpu;
        let ts = ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            mop(m.work(cpu, u.config.begin_cost));
            if u.config.strong_atomicity {
                m.set_ufo_enabled(cpu, false);
            }
            let ts = u.next_seq();
            u.slots[cpu] = crate::txn::TxnSlot {
                status: TxnStatus::Active,
                ts,
                doomed_by: None,
                woken: false,
            };
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, ts));
            u.stats.begins += 1;
            ts
        });
        self.ts = ts;
        self.active = true;
        self.owned.clear();
        self.undo.clear();
        self.killed_by = None;
    }

    /// `ustm_read_barrier` + the read itself: acquires read permission for
    /// the line containing `addr`, then loads the word.
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if this transaction was killed; it has already
    /// been rolled back when the error is returned.
    pub fn read<U: HasUstm>(&mut self, ctx: &mut Ctx<U>, addr: Addr) -> Result<u64, UstmAbort> {
        debug_assert!(self.active, "read outside a USTM transaction");
        let cpu = self.cpu;
        let line = addr.line();
        if self.owned.contains_key(&line) {
            // Fast path: permission already held. Still a barrier: pending
            // kills are noticed here.
            let r = ctx.with(|w| {
                let m = &mut w.machine;
                let u = w.shared.ustm();
                if let Some(by) = u.slots[cpu].doomed_by {
                    return Err(by);
                }
                mop(m.work(cpu, u.config.barrier_hit_cost));
                u.stats.barrier_cycles += u.config.barrier_hit_cost;
                Ok(mop(m.load(cpu, addr)))
            });
            return match r {
                Ok(v) => Ok(v),
                Err(by) => Err(self.unwind(ctx, by)),
            };
        }
        self.acquire(ctx, line, Perm::Read)?;
        self.owned.insert(line, Perm::Read);
        Ok(ctx.with(|w| mop(w.machine.load(cpu, addr))))
    }

    /// `ustm_write_barrier` + the store itself: acquires write permission
    /// (logging the line's pre-image on first acquisition), then stores.
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if this transaction was killed; it has already
    /// been rolled back when the error is returned.
    pub fn write<U: HasUstm>(
        &mut self,
        ctx: &mut Ctx<U>,
        addr: Addr,
        value: u64,
    ) -> Result<(), UstmAbort> {
        debug_assert!(self.active, "write outside a USTM transaction");
        let cpu = self.cpu;
        let line = addr.line();
        if self.owned.get(&line) == Some(&Perm::Write) {
            let r = ctx.with(|w| {
                let m = &mut w.machine;
                let u = w.shared.ustm();
                if let Some(by) = u.slots[cpu].doomed_by {
                    return Err(by);
                }
                mop(m.work(cpu, u.config.barrier_hit_cost));
                u.stats.barrier_cycles += u.config.barrier_hit_cost;
                mop(m.store(cpu, addr, value));
                Ok(())
            });
            return match r {
                Ok(()) => Ok(()),
                Err(by) => Err(self.unwind(ctx, by)),
            };
        }
        self.acquire(ctx, line, Perm::Write)?;
        self.owned.insert(line, Perm::Write);
        ctx.with(|w| mop(w.machine.store(cpu, addr, value)));
        Ok(())
    }

    /// `ustm_end`: commits. After the serialization point (descriptor →
    /// `Committing`) the transaction releases all ownership and clears UFO
    /// protection.
    ///
    /// # Errors
    ///
    /// [`UstmAbort::Killed`] if a kill landed before the serialization
    /// point; the transaction has been rolled back.
    pub fn commit<U: HasUstm>(&mut self, ctx: &mut Ctx<U>) -> Result<(), UstmAbort> {
        debug_assert!(self.active, "commit outside a USTM transaction");
        let cpu = self.cpu;
        let sealed = ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            if let Some(by) = u.slots[cpu].doomed_by {
                return Err(by);
            }
            mop(m.work(cpu, u.config.finish_cost));
            u.slots[cpu].status = TxnStatus::Committing;
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, 1));
            Ok(())
        });
        if let Err(by) = sealed {
            return Err(self.unwind(ctx, by));
        }
        // Persistent machines: write and fence the durable redo record now,
        // while ownership still excludes conflicting writers (see the
        // `recovery` module for the protocol). No-op on volatile runs.
        let write_lines: Vec<LineAddr> = self
            .owned
            .iter()
            .filter_map(|(&l, &p)| (p == Perm::Write).then_some(l))
            .collect();
        let ts = self.ts;
        ctx.with(|w| {
            let m = &mut w.machine;
            if m.persist_enabled() {
                crate::recovery::redo_commit(m, w.shared.ustm(), cpu, ts, &write_lines);
            }
        });
        let lines: Vec<LineAddr> = self.owned.keys().copied().collect();
        for line in lines {
            self.release_line(ctx, line);
        }
        ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            u.slots[cpu].status = TxnStatus::Inactive;
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, 0));
            u.stats.commits += 1;
            if u.config.strong_atomicity {
                m.set_ufo_enabled(cpu, true);
            }
        });
        self.active = false;
        self.owned.clear();
        self.undo.clear();
        Ok(())
    }

    /// Explicitly aborts and rolls back the transaction.
    pub fn abort_explicit<U: HasUstm>(&mut self, ctx: &mut Ctx<U>) -> UstmAbort {
        debug_assert!(self.active);
        self.rollback(ctx, None);
        UstmAbort::Explicit
    }

    /// After an `Err(Killed)`, waits until the killer transaction has
    /// retired (paper §4.1: an aborted transaction waits for its aborter
    /// before reissuing, avoiding otable contention and livelock).
    pub fn wait_for_killer<U: HasUstm>(&mut self, ctx: &mut Ctx<U>) {
        let Some((killer, killer_ts)) = self.killed_by.take() else {
            return;
        };
        let cpu = self.cpu;
        loop {
            let retired = ctx.with(|w| {
                let m = &mut w.machine;
                let u = w.shared.ustm();
                let slot_addr = u.slot_addr(killer);
                mop(m.load(cpu, slot_addr));
                u.stats.stall_polls += 1;
                u.slots[killer].status == TxnStatus::Inactive || u.slots[killer].ts != killer_ts
            });
            if retired {
                return;
            }
            let backoff = ctx.with(|w| w.shared.ustm().config.poll_backoff);
            mop(ctx.stall(backoff));
        }
    }

    /// Runs `body` as a transaction, retrying per the blocking protocol
    /// until it commits. The body must propagate `Err` from `read`/`write`
    /// (the transaction is already rolled back when they return `Err`).
    ///
    /// # Panics
    ///
    /// Panics if the body returns `Err(UstmAbort::Explicit)` variants it
    /// did not itself produce via [`UstmTxn::abort_explicit`] — i.e. misuse.
    pub fn run<U: HasUstm, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        mut body: impl FnMut(&mut UstmTxn, &mut Ctx<U>) -> Result<R, UstmAbort>,
    ) -> R {
        loop {
            self.begin(ctx);
            match body(self, ctx) {
                Ok(r) => match self.commit(ctx) {
                    Ok(()) => return r,
                    Err(UstmAbort::Killed { .. }) => self.wait_for_killer(ctx),
                    Err(other) => unreachable!("commit produced {other:?}"),
                },
                Err(UstmAbort::Killed { .. }) => self.wait_for_killer(ctx),
                Err(UstmAbort::RetryWoken) => { /* reissue immediately */ }
                Err(UstmAbort::Explicit) => { /* user abort: reissue */ }
            }
        }
    }

    // --- internals -------------------------------------------------------

    /// Takes the undo log (the `retry` path restores it itself).
    pub(crate) fn take_undo(&mut self) -> Vec<(LineAddr, [u64; WORDS])> {
        std::mem::take(&mut self.undo)
    }

    /// Completes a woken `retry`: releases remaining ownership and retires
    /// the transaction so it can be reissued.
    pub(crate) fn finish_retry<U: HasUstm>(&mut self, ctx: &mut Ctx<U>) {
        let cpu = self.cpu;
        let lines: Vec<LineAddr> = self.owned.keys().copied().collect();
        for line in lines {
            self.release_line(ctx, line);
        }
        ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            u.slots[cpu].status = TxnStatus::Inactive;
            u.slots[cpu].doomed_by = None;
            u.slots[cpu].woken = false;
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, 0));
            if u.config.strong_atomicity {
                m.set_ufo_enabled(cpu, true);
            }
        });
        self.active = false;
        self.owned.clear();
        self.undo.clear();
    }

    /// Rolls back after discovering a kill: returns the error to propagate.
    pub(crate) fn unwind<U: HasUstm>(&mut self, ctx: &mut Ctx<U>, by: usize) -> UstmAbort {
        self.rollback(ctx, Some(by));
        UstmAbort::Killed { by }
    }

    /// Full rollback: restore logged lines, release ownership, retire.
    fn rollback<U: HasUstm>(&mut self, ctx: &mut Ctx<U>, by: Option<usize>) {
        let cpu = self.cpu;
        let killer_ts = ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            u.slots[cpu].status = TxnStatus::Aborting;
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, 2));
            mop(m.work(cpu, u.config.finish_cost));
            u.stats.aborts += 1;
            by.map(|k| u.slots[k].ts)
        });
        // Eager versioning: restore pre-images, newest first.
        let undo = std::mem::take(&mut self.undo);
        for (line, words) in undo.into_iter().rev() {
            ctx.with(|w| {
                let m = &mut w.machine;
                for (i, word) in words.iter().enumerate() {
                    mop(m.store(cpu, line.base_addr().add_words(i as u64), *word));
                }
            });
        }
        let lines: Vec<LineAddr> = self.owned.keys().copied().collect();
        for line in lines {
            self.release_line(ctx, line);
        }
        ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            u.slots[cpu].status = TxnStatus::Inactive;
            u.slots[cpu].doomed_by = None;
            let slot_addr = u.slot_addr(cpu);
            mop(m.store(cpu, slot_addr, 0));
            if u.config.strong_atomicity {
                m.set_ufo_enabled(cpu, true);
            }
        });
        self.active = false;
        self.owned.clear();
        self.killed_by = by.zip(killer_ts);
    }

    /// Releases ownership of one line (commit or abort path), clearing UFO
    /// protection when the entry drains.
    fn release_line<U: HasUstm>(&mut self, ctx: &mut Ctx<U>, line: LineAddr) {
        let cpu = self.cpu;
        ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            let start = m.now(cpu);
            let strong = u.config.strong_atomicity;
            let bin = u.otable.bin_addr_of(line);
            mop(m.work(cpu, u.config.cas_cost));
            mop(m.load(cpu, bin));
            let removed = u.otable.release(line, cpu);
            mop(m.store(cpu, bin, u.otable.chain_len(line) as u64));
            if removed && strong {
                mop(m.set_ufo_bits(cpu, line.base_addr(), UfoBits::NONE));
            }
            u.stats.barrier_cycles += m.now(cpu) - start;
        });
        self.owned.remove(&line);
    }

    /// Acquires `want` permission on `line`, looping through conflict
    /// resolution. On success the caller records it in `self.owned`.
    fn acquire<U: HasUstm>(
        &mut self,
        ctx: &mut Ctx<U>,
        line: LineAddr,
        want: Perm,
    ) -> Result<(), UstmAbort> {
        let cpu = self.cpu;
        let my_ts = self.ts;
        loop {
            let mut log_snapshot: Option<[u64; WORDS]> = None;
            let outcome = ctx.with(|w| {
                let m = &mut w.machine;
                let u = w.shared.ustm();
                if let Some(by) = u.slots[cpu].doomed_by {
                    return Acquire::Doomed { by };
                }
                let start = m.now(cpu);
                let strong = u.config.strong_atomicity;
                let bin = u.otable.bin_addr_of(line);
                mop(m.work(cpu, u.config.cas_cost));
                mop(m.load(cpu, bin));
                let found = u.otable.lookup(line);
                let out = match found {
                    None => {
                        u.otable.insert(line, want, cpu);
                        mop(m.store(cpu, bin, u.otable.chain_len(line) as u64));
                        if strong {
                            let bits = match want {
                                Perm::Read => UfoBits::FAULT_ON_WRITE,
                                Perm::Write => UfoBits::FAULT_ON_BOTH,
                            };
                            mop(m.set_ufo_bits(cpu, line.base_addr(), bits));
                        }
                        if want == Perm::Write {
                            log_snapshot = Some(snapshot_line(m, line));
                        }
                        Acquire::Done
                    }
                    Some((pos, e)) => {
                        if pos > 0 {
                            u.stats.chain_walks += 1;
                            mop(m.work(cpu, u.config.chain_entry_cost * pos as u64));
                        }
                        if e.owned_by(cpu) && (want == Perm::Read || e.sole_owner(cpu)) {
                            if want == Perm::Write {
                                // Upgrade from sole read ownership.
                                u.otable.upgrade(line, cpu);
                                mop(m.store(cpu, bin, u.otable.chain_len(line) as u64));
                                if strong {
                                    mop(m.add_ufo_bits(
                                        cpu,
                                        line.base_addr(),
                                        UfoBits::FAULT_ON_READ,
                                    ));
                                }
                                log_snapshot = Some(snapshot_line(m, line));
                            }
                            Acquire::Done
                        } else if want == Perm::Read && e.perm == Perm::Read {
                            u.otable.add_reader(line, cpu);
                            mop(m.store(cpu, bin, u.otable.chain_len(line) as u64));
                            Acquire::Done
                        } else {
                            resolve_conflict(u, cpu, my_ts, &e)
                        }
                    }
                };
                u.stats.barrier_cycles += m.now(cpu) - start;
                u.stats.max_chain_seen =
                    u.stats.max_chain_seen.max(u.otable.chain_len(line) as u64);
                out
            });
            match outcome {
                Acquire::Done => {
                    if let Some(words) = log_snapshot {
                        self.log_line(ctx, line, words);
                    }
                    return Ok(());
                }
                Acquire::Doomed { by } => return Err(self.unwind(ctx, by)),
                Acquire::Wait { conflictors } => {
                    self.wait_out(ctx, line, conflictors)?;
                }
            }
        }
    }

    /// Records a line pre-image in the undo log, charging log traffic.
    fn log_line<U: HasUstm>(&mut self, ctx: &mut Ctx<U>, line: LineAddr, words: [u64; WORDS]) {
        let cpu = self.cpu;
        let n = self.log_count;
        self.log_count += 2;
        ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            let start = m.now(cpu);
            mop(m.work(cpu, u.config.log_cost));
            let a0 = u.log_addr(cpu, n);
            let a1 = u.log_addr(cpu, n + 1);
            mop(m.store(cpu, a0, line.base_addr().0));
            mop(m.store(cpu, a1, words[0]));
            u.stats.barrier_cycles += m.now(cpu) - start;
        });
        self.undo.push((line, words));
    }

    /// Waits until none of `conflictors` still owns `line` (polling the bin
    /// with backoff), surfacing kills.
    fn wait_out<U: HasUstm>(
        &mut self,
        ctx: &mut Ctx<U>,
        line: LineAddr,
        conflictors: u64,
    ) -> Result<(), UstmAbort> {
        let cpu = self.cpu;
        loop {
            let poll = ctx.with(|w| {
                let m = &mut w.machine;
                let u = w.shared.ustm();
                if let Some(by) = u.slots[cpu].doomed_by {
                    return Poll::Doomed { by };
                }
                let bin = u.otable.bin_addr_of(line);
                mop(m.load(cpu, bin));
                u.stats.stall_polls += 1;
                match u.otable.lookup(line) {
                    None => Poll::Released,
                    // Re-evaluate as soon as *any* conflictor releases: the
                    // age comparison may now swing our way (waiting for the
                    // whole snapshot would deadlock on mixed-age owner
                    // sets — A stalls behind an older reader while a
                    // younger reader stalls behind A).
                    Some((_, e)) if e.owners & conflictors != conflictors => Poll::Released,
                    Some(_) => Poll::NotYet,
                }
            });
            match poll {
                Poll::Released => return Ok(()),
                Poll::Doomed { by } => return Err(self.unwind(ctx, by)),
                Poll::NotYet => {
                    let backoff = ctx.with(|w| w.shared.ustm().config.poll_backoff);
                    mop(ctx.stall(backoff));
                }
            }
        }
    }
}

/// Host-side snapshot of a line's eight words (the simulated cost is the
/// log-write traffic charged by `log_line`).
fn snapshot_line(m: &ufotm_machine::Machine, line: LineAddr) -> [u64; WORDS] {
    let mut words = [0u64; WORDS];
    for (i, word) in words.iter_mut().enumerate() {
        *word = m.peek(line.base_addr().add_words(i as u64));
    }
    words
}

/// Age-ordered conflict resolution (paper §4.1): stall if younger than any
/// live conflictor; otherwise kill them all and wait for their unwinding.
/// `retry`-parked owners are woken and waited out regardless of age.
fn resolve_conflict(
    u: &mut UstmShared,
    cpu: usize,
    my_ts: u64,
    entry: &crate::otable::OtableEntry,
) -> Acquire {
    let mut victims: Vec<usize> = Vec::new();
    let mut must_stall = false;
    let mut mask = 0u64;
    for o in entry.owner_cpus() {
        if o == cpu {
            continue;
        }
        mask |= cpu_bit(o);
        match u.slots[o].status {
            TxnStatus::Active => {
                if u.slots[o].ts > my_ts {
                    victims.push(o);
                } else {
                    must_stall = true;
                }
            }
            TxnStatus::Committing | TxnStatus::Aborting => must_stall = true,
            TxnStatus::Retrying => {
                u.slots[o].woken = true;
                victims.push(o);
            }
            TxnStatus::Inactive => {
                // Raced with a release; re-attempt will see fresh state.
            }
        }
    }
    if must_stall {
        return Acquire::Wait { conflictors: mask };
    }
    for &v in &victims {
        if u.doom(v, cpu) {
            u.stats.kills_issued += 1;
        }
    }
    Acquire::Wait { conflictors: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, ThreadFn};

    use crate::txn::UstmConfig;

    const DATA: Addr = Addr(0);

    fn world(cpus: usize, cfg: UstmConfig) -> (Machine, UstmShared) {
        let mcfg = MachineConfig::table4(cpus);
        let machine = Machine::new(mcfg);
        // Keep USTM metadata far from test data.
        let shared = UstmShared::new(cfg, Addr(1 << 20), cpus, 1024);
        (machine, shared)
    }

    #[test]
    fn single_txn_commits() {
        let (machine, shared) = world(1, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            let out = txn.run(ctx, |t, ctx| {
                let v = t.read(ctx, DATA)?;
                t.write(ctx, DATA, v + 5)?;
                Ok(v + 5)
            });
            assert_eq!(out, 5);
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.machine.peek(DATA), 5);
        assert_eq!(r.shared.stats.commits, 1);
        assert_eq!(r.shared.otable.live_entries(), 0, "ownership drained");
    }

    #[test]
    fn strong_mode_sets_and_clears_ufo_bits() {
        let (machine, shared) = world(1, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx);
            txn.read(ctx, DATA).unwrap();
            let bits = ctx.with(|w| w.machine.read_ufo_bits(0, DATA).unwrap());
            assert_eq!(bits, UfoBits::FAULT_ON_WRITE, "read barrier installs fow");
            txn.write(ctx, DATA, 1).unwrap();
            let bits = ctx.with(|w| w.machine.read_ufo_bits(0, DATA).unwrap());
            assert_eq!(bits, UfoBits::FAULT_ON_BOTH, "upgrade adds for");
            txn.commit(ctx).unwrap();
            let bits = ctx.with(|w| w.machine.read_ufo_bits(0, DATA).unwrap());
            assert_eq!(bits, UfoBits::NONE, "commit clears protection");
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.machine.peek(DATA), 1);
    }

    #[test]
    fn weak_mode_never_touches_ufo_bits() {
        let (machine, shared) = world(1, UstmConfig::weak());
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx);
            txn.write(ctx, DATA, 9).unwrap();
            let bits = ctx.with(|w| w.machine.read_ufo_bits(0, DATA).unwrap());
            assert_eq!(bits, UfoBits::NONE);
            txn.commit(ctx).unwrap();
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.machine.peek(DATA), 9);
    }

    #[test]
    fn rollback_restores_line_preimage() {
        let (mut machine, shared) = world(1, UstmConfig::default());
        for i in 0..8 {
            machine.poke(DATA.add_words(i), 100 + i);
        }
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.begin(ctx);
            txn.write(ctx, DATA, 0).unwrap();
            txn.write(ctx, DATA.add_words(3), 0).unwrap();
            let abort = txn.abort_explicit(ctx);
            assert_eq!(abort, UstmAbort::Explicit);
        }) as ThreadFn<UstmShared>]);
        for i in 0..8 {
            assert_eq!(r.machine.peek(DATA.add_words(i)), 100 + i);
        }
        assert_eq!(r.shared.stats.aborts, 1);
        assert_eq!(r.shared.otable.live_entries(), 0);
    }

    #[test]
    fn two_readers_share_a_line() {
        let (machine, shared) = world(2, UstmConfig::default());
        let mk = |cpu: usize| -> ThreadFn<UstmShared> {
            Box::new(move |ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(cpu);
                let v = txn.run(ctx, |t, ctx| t.read(ctx, DATA));
                assert_eq!(v, 0);
            })
        };
        let r = Sim::new(machine, shared).run(vec![mk(0), mk(1)]);
        assert_eq!(r.shared.stats.commits, 2);
        assert_eq!(r.shared.stats.kills_issued, 0);
    }

    #[test]
    fn write_write_conflict_serializes_increment() {
        let (machine, shared) = world(4, UstmConfig::default());
        let mk = |cpu: usize| -> ThreadFn<UstmShared> {
            Box::new(move |ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(cpu);
                for _ in 0..25 {
                    txn.run(ctx, |t, ctx| {
                        let v = t.read(ctx, DATA)?;
                        // Add compute so transactions overlap in time.
                        mop(ctx.work(50));
                        t.write(ctx, DATA, v + 1)
                    });
                }
            })
        };
        let r = Sim::new(machine, shared).run((0..4).map(mk).collect());
        assert_eq!(r.machine.peek(DATA), 100, "increments must not be lost");
        assert_eq!(r.shared.stats.commits, 100);
        assert_eq!(r.shared.otable.live_entries(), 0);
    }

    #[test]
    fn conflicting_txns_leave_consistent_multiline_state() {
        // Invariant: words A and B always move together (A == B).
        let a = Addr(0);
        let b = Addr(1024); // different line
        let (machine, shared) = world(3, UstmConfig::default());
        let mk = |cpu: usize| -> ThreadFn<UstmShared> {
            Box::new(move |ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(cpu);
                for _ in 0..10 {
                    txn.run(ctx, |t, ctx| {
                        let va = t.read(ctx, a)?;
                        let vb = t.read(ctx, b)?;
                        assert_eq!(va, vb, "isolation violated");
                        mop(ctx.work(30));
                        t.write(ctx, a, va + 1)?;
                        t.write(ctx, b, vb + 1)
                    });
                }
            })
        };
        let r = Sim::new(machine, shared).run((0..3).map(mk).collect());
        assert_eq!(r.machine.peek(a), 30);
        assert_eq!(r.machine.peek(b), 30);
    }

    #[test]
    fn killed_transaction_waits_for_killer() {
        let (machine, shared) = world(2, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                // Older transaction: starts first, then writes DATA.
                let mut txn = UstmTxn::new(0);
                txn.run(ctx, |t, ctx| {
                    mop(ctx.work(2_000)); // let cpu1 grab DATA first
                    t.write(ctx, DATA, 1)?;
                    mop(ctx.work(2_000));
                    Ok(())
                });
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                mop(ctx.work(100));
                // Younger transaction grabs DATA, gets killed, retries.
                let mut txn = UstmTxn::new(1);
                txn.run(ctx, |t, ctx| {
                    let v = t.read(ctx, DATA)?;
                    mop(ctx.work(8_000)); // hold it long enough to be killed
                    t.write(ctx, DATA, v + 10)
                });
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(DATA), 11, "both eventually commit");
        assert!(r.shared.stats.kills_issued >= 1, "older killed younger");
        assert!(r.shared.stats.aborts >= 1);
        assert_eq!(r.shared.stats.commits, 2);
    }
}
