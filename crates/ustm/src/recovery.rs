//! Durable redo logging and crash recovery for USTM on a persistent machine.
//!
//! USTM is eager-versioning: transactional stores land in place, with a
//! volatile undo log for aborts. On a machine with a persistence domain
//! that is not crash-safe by itself — a power failure discards everything
//! that was never flushed *and* fenced, so a committed transaction's writes
//! can be lost, or (worse) an arbitrary subset of them can be durable while
//! the rest are not.
//!
//! The redo protocol makes commits crash-consistent. Each CPU owns a fixed
//! durable *redo window* ([`UstmShared::redo_addr`]) holding at most one
//! record:
//!
//! ```text
//! word 0            REDO_HEADER ^ seq
//! word 1            count (number of line records)
//! word 2            applied flag (0 = replayable, 1 = neutralized)
//! words 3 + 9i ..   line record i: base address, then the 8 post-image words
//! word 3 + 9·count  REDO_TRAILER ^ seq
//! ```
//!
//! At commit, after the serialization point but before any ownership is
//! released, the committer:
//!
//! 1. writes the record (post-images of its write set) into its window,
//!    flushes the window's lines **in ascending order**, and fences — the
//!    fence is the durable commit point;
//! 2. flushes the in-place data lines themselves and fences;
//! 3. stores `applied = 1` in the header line, flushes it, and fences,
//!    neutralizing the window so recovery will not replay a record whose
//!    effects (and possibly *later* commits to the same lines) are already
//!    durable — replaying such a stale record would regress newer state.
//!
//! Torn records are detected structurally. The persist buffer drains
//! oldest-first, so the durable image always holds a *prefix* of the flush
//! sequence; flushing window lines in ascending order puts the trailer in
//! the last line, so a durable valid trailer implies the whole record is
//! durable. Header and trailer are magic values XORed with the
//! transaction's sequence number, so a new header over a stale trailer (or
//! vice versa) never validates.
//!
//! [`UstmShared::recover`] is a *pure replay*: it applies every valid,
//! unapplied record (writing the post-images back and making them durable)
//! but never sets the applied flag itself. Replaying the same post-images
//! is naturally idempotent, so recovering twice equals recovering once —
//! an invariant the trace auditor checks.

use ufotm_machine::{Addr, LineAddr, Machine, LINE_WORDS};

use crate::barrier::mop;
use crate::txn::UstmShared;

/// Magic for redo-record headers (XORed with the commit sequence number).
const REDO_HEADER: u64 = 0x5EED_0B5E_55A1_D001;
/// Magic for redo-record trailers (XORed with the commit sequence number).
const REDO_TRAILER: u64 = 0x5EED_0B5E_55A1_D002;

/// Words per line record: the line's base address plus its 8 data words.
const LINE_RECORD_WORDS: u64 = 1 + LINE_WORDS;

/// Most lines one durable commit may write (window size minus header,
/// applied flag, and trailer, divided per line record).
pub const REDO_MAX_LINES: u64 = (UstmShared::REDO_WORDS_PER_CPU - 4) / LINE_RECORD_WORDS;

/// Per-CPU outcome of one [`UstmShared::recover`] scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuRecovery {
    /// The CPU whose redo window was scanned.
    pub cpu: usize,
    /// Records replayed from this window (0 or 1: one window, one record).
    pub replayed_records: u64,
    /// Data lines rewritten by the replay.
    pub replayed_lines: u64,
    /// Whether the window held a torn (partially durable) record, dropped.
    pub torn: bool,
}

/// What a redo window parses to, host-side.
enum Window {
    /// All-zero header: never used this run.
    Empty,
    /// Structurally valid record, not yet neutralized.
    Replayable { count: u64 },
    /// Structurally valid record whose effects are already durable.
    Applied,
    /// Non-empty but fails validation: torn by the crash, dropped.
    Torn,
}

fn parse_window(m: &Machine, u: &UstmShared, cpu: usize) -> Window {
    let header = m.peek(u.redo_addr(cpu, 0));
    if header == 0 {
        return Window::Empty;
    }
    let seq = header ^ REDO_HEADER;
    let count = m.peek(u.redo_addr(cpu, 1));
    if count == 0 || count > REDO_MAX_LINES {
        return Window::Torn;
    }
    let trailer = m.peek(u.redo_addr(cpu, 3 + count * LINE_RECORD_WORDS));
    if trailer ^ REDO_TRAILER != seq {
        return Window::Torn;
    }
    if m.peek(u.redo_addr(cpu, 2)) == 1 {
        Window::Applied
    } else {
        Window::Replayable { count }
    }
}

/// Commit-time durability: called by [`UstmTxn::commit`](crate::UstmTxn)
/// between the serialization point and ownership release, only when the
/// machine has a persistence domain.
///
/// # Panics
///
/// Panics if the write set exceeds [`REDO_MAX_LINES`] (the redo window is a
/// fixed reservation; split the transaction).
pub(crate) fn redo_commit(
    m: &mut Machine,
    u: &mut UstmShared,
    cpu: usize,
    seq: u64,
    write_lines: &[LineAddr],
) {
    if write_lines.is_empty() {
        // Read-only commit: nothing to make durable, but fence anyway so
        // every durable commit observably follows a fence (the auditor's
        // commit-follows-fence rule stays uniform).
        mop(m.persist_fence(cpu));
        return;
    }
    let count = write_lines.len() as u64;
    assert!(
        count <= REDO_MAX_LINES,
        "redo window overflow: transaction wrote {count} lines, window holds {REDO_MAX_LINES}"
    );
    // Build the record host-side from the in-place post-images, then store
    // it through the machine so the log writes cost real traffic.
    let mut words: Vec<u64> = Vec::with_capacity((3 + count * LINE_RECORD_WORDS + 1) as usize);
    words.push(REDO_HEADER ^ seq);
    words.push(count);
    words.push(0); // applied flag
    for &line in write_lines {
        words.push(line.base_addr().0);
        for i in 0..LINE_WORDS {
            words.push(m.peek(line.base_addr().add_words(i)));
        }
    }
    words.push(REDO_TRAILER ^ seq);
    for (n, &v) in words.iter().enumerate() {
        mop(m.store(cpu, u.redo_addr(cpu, n as u64), v));
    }
    // Flush the window's lines in ascending order — the trailer lands in
    // the last line, so the persist buffer's oldest-first drain order makes
    // "durable trailer ⇒ whole record durable" hold — then fence. This
    // fence is the durable commit point.
    let touched_lines = (words.len() as u64).div_ceil(LINE_WORDS);
    for l in 0..touched_lines {
        mop(m.persist_flush(cpu, u.redo_addr(cpu, l * LINE_WORDS)));
    }
    mop(m.persist_fence(cpu));
    u.stats.redo_records += 1;
    // Make the in-place post-images durable.
    for &line in write_lines {
        mop(m.persist_flush(cpu, line.base_addr()));
    }
    mop(m.persist_fence(cpu));
    // Neutralize the window: once `applied = 1` is durable, recovery skips
    // this record (replaying it after later commits touched the same lines
    // would regress durable state).
    mop(m.store(cpu, u.redo_addr(cpu, 2), 1));
    mop(m.persist_flush(cpu, u.redo_addr(cpu, 0)));
    mop(m.persist_fence(cpu));
}

impl UstmShared {
    /// Crash recovery: scans every CPU's redo window in the (rebooted)
    /// machine's memory and replays each valid, unapplied record — writing
    /// its post-images back in place and making them durable. Torn records
    /// are dropped; applied records are skipped.
    ///
    /// Recovery is a pure replay: it never sets the applied flag, so
    /// running it again replays the same records to the same values —
    /// recovering twice equals recovering once.
    ///
    /// Call this on a freshly rebooted world (machine restored from a
    /// [`CrashImage`](ufotm_machine::CrashImage), shared state rebuilt with
    /// the same layout) before any new transactions run.
    pub fn recover(&mut self, m: &mut Machine) -> Vec<CpuRecovery> {
        self.stats.recovery_runs += 1;
        let mut out = Vec::with_capacity(self.cpus());
        for cpu in 0..self.cpus() {
            let mut r = CpuRecovery {
                cpu,
                ..CpuRecovery::default()
            };
            match parse_window(m, self, cpu) {
                Window::Empty | Window::Applied => {}
                Window::Torn => {
                    r.torn = true;
                    self.stats.torn_records += 1;
                }
                Window::Replayable { count } => {
                    for i in 0..count {
                        let rec = 3 + i * LINE_RECORD_WORDS;
                        let base = Addr(m.peek(self.redo_addr(cpu, rec)));
                        for w in 0..LINE_WORDS {
                            let v = m.peek(self.redo_addr(cpu, rec + 1 + w));
                            mop(m.store(cpu, base.add_words(w), v));
                        }
                        mop(m.persist_flush(cpu, base));
                    }
                    mop(m.persist_fence(cpu));
                    r.replayed_records = 1;
                    r.replayed_lines = count;
                    self.stats.recovered_records += 1;
                    self.stats.recovered_lines += count;
                }
            }
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{MachineConfig, PersistConfig};
    use ufotm_sim::{Ctx, Sim, ThreadFn};

    use crate::txn::UstmConfig;
    use crate::UstmTxn;

    const DATA: Addr = Addr(0);
    const META: Addr = Addr(1 << 20);

    fn persistent_world(cpus: usize) -> (Machine, UstmShared) {
        let mut mcfg = MachineConfig::table4(cpus);
        mcfg.persist = Some(PersistConfig::default());
        let machine = Machine::new(mcfg);
        let shared = UstmShared::new(UstmConfig::default(), META, cpus, 1024);
        (machine, shared)
    }

    fn commit_one_write(machine: Machine, shared: UstmShared) -> ufotm_sim::SimResult<UstmShared> {
        Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.run(ctx, |t, ctx| t.write(ctx, DATA, 77));
        }) as ThreadFn<UstmShared>])
    }

    #[test]
    fn durable_commit_writes_an_applied_record() {
        let (machine, shared) = persistent_world(1);
        let r = commit_one_write(machine, shared);
        assert_eq!(r.shared.stats.redo_records, 1);
        // The window parses as a valid, neutralized record.
        assert!(matches!(
            parse_window(&r.machine, &r.shared, 0),
            Window::Applied
        ));
        // The data itself is durable.
        let durable = r.machine.durable_image().unwrap();
        assert_eq!(durable[DATA.word_index() as usize], 77);
        // Three fences: redo, data, applied marker.
        assert_eq!(r.machine.persist_stats().fences, 3);
    }

    #[test]
    fn volatile_commit_touches_no_redo_state() {
        let machine = Machine::new(MachineConfig::table4(1));
        let shared = UstmShared::new(UstmConfig::default(), META, 1, 1024);
        let r = commit_one_write(machine, shared);
        assert_eq!(r.shared.stats.redo_records, 0);
        assert_eq!(r.machine.peek(r.shared.redo_addr(0, 0)), 0);
    }

    #[test]
    fn read_only_durable_commit_still_fences() {
        let (machine, shared) = persistent_world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            txn.run(ctx, |t, ctx| t.read(ctx, DATA));
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.shared.stats.redo_records, 0);
        assert_eq!(r.machine.persist_stats().fences, 1);
    }

    #[test]
    fn recovery_replays_an_unapplied_record() {
        let (mut m, mut u) = persistent_world(1);
        // Hand-craft a committed-but-unapplied record (as if the crash hit
        // after the redo fence, before the data made it durable).
        let seq = 5;
        m.poke(u.redo_addr(0, 0), REDO_HEADER ^ seq);
        m.poke(u.redo_addr(0, 1), 1);
        m.poke(u.redo_addr(0, 2), 0);
        m.poke(u.redo_addr(0, 3), DATA.0);
        for w in 0..LINE_WORDS {
            m.poke(u.redo_addr(0, 4 + w), 900 + w);
        }
        m.poke(u.redo_addr(0, 3 + LINE_RECORD_WORDS), REDO_TRAILER ^ seq);
        let out = u.recover(&mut m);
        assert_eq!(out[0].replayed_records, 1);
        assert_eq!(out[0].replayed_lines, 1);
        assert!(!out[0].torn);
        let durable = m.durable_image().unwrap();
        for w in 0..LINE_WORDS {
            assert_eq!(m.peek(DATA.add_words(w)), 900 + w);
            assert_eq!(durable[DATA.add_words(w).word_index() as usize], 900 + w);
        }
        assert_eq!(u.stats.recovered_records, 1);
        assert_eq!(u.stats.recovered_lines, 1);
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut m, mut u) = persistent_world(1);
        let seq = 9;
        m.poke(u.redo_addr(0, 0), REDO_HEADER ^ seq);
        m.poke(u.redo_addr(0, 1), 1);
        m.poke(u.redo_addr(0, 2), 0);
        m.poke(u.redo_addr(0, 3), DATA.0);
        for w in 0..LINE_WORDS {
            m.poke(u.redo_addr(0, 4 + w), 42 + w);
        }
        m.poke(u.redo_addr(0, 3 + LINE_RECORD_WORDS), REDO_TRAILER ^ seq);
        let first = u.recover(&mut m);
        let image_after_first = m.durable_image().unwrap();
        let second = u.recover(&mut m);
        assert_eq!(first, second, "pure replay: twice equals once");
        assert_eq!(m.durable_image().unwrap(), image_after_first);
        assert_eq!(u.stats.recovery_runs, 2);
    }

    #[test]
    fn torn_record_is_dropped() {
        let (mut m, mut u) = persistent_world(1);
        // Header from seq 7 but a stale trailer: structurally torn.
        m.poke(u.redo_addr(0, 0), REDO_HEADER ^ 7);
        m.poke(u.redo_addr(0, 1), 1);
        m.poke(u.redo_addr(0, 3), DATA.0);
        m.poke(u.redo_addr(0, 3 + LINE_RECORD_WORDS), REDO_TRAILER ^ 6);
        let out = u.recover(&mut m);
        assert!(out[0].torn);
        assert_eq!(out[0].replayed_records, 0);
        assert_eq!(m.peek(DATA), 0, "torn record must not be applied");
        assert_eq!(u.stats.torn_records, 1);
    }

    #[test]
    fn insane_count_is_torn_not_a_panic() {
        let (mut m, mut u) = persistent_world(1);
        m.poke(u.redo_addr(0, 0), REDO_HEADER ^ 3);
        m.poke(u.redo_addr(0, 1), u64::MAX); // garbage count
        let out = u.recover(&mut m);
        assert!(out[0].torn);
    }

    #[test]
    fn applied_record_is_skipped() {
        let (machine, shared) = persistent_world(1);
        let r = commit_one_write(machine, shared);
        let (mut m, mut u) = (r.machine, r.shared);
        // Clean shutdown: the lone record is applied, so recovery is a no-op.
        let before = m.peek(DATA);
        let out = u.recover(&mut m);
        assert_eq!(out[0].replayed_records, 0);
        assert!(!out[0].torn);
        assert_eq!(m.peek(DATA), before);
        assert_eq!(u.stats.recovered_records, 0);
    }

    #[test]
    fn crash_between_redo_fence_and_data_fence_recovers_the_commit() {
        // Run once to learn the cycle of the redo fence, then re-run with a
        // power failure planted right after it: the redo record is durable
        // but the data is not, and recovery must finish the job.
        let (machine, shared) = persistent_world(1);
        let clean = commit_one_write(machine, shared);
        assert_eq!(clean.machine.persist_stats().fences, 3);

        let mut mcfg = MachineConfig::table4(1);
        mcfg.persist = Some(PersistConfig::default());
        // Find a fail point: latch immediately after the first fence. The
        // fence count is not directly addressable by cycle here, so instead
        // craft the crash state directly: replay the clean run's *redo
        // window* into a fresh machine while leaving the data line stale —
        // exactly the durable state a crash between fence 1 and fence 2
        // leaves behind.
        let mut m = Machine::new(mcfg);
        let mut u = UstmShared::new(UstmConfig::default(), META, 1, 1024);
        let header = clean.machine.peek(u.redo_addr(0, 0));
        assert_ne!(header, 0);
        for n in 0..UstmShared::REDO_WORDS_PER_CPU {
            let v = clean.machine.peek(u.redo_addr(0, n));
            if v != 0 {
                m.poke(u.redo_addr(0, n), v);
            }
        }
        m.poke(u.redo_addr(0, 2), 0); // crash predates the applied marker
        assert_eq!(m.peek(DATA), 0, "data lost in the crash");
        let out = u.recover(&mut m);
        assert_eq!(out[0].replayed_records, 1);
        assert_eq!(m.peek(DATA), 77, "recovery replays the committed write");
    }
}
