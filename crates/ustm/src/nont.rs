//! Strong atomicity for non-transactional code.
//!
//! With USTM's strong atomicity, plain code needs **no instrumentation**:
//! a conflicting access simply takes a UFO fault. These helpers are the
//! fault handler the STM registers (paper §4.2) — they retry the access,
//! resolving the conflict per a software-defined policy. When there is no
//! conflict, [`nont_load`]/[`nont_store`] are exactly one machine access.

use ufotm_machine::{AccessError, Addr, PlainAccess};
use ufotm_sim::Ctx;

use crate::txn::TxnStatus;
use crate::HasUstm;

/// How the UFO fault handler resolves a non-transactional conflict with an
/// in-flight software transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum NonTFaultPolicy {
    /// Stall the non-transactional access until the owning transaction
    /// releases the line (the paper's default: software transactions are
    /// long-running and almost always older, so they get priority).
    #[default]
    StallUntilRelease,
    /// Kill the conflicting software transaction(s) and proceed once they
    /// unwind.
    AbortConflictors,
}

/// A non-transactional load that honours strong atomicity: on a UFO fault it
/// runs the USTM fault handler and retries.
///
/// # Panics
///
/// Panics on machine errors that cannot occur outside a BTM transaction.
pub fn nont_load<U: HasUstm>(ctx: &mut Ctx<U>, addr: Addr) -> u64 {
    loop {
        let cpu = ctx.cpu();
        match ctx.with(|w| w.machine.load(cpu, addr)) {
            Ok(v) => return v,
            Err(AccessError::UfoFault { .. }) => handle_fault(ctx, addr),
            Err(e) => panic!("unexpected machine error in nonT load: {e}"),
        }
    }
}

/// A non-transactional store that honours strong atomicity (see
/// [`nont_load`]).
///
/// # Panics
///
/// Panics on machine errors that cannot occur outside a BTM transaction.
pub fn nont_store<U: HasUstm>(ctx: &mut Ctx<U>, addr: Addr, value: u64) {
    loop {
        let cpu = ctx.cpu();
        match ctx.with(|w| w.machine.store(cpu, addr, value)) {
            Ok(()) => return,
            Err(AccessError::UfoFault { .. }) => handle_fault(ctx, addr),
            Err(e) => panic!("unexpected machine error in nonT store: {e}"),
        }
    }
}

/// The registered UFO fault handler: wakes `retry`-parked owners, applies
/// the configured policy to live owners, and backs off before the caller
/// retries the access.
fn handle_fault<U: HasUstm>(ctx: &mut Ctx<U>, addr: Addr) {
    let cpu = ctx.cpu();
    let backoff = ctx.with(|w| {
        let m = &mut w.machine;
        let u = w.shared.ustm();
        u.stats.nont_faults += 1;
        let line = addr.line();
        // One otable inspection (the handler reads the bin).
        let bin = u.otable.bin_addr_of(line);
        m.load(cpu, bin).plain("handler bin read");
        if let Some((_, e)) = u.otable.lookup(line) {
            // `owner_cpus` yields an owned bit iterator, so the otable
            // borrow ends here and the slots below can be mutated.
            let owners = e.owner_cpus();
            for o in owners {
                let status = u.slots[o].status;
                match status {
                    TxnStatus::Retrying => u.slots[o].woken = true,
                    TxnStatus::Active
                        if u.config.nont_policy == NonTFaultPolicy::AbortConflictors
                            && u.doom(o, cpu) =>
                    {
                        u.stats.kills_issued += 1;
                    }
                    _ => {}
                }
            }
        }
        u.config.poll_backoff
    });
    ctx.stall(backoff).plain("stall outside txn");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, ThreadFn};

    use crate::barrier::{mop, UstmTxn};
    use crate::txn::{UstmConfig, UstmShared};

    const DATA: Addr = Addr(0);

    fn world(cpus: usize, cfg: UstmConfig) -> (Machine, UstmShared) {
        let machine = Machine::new(MachineConfig::table4(cpus));
        let shared = UstmShared::new(cfg, Addr(1 << 20), cpus, 1024);
        (machine, shared)
    }

    /// The Figure 2b scenario: a non-transactional store adjacent to
    /// transactional data must not be lost when the transaction aborts.
    #[test]
    fn nont_store_stalls_until_txn_releases() {
        let (machine, shared) = world(2, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                txn.begin(ctx);
                txn.write(ctx, DATA, 7).unwrap();
                mop(ctx.work(5_000)); // hold ownership a while
                txn.commit(ctx).unwrap();
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                ctx.set_ufo_enabled(true);
                mop(ctx.work(500)); // fault while the txn holds DATA
                nont_store(ctx, DATA.add_words(1), 99);
                // The txn still held DATA when we started; strong atomicity
                // made us wait, so its commit is already visible.
                assert_eq!(nont_load(ctx, DATA), 7);
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(DATA), 7);
        assert_eq!(r.machine.peek(DATA.add_words(1)), 99);
        assert!(
            r.shared.stats.nont_faults >= 1,
            "the store must have faulted"
        );
    }

    #[test]
    fn nont_read_of_write_owned_line_sees_no_speculative_state() {
        let (machine, shared) = world(2, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                txn.begin(ctx);
                txn.write(ctx, DATA, 1234).unwrap();
                mop(ctx.work(4_000));
                let _ = txn.abort_explicit(ctx);
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                ctx.set_ufo_enabled(true);
                mop(ctx.work(500));
                // Faults (fault-on-read), waits out the abort, then reads
                // the restored value.
                assert_eq!(nont_load(ctx, DATA), 0);
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(DATA), 0);
        assert!(r.shared.stats.nont_faults >= 1);
    }

    #[test]
    fn abort_conflictors_policy_kills_the_txn() {
        let cfg = UstmConfig {
            nont_policy: NonTFaultPolicy::AbortConflictors,
            ..Default::default()
        };
        let (machine, shared) = world(2, cfg);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                txn.begin(ctx);
                txn.write(ctx, DATA, 7).unwrap();
                // Spin at barriers so the doom is noticed.
                for _ in 0..200 {
                    if txn.read(ctx, DATA).is_err() {
                        return; // killed, rolled back
                    }
                    mop(ctx.work(100));
                }
                panic!("transaction should have been killed by nonT store");
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                ctx.set_ufo_enabled(true);
                mop(ctx.work(500));
                nont_store(ctx, DATA, 55);
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(DATA), 55);
        assert!(r.shared.stats.kills_issued >= 1);
        assert_eq!(r.shared.stats.aborts, 1);
    }

    #[test]
    fn no_conflict_means_single_access() {
        let (machine, shared) = world(1, UstmConfig::default());
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            ctx.set_ufo_enabled(true);
            nont_store(ctx, DATA, 5);
            assert_eq!(nont_load(ctx, DATA), 5);
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.shared.stats.nont_faults, 0);
        assert_eq!(r.machine.stats().cpus[0].accesses, 2);
    }
}
