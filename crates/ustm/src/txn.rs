//! Shared USTM state: transaction status slots, configuration, counters.

use ufotm_machine::{Addr, LINE_BYTES};

use crate::otable::Otable;

/// Lifecycle state of a CPU's software transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TxnStatus {
    /// No software transaction on this CPU.
    #[default]
    Inactive,
    /// Executing (possibly with a pending doom — see
    /// [`TxnSlot::doomed_by`]).
    Active,
    /// Past its serialization point, releasing ownership; can no longer be
    /// killed.
    Committing,
    /// Noticed a doom and is unwinding (restoring logged values, releasing
    /// ownership); killers wait for this to finish.
    Aborting,
    /// Issued `retry` (transactional waiting): speculative writes undone,
    /// ownership converted to read, descheduled until a writer wakes it.
    Retrying,
}

/// Per-CPU software-transaction descriptor.
///
/// The descriptor itself is host-side data, but it has a simulated address
/// ([`UstmShared::slot_addr`]) that pollers load, so status polling costs
/// cycles and coherence traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnSlot {
    /// Current lifecycle state.
    pub status: TxnStatus,
    /// Age sequence number of the current/last transaction (smaller =
    /// older).
    pub ts: u64,
    /// Set when an older transaction killed this one (the killer's CPU).
    pub doomed_by: Option<usize>,
    /// Set when a writer woke this transaction out of `retry`.
    pub woken: bool,
}

/// USTM tuning knobs and fixed costs (cycles charged by barriers beyond the
/// simulated memory traffic they generate).
#[derive(Clone, Debug)]
pub struct UstmConfig {
    /// Install UFO protection on owned lines (strong atomicity, §4.2).
    /// `false` gives the paper's weakly-atomic USTM baseline.
    pub strong_atomicity: bool,
    /// Fixed cost of `ustm_begin` (checkpoint, descriptor setup).
    pub begin_cost: u64,
    /// Barrier fast path: line already owned with sufficient permission.
    pub barrier_hit_cost: u64,
    /// One compare&swap / chain-lock acquisition on an otable bin.
    pub cas_cost: u64,
    /// Walking one chained entry past the bin head.
    pub chain_entry_cost: u64,
    /// Snapshotting a line into the undo log (beyond the log-write traffic).
    pub log_cost: u64,
    /// Fixed commit/abort cost (beyond per-entry release traffic).
    pub finish_cost: u64,
    /// Cycles a stalled transaction waits between status polls.
    pub poll_backoff: u64,
    /// How non-transactional UFO faults are resolved.
    pub nont_policy: crate::nont::NonTFaultPolicy,
}

impl Default for UstmConfig {
    fn default() -> Self {
        UstmConfig {
            strong_atomicity: true,
            begin_cost: 40,
            barrier_hit_cost: 6,
            cas_cost: 12,
            chain_entry_cost: 8,
            log_cost: 10,
            finish_cost: 40,
            poll_backoff: 40,
            nont_policy: crate::nont::NonTFaultPolicy::StallUntilRelease,
        }
    }
}

impl UstmConfig {
    /// The paper's weakly-atomic USTM baseline (no UFO operations).
    #[must_use]
    pub fn weak() -> Self {
        UstmConfig {
            strong_atomicity: false,
            ..UstmConfig::default()
        }
    }
}

/// Aggregate USTM event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UstmStats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (all causes).
    pub aborts: u64,
    /// Kill requests issued by older transactions.
    pub kills_issued: u64,
    /// Poll iterations spent stalling (waiting for a conflictor or victim).
    pub stall_polls: u64,
    /// Otable lookups that had to walk a hash chain (aliasing indicator).
    pub chain_walks: u64,
    /// Non-transactional UFO faults handled by the USTM runtime.
    pub nont_faults: u64,
    /// Transactions entering `retry` (transactional waiting).
    pub retries_entered: u64,
    /// `retry` sleepers woken by writers.
    pub retries_woken: u64,
    /// Cycles charged inside read/write barriers (otable CAS + bin traffic,
    /// chain walks, UFO bit updates, undo logging, barrier hits) — the
    /// Table 4-style "instrumentation" share of a run.
    pub barrier_cycles: u64,
    /// Longest otable hash chain observed by any barrier (aliasing
    /// indicator alongside `chain_walks`).
    pub max_chain_seen: u64,
    /// Redo records written durably at commit (persistent runs only).
    pub redo_records: u64,
    /// Times [`UstmShared::recover`] was invoked.
    pub recovery_runs: u64,
    /// Redo records replayed by recovery (valid and unapplied).
    pub recovered_records: u64,
    /// Data lines rewritten by recovery replay.
    pub recovered_lines: u64,
    /// Redo records dropped by recovery as torn (partially durable).
    pub torn_records: u64,
}

/// All shared USTM state, embedded in the simulation world.
#[derive(Clone, Debug)]
pub struct UstmShared {
    /// Tuning knobs.
    pub config: UstmConfig,
    /// The ownership table.
    pub otable: Otable,
    /// Per-CPU transaction descriptors.
    pub slots: Vec<TxnSlot>,
    /// Event counters.
    pub stats: UstmStats,
    seq: u64,
    slot_base: Addr,
    log_base: Addr,
    redo_base: Addr,
    log_words_per_cpu: u64,
    cpus: usize,
}

impl UstmShared {
    /// Words of simulated memory USTM needs for `cpus` CPUs and
    /// `otable_bins` bins: the bin array, one status line per CPU, and a
    /// per-CPU undo-log window.
    #[must_use]
    pub fn required_words(cpus: usize, otable_bins: u64) -> u64 {
        let otable = otable_bins * crate::otable::BIN_BYTES / 8;
        let slots = cpus as u64 * (LINE_BYTES / 8);
        let logs = cpus as u64 * Self::LOG_WORDS_PER_CPU;
        otable + slots + logs
    }

    /// Words needed on a *persistent* machine: [`UstmShared::required_words`]
    /// plus one durable redo window per CPU (laid out directly after the
    /// undo logs). Volatile runs never touch the redo region, so reserving
    /// it only on persistent runs keeps volatile layouts byte-identical to
    /// earlier revisions.
    #[must_use]
    pub fn required_words_durable(cpus: usize, otable_bins: u64) -> u64 {
        Self::required_words(cpus, otable_bins) + cpus as u64 * Self::REDO_WORDS_PER_CPU
    }

    const LOG_WORDS_PER_CPU: u64 = 1024;

    /// Words in each CPU's durable redo window (bounds the write set of a
    /// single durable commit — see the `recovery` module).
    pub(crate) const REDO_WORDS_PER_CPU: u64 = 512;

    /// Creates the shared state, laying out its metadata starting at the
    /// simulated address `base` (reserve
    /// [`UstmShared::required_words`]` * 8` bytes there).
    ///
    /// # Panics
    ///
    /// Panics if `otable_bins` is not a power of two.
    #[must_use]
    pub fn new(config: UstmConfig, base: Addr, cpus: usize, otable_bins: u64) -> Self {
        let otable = Otable::new(base, otable_bins);
        let slot_base = Addr(base.0 + otable.footprint_bytes());
        let log_base = Addr(slot_base.0 + cpus as u64 * LINE_BYTES);
        let redo_base = Addr(log_base.0 + cpus as u64 * Self::LOG_WORDS_PER_CPU * 8);
        UstmShared {
            config,
            otable,
            slots: vec![TxnSlot::default(); cpus],
            stats: UstmStats::default(),
            seq: 0,
            slot_base,
            log_base,
            redo_base,
            log_words_per_cpu: Self::LOG_WORDS_PER_CPU,
            cpus,
        }
    }

    /// The simulated address of `cpu`'s status word (one line per CPU to
    /// avoid false sharing among pollers).
    #[must_use]
    pub fn slot_addr(&self, cpu: usize) -> Addr {
        Addr(self.slot_base.0 + cpu as u64 * LINE_BYTES)
    }

    /// The simulated address for `cpu`'s `n`-th log append (wrapping
    /// window).
    #[must_use]
    pub fn log_addr(&self, cpu: usize, n: u64) -> Addr {
        let off = (n % self.log_words_per_cpu) * 8;
        Addr(self.log_base.0 + cpu as u64 * self.log_words_per_cpu * 8 + off)
    }

    /// The simulated address of word `n` in `cpu`'s durable redo window.
    /// Only meaningful on persistent runs (the region past
    /// [`UstmShared::required_words`] is reserved only there).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside the window.
    #[must_use]
    pub fn redo_addr(&self, cpu: usize, n: u64) -> Addr {
        assert!(
            n < Self::REDO_WORDS_PER_CPU,
            "redo window offset {n} out of range"
        );
        Addr(self.redo_base.0 + cpu as u64 * Self::REDO_WORDS_PER_CPU * 8 + n * 8)
    }

    /// Allocates the next age sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Number of CPUs this state was built for.
    #[must_use]
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Marks `victim`'s transaction as killed by `killer` (no effect unless
    /// the victim is `Active` and not already doomed). Returns whether the
    /// doom landed.
    pub fn doom(&mut self, victim: usize, killer: usize) -> bool {
        let s = &mut self.slots[victim];
        if s.status == TxnStatus::Active && s.doomed_by.is_none() {
            s.doomed_by = Some(killer);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> UstmShared {
        UstmShared::new(UstmConfig::default(), Addr(0x10000), 4, 64)
    }

    #[test]
    fn layout_is_disjoint() {
        let s = shared();
        let otable_end = s.otable.bin_addr(63).0 + 16;
        assert!(s.slot_addr(0).0 >= otable_end);
        assert!(s.slot_addr(3).0 < s.log_addr(0, 0).0);
        // Slot lines don't alias.
        assert_ne!(s.slot_addr(0).line(), s.slot_addr(1).line());
        // Log windows are per-CPU and wrap.
        assert_ne!(s.log_addr(0, 0), s.log_addr(1, 0));
        assert_eq!(s.log_addr(0, 0), s.log_addr(0, 1024));
    }

    #[test]
    fn required_words_covers_layout() {
        let words = UstmShared::required_words(4, 64);
        let s = shared();
        let last = s.log_addr(3, 1023);
        assert!(last.0 + 8 <= 0x10000 + words * 8);
    }

    #[test]
    fn redo_windows_follow_undo_logs() {
        let s = shared();
        assert!(s.redo_addr(0, 0).0 >= s.log_addr(3, 1023).0 + 8);
        assert_ne!(s.redo_addr(0, 0), s.redo_addr(1, 0));
        let words = UstmShared::required_words_durable(4, 64);
        let last = s.redo_addr(3, UstmShared::REDO_WORDS_PER_CPU - 1);
        assert!(last.0 + 8 <= 0x10000 + words * 8);
    }

    #[test]
    #[should_panic(expected = "redo window offset")]
    fn redo_addr_rejects_out_of_window_offsets() {
        let _ = shared().redo_addr(0, UstmShared::REDO_WORDS_PER_CPU);
    }

    #[test]
    fn seq_is_monotonic() {
        let mut s = shared();
        let a = s.next_seq();
        let b = s.next_seq();
        assert!(b > a);
    }

    #[test]
    fn doom_only_lands_on_active() {
        let mut s = shared();
        assert!(!s.doom(1, 0), "inactive victim");
        s.slots[1].status = TxnStatus::Active;
        assert!(s.doom(1, 0));
        assert!(!s.doom(1, 2), "already doomed");
        assert_eq!(s.slots[1].doomed_by, Some(0));
        s.slots[2].status = TxnStatus::Committing;
        assert!(!s.doom(2, 0), "committing txns are past their kill window");
    }
}
