//! Transactional waiting: the `retry` primitive (paper §6).
//!
//! A transaction that discovers (from transactionally-read data) that it
//! cannot make progress issues `retry`: its speculative writes are undone,
//! all its ownership converts to *read*, and it parks in the `Retrying`
//! state. When a later transaction's write barrier (or a non-transactional
//! store's fault handler) touches a line the sleeper had read, the sleeper
//! is woken, releases its remaining ownership, and restarts as if after an
//! abort — eliminating lost-wakeup bugs without any busy polling of the
//! condition itself.

use ufotm_machine::UfoBits;
use ufotm_sim::Ctx;

use crate::barrier::{mop, UstmTxn};
use crate::otable::Perm;
use crate::txn::TxnStatus;
use crate::{HasUstm, UstmAbort};

/// Parks the transaction until a writer updates something it read, then
/// rolls it back and returns [`UstmAbort::RetryWoken`] so a surrounding
/// [`UstmTxn::run`] loop reissues it.
///
/// A `retry` with an empty read set can never be woken by a data write; it
/// is woken immediately (a spurious wakeup, which `retry` semantics permit)
/// rather than deadlocking.
pub fn retry_wait<U: HasUstm>(txn: &mut UstmTxn, ctx: &mut Ctx<U>) -> UstmAbort {
    let cpu = txn.cpu();
    // Phase 1: undo speculative writes, demote ownership to read, park.
    let owned: Vec<_> = txn.owned_lines().collect();
    let undo = txn.take_undo();
    for (line, words) in undo.into_iter().rev() {
        ctx.with(|w| {
            let m = &mut w.machine;
            for (i, word) in words.iter().enumerate() {
                mop(m.store(cpu, line.base_addr().add_words(i as u64), *word));
            }
        });
    }
    ctx.with(|w| {
        let m = &mut w.machine;
        let u = w.shared.ustm();
        let strong = u.config.strong_atomicity;
        for &(line, perm) in &owned {
            if perm == Perm::Write {
                u.otable.demote(line, cpu);
                if strong {
                    mop(m.set_ufo_bits(cpu, line.base_addr(), UfoBits::FAULT_ON_WRITE));
                }
            }
        }
        u.slots[cpu].status = TxnStatus::Retrying;
        u.slots[cpu].woken = owned.is_empty(); // spurious wake, never deadlock
        let slot_addr = u.slot_addr(cpu);
        mop(m.store(cpu, slot_addr, 3));
        u.stats.retries_entered += 1;
    });

    // Phase 2: sleep until a writer wakes us.
    loop {
        let woken = ctx.with(|w| {
            let m = &mut w.machine;
            let u = w.shared.ustm();
            let slot_addr = u.slot_addr(cpu);
            mop(m.load(cpu, slot_addr));
            u.slots[cpu].woken
        });
        if woken {
            break;
        }
        let backoff = ctx.with(|w| w.shared.ustm().config.poll_backoff * 4);
        mop(ctx.stall(backoff));
    }

    // Phase 3: release remaining ownership and retire; the caller restarts.
    txn.finish_retry(ctx);
    ctx.with(|w| {
        let u = w.shared.ustm();
        u.stats.retries_woken += 1;
    });
    UstmAbort::RetryWoken
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Addr, Machine, MachineConfig};
    use ufotm_sim::{Sim, ThreadFn};

    use crate::txn::{UstmConfig, UstmShared};

    const FLAG: Addr = Addr(0);
    const DATA: Addr = Addr(1024);

    fn world(cpus: usize) -> (Machine, UstmShared) {
        let machine = Machine::new(MachineConfig::table4(cpus));
        let shared = UstmShared::new(UstmConfig::default(), Addr(1 << 20), cpus, 1024);
        (machine, shared)
    }

    /// Consumer retries until the producer sets the flag — no lost wakeup.
    #[test]
    fn producer_wakes_retrying_consumer() {
        let (machine, shared) = world(2);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                // Consumer: wait for FLAG != 0, then consume DATA.
                let mut txn = UstmTxn::new(0);
                let got = txn.run(ctx, |t, ctx| {
                    let flag = t.read(ctx, FLAG)?;
                    if flag == 0 {
                        return Err(retry_wait(t, ctx));
                    }
                    t.read(ctx, DATA)
                });
                assert_eq!(got, 42);
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                mop(ctx.work(20_000)); // let the consumer park first
                let mut txn = UstmTxn::new(1);
                txn.run(ctx, |t, ctx| {
                    t.write(ctx, DATA, 42)?;
                    t.write(ctx, FLAG, 1)
                });
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.shared.stats.retries_entered, 1);
        assert_eq!(r.shared.stats.retries_woken, 1);
        assert_eq!(r.shared.stats.commits, 2);
        assert_eq!(r.shared.otable.live_entries(), 0);
    }

    /// `retry` undoes the transaction's own speculative writes before
    /// parking.
    #[test]
    fn retry_undoes_writes_before_parking() {
        let (machine, shared) = world(2);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                let mut first_attempt = true;
                txn.run(ctx, |t, ctx| {
                    let flag = t.read(ctx, FLAG)?;
                    if first_attempt {
                        first_attempt = false;
                        t.write(ctx, DATA, 777)?; // speculative, must undo
                        assert_eq!(flag, 0);
                        return Err(retry_wait(t, ctx));
                    }
                    Ok(())
                });
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                mop(ctx.work(20_000));
                // Observe DATA before waking the sleeper: the speculative
                // 777 must not be visible.
                assert_eq!(crate::nont::nont_load(ctx, DATA), 0);
                let mut txn = UstmTxn::new(1);
                txn.run(ctx, |t, ctx| t.write(ctx, FLAG, 1));
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(DATA), 0);
        assert_eq!(r.shared.stats.retries_woken, 1);
    }

    /// The wake fires at the waker's *write barrier* (ownership
    /// acquisition), not at its commit — so a sleeper can restart while
    /// the waker is still active and uncommitted. The restarted attempt
    /// must then lose the conflict-resolution race (or wait it out) and
    /// may observe only the committed flag value, never a torn one.
    #[test]
    fn wake_racing_with_wakers_commit_stays_consistent() {
        let (machine, shared) = world(2);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                let got = txn.run(ctx, |t, ctx| {
                    let flag = t.read(ctx, FLAG)?;
                    if flag == 0 {
                        return Err(retry_wait(t, ctx));
                    }
                    // The flag is only ever published together with DATA.
                    t.read(ctx, DATA)
                });
                assert_eq!(got, 42);
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                mop(ctx.work(20_000)); // let the consumer park first
                let mut txn = UstmTxn::new(1);
                txn.run(ctx, |t, ctx| {
                    t.write(ctx, DATA, 42)?;
                    t.write(ctx, FLAG, 1)?;
                    // Long post-wake window: the sleeper has been woken by
                    // the FLAG acquisition above and restarts while this
                    // transaction is still running.
                    mop(ctx.work(20_000));
                    Ok(())
                });
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(FLAG), 1);
        assert_eq!(r.machine.peek(DATA), 42);
        assert_eq!(r.shared.stats.commits, 2);
        // The consumer may be killed and re-park while the producer drains,
        // but every park must be matched by a wake — nothing sleeps forever.
        assert!(r.shared.stats.retries_entered >= 1);
        assert_eq!(r.shared.stats.retries_entered, r.shared.stats.retries_woken);
        assert_eq!(r.shared.otable.live_entries(), 0);
    }

    /// A consumer that parks repeatedly (condition not yet satisfied after
    /// a wake) accounts one `retries_entered` and one `retries_woken` per
    /// park — the counters stay balanced across multiple rounds.
    #[test]
    fn repeated_parks_balance_entered_and_woken_counters() {
        let (machine, shared) = world(2);
        let r = Sim::new(machine, shared).run(vec![
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                let mut txn = UstmTxn::new(0);
                let got = txn.run(ctx, |t, ctx| {
                    let flag = t.read(ctx, FLAG)?;
                    if flag < 2 {
                        return Err(retry_wait(t, ctx));
                    }
                    t.read(ctx, DATA)
                });
                assert_eq!(got, 2);
            }) as ThreadFn<UstmShared>,
            Box::new(|ctx: &mut Ctx<UstmShared>| {
                // Two separate publications, far enough apart that the
                // consumer parks before each: first wake leaves the
                // condition unsatisfied (flag == 1 < 2), so it parks again.
                let mut txn = UstmTxn::new(1);
                mop(ctx.work(20_000));
                txn.run(ctx, |t, ctx| {
                    t.write(ctx, DATA, 1)?;
                    t.write(ctx, FLAG, 1)
                });
                mop(ctx.work(40_000));
                txn.run(ctx, |t, ctx| {
                    t.write(ctx, DATA, 2)?;
                    t.write(ctx, FLAG, 2)
                });
            }) as ThreadFn<UstmShared>,
        ]);
        assert_eq!(r.machine.peek(FLAG), 2);
        assert!(
            r.shared.stats.retries_entered >= 2,
            "must have parked at least twice"
        );
        assert_eq!(r.shared.stats.retries_entered, r.shared.stats.retries_woken);
        assert_eq!(r.shared.stats.commits, 3);
        assert_eq!(r.shared.otable.live_entries(), 0);
    }

    /// Empty read set: spurious wake instead of deadlock.
    #[test]
    fn empty_read_set_wakes_spuriously() {
        let (machine, shared) = world(1);
        let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<UstmShared>| {
            let mut txn = UstmTxn::new(0);
            let mut attempts = 0;
            txn.run(ctx, |t, ctx| {
                attempts += 1;
                if attempts == 1 {
                    return Err(retry_wait(t, ctx));
                }
                Ok(())
            });
            assert_eq!(attempts, 2);
        }) as ThreadFn<UstmShared>]);
        assert_eq!(r.shared.stats.retries_entered, 1);
    }
}
