//! # `ufotm-ustm` — USTM, the UFO software transactional memory
//!
//! USTM (paper §4.1–4.2) is an eager-versioning, eager-conflict-detection,
//! cache-line-granularity STM built around a shared **ownership table**
//! ([`Otable`]): one record per line currently read or written by any
//! software transaction, holding the line's tag, the permission held, and
//! the owner set. Read/write barriers acquire ownership (and log old values
//! for writes) before the data access; conflicts are resolved age-ordered —
//! a younger transaction stalls, an older one aborts its conflictors and
//! waits for them to unwind (USTM is blocking).
//!
//! **Strong atomicity** (§4.2) is what makes USTM special: barriers install
//! UFO protection on every transactionally-held line (read barrier ⇒
//! fault-on-write; write barrier ⇒ fault-on-read + fault-on-write), and the
//! transaction runs with its own UFO faults disabled. Any non-transactional
//! access that would violate isolation takes a hardware fault *before* it
//! completes and is resolved by a software policy ([`NonTFaultPolicy`]) —
//! no instrumentation of non-transactional code, and no overhead when there
//! is no conflict. The same mechanism is what lets the hybrid's hardware
//! transactions run uninstrumented (crate `ufotm-core`).
//!
//! The otable and transaction-status array live at *simulated addresses*:
//! every barrier issues real simulated memory traffic, so STM overhead,
//! cache pressure, and the HyTM pathologies all emerge from the machine
//! model rather than being hard-coded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod nont;
mod otable;
mod recovery;
mod retry;
mod txn;

pub use barrier::UstmTxn;
pub use nont::{nont_load, nont_store, NonTFaultPolicy};
pub use otable::{Otable, OtableEntry, OtableOccupancy, Perm};
pub use recovery::{CpuRecovery, REDO_MAX_LINES};
pub use retry::retry_wait;
pub use txn::{TxnSlot, TxnStatus, UstmConfig, UstmShared, UstmStats};

/// Gives USTM access to its shared state inside a larger world type.
///
/// The simulation engine parameterizes the world over one shared-state type;
/// harnesses that combine several TM systems (the `ufotm-core` crate) embed
/// a [`UstmShared`] and implement this trait for the combined type.
pub trait HasUstm {
    /// The embedded USTM shared state.
    fn ustm(&mut self) -> &mut UstmShared;
}

impl HasUstm for UstmShared {
    fn ustm(&mut self) -> &mut UstmShared {
        self
    }
}

/// Why a USTM operation could not proceed; the transaction must roll back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UstmAbort {
    /// This transaction was killed by an older conflicting transaction (the
    /// killer's CPU is recorded so the retry can wait for it to retire).
    Killed {
        /// The CPU whose transaction killed us.
        by: usize,
    },
    /// The transaction executed an explicit abort.
    Explicit,
    /// The transaction issued `retry` (transactional waiting, paper §6) and
    /// has been woken; it restarts as if after an abort.
    RetryWoken,
}

impl std::fmt::Display for UstmAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UstmAbort::Killed { by } => write!(f, "killed by STM transaction on cpu {by}"),
            UstmAbort::Explicit => f.write_str("explicit STM abort"),
            UstmAbort::RetryWoken => f.write_str("woken from transactional retry"),
        }
    }
}

impl std::error::Error for UstmAbort {}
