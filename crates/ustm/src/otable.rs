//! The ownership table (paper Figure 3 / Algorithm 1).
//!
//! Logically a chained hash table with one record per line currently owned
//! by some software transaction. The record data is kept host-side for
//! convenience, but each hash bin has a *simulated address*, and barriers
//! issue real simulated loads/stores against it — so otable traffic costs
//! cycles, occupies cache, and (for HyTM, which reads bins transactionally)
//! inflates hardware-transaction footprints and causes false conflicts when
//! unrelated lines alias the same bin. Bins are 16 bytes, so four bins share
//! a cache line, exactly the kind of aliasing the paper discusses.
//!
//! In the paper, racy bin updates are protected by per-chain locks and
//! CAS; in this model each update executes as one atomic scheduled
//! operation, and the CAS/lock cost is charged in cycles by the barrier
//! code.

use ufotm_machine::{Addr, BitIter, LineAddr};

/// Owner masks are CPU sets, and CPU sets are `u64` bitmasks — the checked
/// shift lives in one place, [`ufotm_machine::cpu_bit`], shared with the
/// machine's directory and live-transaction masks. (A raw `1 << cpu` would
/// be a masked shift in release builds, silently aliasing CPU 64 onto
/// CPU 0 and corrupting ownership — the PR-4 overflow class.)
use ufotm_machine::cpu_bit as owner_bit;

/// Permission a transaction set holds on a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Perm {
    /// One or more transactions may read the line.
    Read,
    /// Exactly one transaction may read and write the line.
    Write,
}

/// One ownership record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OtableEntry {
    /// The owned line.
    pub line: LineAddr,
    /// Permission held.
    pub perm: Perm,
    /// Bitmask of owner CPUs (multiple only for [`Perm::Read`]).
    pub owners: u64,
}

impl OtableEntry {
    /// Whether `cpu` is among the owners.
    #[must_use]
    pub fn owned_by(&self, cpu: usize) -> bool {
        self.owners & owner_bit(cpu) != 0
    }

    /// Whether `cpu` is the *sole* owner.
    #[must_use]
    pub fn sole_owner(&self, cpu: usize) -> bool {
        self.owners == owner_bit(cpu)
    }

    /// Iterates over owner CPU ids (walks only the set bits of the owner
    /// mask, so cost tracks the actual owner count).
    pub fn owner_cpus(&self) -> BitIter {
        BitIter::new(self.owners)
    }
}

/// The shared ownership table.
#[derive(Clone, Debug)]
pub struct Otable {
    bins: Vec<Vec<OtableEntry>>,
    base: Addr,
    mask: u64,
}

/// Bytes per bin (two words: tag+metadata, chain pointer).
pub(crate) const BIN_BYTES: u64 = 16;

impl Otable {
    /// Creates a table with `bins` bins (a power of two) whose bin array
    /// starts at simulated address `base` (the caller reserves
    /// `bins * 16` bytes there).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is not a power of two.
    #[must_use]
    pub fn new(base: Addr, bins: u64) -> Self {
        assert!(bins.is_power_of_two(), "otable bins must be a power of two");
        Otable {
            bins: vec![Vec::new(); bins as usize],
            base,
            mask: bins - 1,
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> u64 {
        self.bins.len() as u64
    }

    /// Bytes of simulated memory the bin array occupies.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.bins() * BIN_BYTES
    }

    /// The hash bin index for a line.
    #[must_use]
    pub fn index_of(&self, line: LineAddr) -> u64 {
        // Fibonacci hashing over the line number.
        (line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask
    }

    /// The simulated address of a bin (what barriers load/store).
    #[must_use]
    pub fn bin_addr(&self, index: u64) -> Addr {
        Addr(self.base.0 + index * BIN_BYTES)
    }

    /// The simulated address of the bin covering `line`.
    #[must_use]
    pub fn bin_addr_of(&self, line: LineAddr) -> Addr {
        self.bin_addr(self.index_of(line))
    }

    /// The entry for `line`, if present, with its chain position (0 = head).
    #[must_use]
    pub fn lookup(&self, line: LineAddr) -> Option<(usize, OtableEntry)> {
        let bin = &self.bins[self.index_of(line) as usize];
        bin.iter().position(|e| e.line == line).map(|i| (i, bin[i]))
    }

    /// Chain length of the bin covering `line` (0 = empty bin).
    #[must_use]
    pub fn chain_len(&self, line: LineAddr) -> usize {
        self.bins[self.index_of(line) as usize].len()
    }

    /// Inserts a fresh entry for `line`.
    ///
    /// # Panics
    ///
    /// Panics if an entry for `line` already exists (callers look up first).
    pub fn insert(&mut self, line: LineAddr, perm: Perm, cpu: usize) {
        let idx = self.index_of(line) as usize;
        assert!(
            self.bins[idx].iter().all(|e| e.line != line),
            "duplicate otable insert for {line:?}"
        );
        self.bins[idx].insert(
            0,
            OtableEntry {
                line,
                perm,
                owners: owner_bit(cpu),
            },
        );
    }

    /// Adds `cpu` as a reader of an existing read entry.
    ///
    /// # Panics
    ///
    /// Panics if there is no read entry for `line`.
    pub fn add_reader(&mut self, line: LineAddr, cpu: usize) {
        let idx = self.index_of(line) as usize;
        let e = self.bins[idx]
            .iter_mut()
            .find(|e| e.line == line)
            .expect("add_reader on missing entry");
        assert_eq!(e.perm, Perm::Read, "add_reader on write entry");
        e.owners |= owner_bit(cpu);
    }

    /// Upgrades `cpu`'s sole read entry to write permission.
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or `cpu` is not the sole owner.
    pub fn upgrade(&mut self, line: LineAddr, cpu: usize) {
        let idx = self.index_of(line) as usize;
        let e = self.bins[idx]
            .iter_mut()
            .find(|e| e.line == line)
            .expect("upgrade on missing entry");
        assert!(e.sole_owner(cpu), "upgrade requires sole ownership");
        e.perm = Perm::Write;
    }

    /// Demotes `cpu`'s sole write entry back to read permission (the
    /// `retry` path: the sleeper keeps watching the lines it read).
    ///
    /// # Panics
    ///
    /// Panics if the entry is missing or not a write entry solely owned by
    /// `cpu`.
    pub fn demote(&mut self, line: LineAddr, cpu: usize) {
        let idx = self.index_of(line) as usize;
        let e = self.bins[idx]
            .iter_mut()
            .find(|e| e.line == line)
            .expect("demote on missing entry");
        assert!(
            e.sole_owner(cpu) && e.perm == Perm::Write,
            "demote requires sole write ownership"
        );
        e.perm = Perm::Read;
    }

    /// Releases `cpu`'s ownership of `line`; removes the entry when the
    /// owner set drains. Returns `true` if the entry was removed entirely.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` does not own `line`.
    pub fn release(&mut self, line: LineAddr, cpu: usize) -> bool {
        let idx = self.index_of(line) as usize;
        let pos = self.bins[idx]
            .iter()
            .position(|e| e.line == line)
            .expect("release of unowned line");
        let e = &mut self.bins[idx][pos];
        assert!(e.owned_by(cpu), "cpu {cpu} does not own {line:?}");
        e.owners &= !owner_bit(cpu);
        if e.owners == 0 {
            self.bins[idx].remove(pos);
            true
        } else {
            false
        }
    }

    /// Total live entries (for stats and tests).
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Whether any entry in the bin covering `line` belongs to a different
    /// line (i.e. a lookup there would walk a chain / suffer aliasing).
    #[must_use]
    pub fn aliases(&self, line: LineAddr) -> bool {
        self.bins[self.index_of(line) as usize]
            .iter()
            .any(|e| e.line != line)
    }

    /// A point-in-time chain-length / aliasing summary of the table.
    #[must_use]
    pub fn occupancy(&self) -> OtableOccupancy {
        let mut occ = OtableOccupancy {
            bins: self.bins(),
            ..OtableOccupancy::default()
        };
        for bin in &self.bins {
            let len = bin.len() as u64;
            occ.live_entries += len;
            if len > 0 {
                occ.occupied_bins += 1;
            }
            if len > 1 {
                occ.aliased_bins += 1;
            }
            occ.max_chain = occ.max_chain.max(len);
        }
        occ
    }
}

/// A snapshot of how full and how aliased the otable is (all counts in
/// entries/bins; see [`Otable::occupancy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OtableOccupancy {
    /// Total hash bins.
    pub bins: u64,
    /// Live entries across all bins.
    pub live_entries: u64,
    /// Bins holding at least one entry.
    pub occupied_bins: u64,
    /// Bins holding two or more entries (lookups there walk a chain).
    pub aliased_bins: u64,
    /// Longest chain in the table.
    pub max_chain: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Otable {
        Otable::new(Addr(0x1000), 64)
    }

    #[test]
    fn insert_lookup_release() {
        let mut t = table();
        let l = LineAddr(7);
        assert!(t.lookup(l).is_none());
        t.insert(l, Perm::Read, 2);
        let (pos, e) = t.lookup(l).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(e.perm, Perm::Read);
        assert!(e.owned_by(2) && e.sole_owner(2));
        assert!(t.release(l, 2));
        assert!(t.lookup(l).is_none());
        assert_eq!(t.live_entries(), 0);
    }

    #[test]
    fn shared_readers_then_drain() {
        let mut t = table();
        let l = LineAddr(9);
        t.insert(l, Perm::Read, 0);
        t.add_reader(l, 1);
        t.add_reader(l, 5);
        let (_, e) = t.lookup(l).unwrap();
        assert_eq!(e.owner_cpus().collect::<Vec<_>>(), vec![0, 1, 5]);
        assert!(!t.release(l, 1));
        assert!(!t.release(l, 0));
        assert!(t.release(l, 5));
    }

    #[test]
    fn upgrade_requires_sole_ownership() {
        let mut t = table();
        let l = LineAddr(3);
        t.insert(l, Perm::Read, 0);
        t.upgrade(l, 0);
        assert_eq!(t.lookup(l).unwrap().1.perm, Perm::Write);
    }

    #[test]
    #[should_panic(expected = "sole ownership")]
    fn upgrade_with_other_readers_panics() {
        let mut t = table();
        let l = LineAddr(3);
        t.insert(l, Perm::Read, 0);
        t.add_reader(l, 1);
        t.upgrade(l, 0);
    }

    #[test]
    fn chains_handle_aliasing_lines() {
        let mut t = Otable::new(Addr(0), 2); // tiny table: heavy aliasing
        let mut inserted = Vec::new();
        for i in 0..8 {
            let l = LineAddr(i);
            t.insert(l, Perm::Read, 0);
            inserted.push(l);
        }
        assert_eq!(t.live_entries(), 8);
        for l in &inserted {
            assert!(t.lookup(*l).is_some(), "chain lookup failed for {l:?}");
        }
        assert!(inserted.iter().any(|&l| t.aliases(l)));
        for l in inserted {
            t.release(l, 0);
        }
        assert_eq!(t.live_entries(), 0);
    }

    #[test]
    fn bin_addresses_are_16_bytes_apart() {
        let t = table();
        assert_eq!(t.bin_addr(0), Addr(0x1000));
        assert_eq!(t.bin_addr(1), Addr(0x1010));
        // Four bins share one 64-byte cache line.
        assert_eq!(t.bin_addr(0).line(), t.bin_addr(3).line());
        assert_ne!(t.bin_addr(0).line(), t.bin_addr(4).line());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_insert_panics() {
        let mut t = table();
        t.insert(LineAddr(1), Perm::Read, 0);
        t.insert(LineAddr(1), Perm::Read, 1);
    }

    #[test]
    fn full_width_owner_masks_do_not_alias() {
        // Regression: cpu 63 uses the top mask bit; releasing it must not
        // disturb cpu 0 (which a masked `1 << 64`-style overflow would hit).
        let mut t = table();
        let l = LineAddr(11);
        t.insert(l, Perm::Read, 0);
        t.add_reader(l, 63);
        let (_, e) = t.lookup(l).unwrap();
        assert!(e.owned_by(0) && e.owned_by(63) && !e.owned_by(1));
        assert_eq!(e.owner_cpus().collect::<Vec<_>>(), vec![0, 63]);
        assert!(!t.release(l, 63));
        let (_, e) = t.lookup(l).unwrap();
        assert!(e.owned_by(0), "release of cpu 63 must not clear cpu 0");
        assert!(!e.owned_by(63));
        assert!(t.release(l, 0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_is_rejected_in_debug() {
        let mut t = table();
        t.insert(LineAddr(1), Perm::Read, 64);
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = table();
        for i in 0..1000 {
            let idx = t.index_of(LineAddr(i));
            assert!(idx < t.bins());
            assert_eq!(idx, t.index_of(LineAddr(i)));
        }
    }
}
