//! The backend abstraction: one workload, two execution substrates.
//!
//! Every STAMP workload is written once against [`TmBackend`] /
//! [`TxScope`] and runs unchanged on either substrate:
//!
//! * **Simulated** — the deterministic cycle-charged machine. The scope
//!   delegates to [`Tx`](crate::Tx) under a
//!   [`TmThread`](crate::TmThread) driver, every access is charged
//!   simulated cycles, and runs replay bit-for-bit from a seed. This is
//!   the substrate all of the paper's figures are measured on.
//! * **Native** — real host atomics on real OS threads (the
//!   `ufotm-native` crate's TL2), with zero simulator involvement. Runs
//!   are *not* deterministic; they exist to measure wall-clock ops/sec
//!   and to cross-validate the simulated TL2 against an implementation
//!   whose races are real.
//!
//! The split mirrors the paper's Figure 4 property (each transaction
//! compiled once per execution mode): the workload body is generic over
//! the backend, and the backend supplies transactional semantics,
//! plain (non-transactional) access, compute charging, and the phase
//! barrier.
//!
//! # Abort handling
//!
//! Backends retry internally: [`TmBackend::transaction`] runs the body
//! as many times as it takes to commit and only then returns. The body
//! cannot observe *which* abort happened — scope methods return the
//! opaque [`Stop`] token and the real abort reason stays inside the
//! backend (exactly like [`TxAbort`](crate::TxAbort) never escaping
//! [`TmThread::transaction`](crate::TmThread::transaction)). `?` on
//! every scope call is therefore the whole protocol a body must follow.

use ufotm_machine::Addr;

/// Opaque "this attempt must stop" token returned by [`TxScope`]
/// methods. The real abort reason is backend-internal; the body's only
/// job is to propagate `Stop` out with `?` so the backend can retry.
///
/// Constructed by backend implementations only; a body has no reason to
/// build one itself (returning a hand-made `Stop` from a body is a
/// protocol violation and backends may panic on it).
#[derive(Clone, Copy, Debug)]
pub struct Stop;

/// The transactional scope a body runs inside: reads, writes,
/// allocation and compute, all abortable.
///
/// Addresses are the same [`Addr`] space on both substrates (the native
/// backend maps them onto a word-indexed host heap), so setup/verify
/// code can share address arithmetic with the workload body.
pub trait TxScope {
    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`Stop`] when the attempt must abort (conflict, kill, validation
    /// failure — backend-specific).
    fn read(&mut self, addr: Addr) -> Result<u64, Stop>;

    /// Transactionally writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`Stop`] when the attempt must abort.
    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop>;

    /// Allocates `words` fresh words inside the transaction.
    ///
    /// # Errors
    ///
    /// [`Stop`] when the attempt must abort.
    fn alloc(&mut self, words: u64) -> Result<Addr, Stop>;

    /// Charges `cycles` of in-transaction compute (simulated cycles on
    /// the simulator; a calibrated spin on the native backend).
    ///
    /// # Errors
    ///
    /// [`Stop`] when the attempt must abort (e.g. an asynchronous kill
    /// observed while computing).
    fn work(&mut self, cycles: u64) -> Result<(), Stop>;
}

/// One thread's view of an execution substrate.
///
/// `transaction` is generic (static dispatch), so the trait is not
/// object-safe — workloads take `B: TmBackend` type parameters, they do
/// not box backends.
pub trait TmBackend {
    /// Runs `body` transactionally until it commits, then returns its
    /// result. Retry policy, failover and abort classification are the
    /// backend's business.
    fn transaction<R>(&mut self, body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R;

    /// Non-transactional (strongly-atomic where the system supports it)
    /// load, for setup phases and read-mostly snapshots between phases.
    fn plain_load(&mut self, addr: Addr) -> u64;

    /// Non-transactional store; see [`TmBackend::plain_load`].
    fn plain_store(&mut self, addr: Addr, value: u64);

    /// Charges `cycles` of non-transactional compute.
    fn compute(&mut self, cycles: u64);

    /// Blocks until every participating thread arrives (phase barrier).
    fn barrier(&mut self);

    /// This thread's id, `0..threads()`.
    fn tid(&self) -> usize;

    /// Number of participating threads.
    fn threads(&self) -> usize;

    /// Requests that the *next* transaction on this thread take the
    /// slow/failover path, if the backend has one. Test and
    /// cross-validation hook; single-path backends ignore it.
    fn force_failover_next(&mut self) {}

    /// `(fast, slow)` commit counts so far for this thread, for hybrid
    /// backends that split commits across a fast and a slow path.
    /// Single-path backends report everything as fast… which is the
    /// default `(0, 0)` unless overridden.
    fn commit_counts(&mut self) -> (u64, u64) {
        (0, 0)
    }

    /// Number of fast→slow failovers taken so far on this thread
    /// (hybrid backends only; defaults to 0).
    fn failovers(&mut self) -> u64 {
        0
    }

    /// Transactions completed on a serial-irrevocable last-resort tier
    /// (hybrid backends with a watchdog; defaults to 0). Reported
    /// identically by the simulated and native hybrids so robustness
    /// observability is substrate-independent.
    fn serial_commits(&mut self) -> u64 {
        0
    }

    /// Ownership records reclaimed from dead/orphaned owners (native
    /// fault-tolerant backends: stolen TL2 stripe locks plus discarded
    /// unsealed slow-path transactions; defaults to 0).
    fn orphan_reclaims(&mut self) -> u64 {
        0
    }

    /// Sealed slow-path commits of dead workers finished by a helper
    /// (native fault-tolerant backends; defaults to 0).
    fn helper_completions(&mut self) -> u64 {
        0
    }
}

/// Which substrate a run executes on; carried by the stamp harness's
/// `RunSpec`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The deterministic cycle-charged simulator (default).
    #[default]
    Simulated,
    /// Host-atomics TL2 on real OS threads (`ufotm-native`).
    NativeTl2,
    /// Host-atomics hybrid: TL2 fast path failing over to a
    /// strongly-atomic USTM slow path (`ufotm-native`).
    NativeHybrid,
}

impl BackendKind {
    /// Stable label used in reports and bench artifacts.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            BackendKind::Simulated => "simulated",
            BackendKind::NativeTl2 => "native-tl2",
            BackendKind::NativeHybrid => "native-hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial single-threaded in-memory backend: proves the traits
    /// are implementable without a machine and pins the retry contract
    /// (the body reruns until it returns `Ok`).
    struct VecBackend {
        words: Vec<u64>,
        next_free: u64,
        forced_stops: u32,
    }

    struct VecScope<'a> {
        b: &'a mut VecBackend,
        staged: Vec<(u64, u64)>,
    }

    impl TxScope for VecScope<'_> {
        fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
            let w = addr.0 / 8;
            for &(sw, v) in self.staged.iter().rev() {
                if sw == w {
                    return Ok(v);
                }
            }
            Ok(self.b.words[w as usize])
        }

        fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
            if self.b.forced_stops > 0 {
                self.b.forced_stops -= 1;
                return Err(Stop);
            }
            self.staged.push((addr.0 / 8, value));
            Ok(())
        }

        fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
            let at = self.b.next_free;
            self.b.next_free += words;
            Ok(Addr(at * 8))
        }

        fn work(&mut self, _cycles: u64) -> Result<(), Stop> {
            Ok(())
        }
    }

    impl TmBackend for VecBackend {
        fn transaction<R>(
            &mut self,
            mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>,
        ) -> R {
            loop {
                let mut scope = VecScope {
                    b: self,
                    staged: Vec::new(),
                };
                if let Ok(r) = body(&mut scope) {
                    let staged = std::mem::take(&mut scope.staged);
                    for (w, v) in staged {
                        self.words[w as usize] = v;
                    }
                    return r;
                }
            }
        }

        fn plain_load(&mut self, addr: Addr) -> u64 {
            self.words[(addr.0 / 8) as usize]
        }

        fn plain_store(&mut self, addr: Addr, value: u64) {
            self.words[(addr.0 / 8) as usize] = value;
        }

        fn compute(&mut self, _cycles: u64) {}

        fn barrier(&mut self) {}

        fn tid(&self) -> usize {
            0
        }

        fn threads(&self) -> usize {
            1
        }
    }

    /// A workload generic over the backend, as STAMP bodies are written.
    fn increment_n<B: TmBackend>(b: &mut B, addr: Addr, n: u64) {
        for _ in 0..n {
            b.transaction(|tx| {
                let v = tx.read(addr)?;
                tx.work(10)?;
                tx.write(addr, v + 1)?;
                Ok(())
            });
        }
    }

    #[test]
    fn bodies_rerun_until_commit_and_staged_writes_are_isolated() {
        let mut b = VecBackend {
            words: vec![0; 64],
            next_free: 32,
            forced_stops: 3,
        };
        increment_n(&mut b, Addr(8), 5);
        // Three forced aborts were retried away; nothing double-applied.
        assert_eq!(b.plain_load(Addr(8)), 5);
    }

    #[test]
    fn alloc_returns_fresh_words() {
        let mut b = VecBackend {
            words: vec![0; 64],
            next_free: 32,
            forced_stops: 0,
        };
        let (a1, a2) = b.transaction(|tx| {
            let a1 = tx.alloc(2)?;
            let a2 = tx.alloc(2)?;
            tx.write(a1, 7)?;
            Ok((a1, a2))
        });
        assert_ne!(a1, a2);
        assert_eq!(b.plain_load(a1), 7);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(BackendKind::default(), BackendKind::Simulated);
        assert_eq!(BackendKind::Simulated.label(), "simulated");
        assert_eq!(BackendKind::NativeTl2.label(), "native-tl2");
        assert_eq!(BackendKind::NativeHybrid.label(), "native-hybrid");
    }

    #[test]
    fn failover_hooks_default_to_single_path_noops() {
        let mut b = VecBackend {
            words: vec![0; 8],
            next_free: 4,
            forced_stops: 0,
        };
        b.force_failover_next(); // must be a harmless no-op
        increment_n(&mut b, Addr(8), 1);
        assert_eq!(b.commit_counts(), (0, 0));
        assert_eq!(b.failovers(), 0);
        assert_eq!(b.serial_commits(), 0);
        assert_eq!(b.orphan_reclaims(), 0);
        assert_eq!(b.helper_completions(), 0);
    }
}
