//! The unified transaction facade.
//!
//! Workload code is written once against [`Tx`] and runs unchanged on every
//! [`SystemKind`](crate::SystemKind) — the paper's Figure 4 achieves the
//! same by compiling each transaction body twice (a BTM version and a
//! USTM-instrumented version); here the dispatch is a mode match.
//!
//! Contract: when `read`/`write`/`alloc` return `Err`, the attempt is dead
//! (hardware transaction aborted, or software transaction rolled back);
//! the body must propagate the error with `?` so the driver in
//! [`TmThread`](crate::TmThread) can apply its retry/failover policy.

use ufotm_machine::{AbortInfo, AbortReason, AccessError, Addr, BtmEvent, PlainAccess};
use ufotm_sim::Ctx;
use ufotm_tl2::{Tl2Abort, Tl2Txn};
use ufotm_ustm::{nont_load, nont_store, retry_wait, Perm, UstmAbort, UstmTxn};

use crate::policy::{BtmUfoFaultPolicy, HybridPolicy};
use crate::shared::TmWorld;

/// Why a transaction attempt ended without committing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxAbort {
    /// The USTM software transaction aborted (already rolled back).
    Stm(UstmAbort),
    /// The TL2 software transaction aborted (already rolled back).
    Tl2(Tl2Abort),
    /// The hardware transaction aborted (already finalized by the machine).
    Hw(AbortInfo),
    /// The microbenchmark hook forced a failover to software.
    Forced,
    /// The body requested transactional waiting (`retry`) in a mode that
    /// must fail over to software to honour it.
    RetryRequested,
}

impl std::fmt::Display for TxAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxAbort::Stm(a) => write!(f, "STM abort: {a}"),
            TxAbort::Tl2(a) => write!(f, "TL2 abort: {a}"),
            TxAbort::Hw(i) => write!(f, "HTM abort: {i}"),
            TxAbort::Forced => f.write_str("forced failover"),
            TxAbort::RetryRequested => f.write_str("retry requested"),
        }
    }
}

/// Execution mode of the current attempt.
pub(crate) enum Mode<'a> {
    /// Plain accesses (sequential or under the global lock).
    Plain,
    /// Serial-irrevocable execution under the global lock (the watchdog's
    /// last tier). Accesses are strong-atomicity-aware non-transactional
    /// operations: a UFO fault runs the USTM fault handler (waking/killing
    /// conflicting software transactions per policy) instead of panicking,
    /// so this mode is safe while other CPUs still run optimistically.
    Serial,
    /// A BTM hardware transaction; `hytm` adds HyTM's otable checks.
    Hw {
        /// Instrument with transactional otable lookups (HyTM).
        hytm: bool,
    },
    /// USTM software transaction.
    Ustm(&'a mut UstmTxn),
    /// TL2 software transaction.
    Tl2(&'a mut Tl2Txn),
}

/// Handle the transaction body uses for all its effects.
pub struct Tx<'a> {
    pub(crate) cpu: usize,
    pub(crate) mode: Mode<'a>,
    pub(crate) policy: HybridPolicy,
    pub(crate) allocs: Vec<Addr>,
    pub(crate) frees: Vec<Addr>,
    /// Retrying STM sleepers this hardware transaction conflicted with; to
    /// be woken *after commit* (paper §6's HTM `retry` integration).
    pub(crate) wake_after_commit: Vec<usize>,
    /// Host-side actions deferred to commit (paper §6's "deferring" for
    /// side-effecting operations); dropped if the attempt aborts.
    pub(crate) deferred: Vec<Box<dyn FnOnce() + Send>>,
    pub(crate) alloc_budget: &'a mut u32,
}

impl<'a> Tx<'a> {
    pub(crate) fn new(
        cpu: usize,
        mode: Mode<'a>,
        policy: HybridPolicy,
        alloc_budget: &'a mut u32,
    ) -> Self {
        Tx {
            cpu,
            mode,
            policy,
            allocs: Vec::new(),
            frees: Vec::new(),
            wake_after_commit: Vec::new(),
            deferred: Vec::new(),
            alloc_budget,
        }
    }

    /// Whether this attempt is running in hardware.
    #[must_use]
    pub fn in_hardware(&self) -> bool {
        matches!(self.mode, Mode::Hw { .. })
    }

    /// Whether this attempt is running in an STM.
    #[must_use]
    pub fn in_software(&self) -> bool {
        matches!(self.mode, Mode::Ustm(_) | Mode::Tl2(_))
    }

    /// Transactional read of the word at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the mode's abort; the attempt is dead when this errs.
    pub fn read<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, addr: Addr) -> Result<u64, TxAbort> {
        let hytm = match &mut self.mode {
            Mode::Plain => return Ok(plain_load(ctx, addr)),
            Mode::Serial => return Ok(nont_load(ctx, addr)),
            Mode::Ustm(t) => return t.read(ctx, addr).map_err(TxAbort::Stm),
            Mode::Tl2(t) => return t.read(ctx, addr).map_err(TxAbort::Tl2),
            Mode::Hw { hytm } => *hytm,
        };
        if hytm {
            hytm_barrier(ctx, addr, false)?;
        }
        self.hw_access(ctx, addr, None)
    }

    /// Transactional write of `value` to the word at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the mode's abort; the attempt is dead when this errs.
    pub fn write<U: TmWorld>(
        &mut self,
        ctx: &mut Ctx<U>,
        addr: Addr,
        value: u64,
    ) -> Result<(), TxAbort> {
        let hytm = match &mut self.mode {
            Mode::Plain => {
                plain_store(ctx, addr, value);
                return Ok(());
            }
            Mode::Serial => {
                nont_store(ctx, addr, value);
                return Ok(());
            }
            Mode::Ustm(t) => return t.write(ctx, addr, value).map_err(TxAbort::Stm),
            Mode::Tl2(t) => return t.write(ctx, addr, value).map_err(TxAbort::Tl2),
            Mode::Hw { hytm } => *hytm,
        };
        if hytm {
            hytm_barrier(ctx, addr, true)?;
        }
        self.hw_access(ctx, addr, Some(value)).map(|_| ())
    }

    /// Charges computation cycles inside the transaction.
    ///
    /// # Errors
    ///
    /// Surfaces a pending hardware doom.
    pub fn work<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, cycles: u64) -> Result<(), TxAbort> {
        match ctx.work(cycles) {
            Ok(()) => Ok(()),
            Err(AccessError::TxnAbort(i)) => Err(TxAbort::Hw(i)),
            Err(e) => panic!("unexpected work error: {e}"),
        }
    }

    /// Allocates `words` words from the shared heap.
    ///
    /// Models the paper's `malloc` treatment (§6): allocations hit a
    /// thread-local pool; every `alloc_model.syscall_every`-th allocation
    /// refills the pool via a system call, which aborts a hardware
    /// transaction (hybrids then fail over; the idealized unbounded HTM
    /// retries after the refill). Allocations are undone if the attempt
    /// aborts.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Hw`] with [`AbortReason::Syscall`] on a hardware pool
    /// refill.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted (a workload sizing bug).
    pub fn alloc<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, words: u64) -> Result<Addr, TxAbort> {
        let cpu = self.cpu;
        if *self.alloc_budget == 0 {
            *self.alloc_budget = ctx.with(|w| {
                let t = w.shared.tm();
                t.stats.alloc_syscalls += 1;
                t.alloc_model.syscall_every
            });
            if self.in_hardware() {
                match ctx.btm_event(BtmEvent::Syscall) {
                    Err(AccessError::TxnAbort(i)) => return Err(TxAbort::Hw(i)),
                    other => panic!("syscall event in txn must abort, got {other:?}"),
                }
            } else {
                let cost = ctx.with(|w| w.shared.tm().alloc_model.syscall_cost);
                ctx.work(cost).plain("syscall cost outside HW txn");
            }
        }
        *self.alloc_budget -= 1;
        let addr = ctx.with(|w| {
            let cost = {
                let t = w.shared.tm();
                t.alloc_model.alloc_cost
            };
            w.machine.work(cpu, cost)?;
            Ok(w.shared
                .tm()
                .heap
                .alloc_line_aligned(words)
                .expect("simulated heap exhausted"))
        });
        match addr {
            Ok(a) => {
                self.allocs.push(a);
                Ok(a)
            }
            Err(AccessError::TxnAbort(i)) => Err(TxAbort::Hw(i)),
            Err(e) => panic!("alloc cost: {e}"),
        }
    }

    /// Frees a heap allocation. The free is *deferred to commit* so an
    /// abort cannot resurrect dangling data.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` for symmetry.
    pub fn free<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, addr: Addr) -> Result<(), TxAbort> {
        ctx.work(4).plain("free bookkeeping");
        self.frees.push(addr);
        Ok(())
    }

    /// Performs an idempotent system call (e.g. `gettimeofday`). Aborts a
    /// hardware transaction (hybrids fail over, per §6); a software or
    /// plain attempt just pays the cost.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Hw`] with [`AbortReason::Syscall`] in hardware.
    pub fn syscall<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> Result<(), TxAbort> {
        self.event(ctx, BtmEvent::Syscall)
    }

    /// Performs I/O. Same contract as [`Tx::syscall`] with
    /// [`AbortReason::Io`].
    ///
    /// # Errors
    ///
    /// [`TxAbort::Hw`] with [`AbortReason::Io`] in hardware.
    pub fn io<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> Result<(), TxAbort> {
        self.event(ctx, BtmEvent::Io)
    }

    fn event<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, ev: BtmEvent) -> Result<(), TxAbort> {
        match ctx.btm_event(ev) {
            Ok(()) => Ok(()),
            Err(AccessError::TxnAbort(i)) => Err(TxAbort::Hw(i)),
            Err(e) => panic!("unexpected event error: {e}"),
        }
    }

    /// Microbenchmark hook (paper §5.3): force this transaction to execute
    /// in software. A no-op outside hardware modes.
    ///
    /// # Errors
    ///
    /// [`TxAbort::Forced`] in hardware.
    pub fn force_failover<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> Result<(), TxAbort> {
        if self.in_hardware() {
            ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
            return Err(TxAbort::Forced);
        }
        Ok(())
    }

    /// Transactional waiting (`retry`, paper §6): park until a writer
    /// updates something this transaction read. In hardware the paper
    /// translates `retry` into an explicit abort that fails over to
    /// software, where the full mechanism lives.
    ///
    /// # Errors
    ///
    /// Always errs: the attempt never continues past `retry`.
    pub fn retry<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> Result<(), TxAbort> {
        match &mut self.mode {
            Mode::Ustm(t) => Err(TxAbort::Stm(retry_wait(t, ctx))),
            Mode::Hw { .. } => {
                ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
                Err(TxAbort::RetryRequested)
            }
            Mode::Tl2(_) => {
                // TL2 has no wakeup mechanism; model as abort + backoff.
                Err(TxAbort::RetryRequested)
            }
            Mode::Plain => panic!("retry is meaningless without transactions"),
            Mode::Serial => panic!(
                "retry cannot be honoured in serial-irrevocable mode \
                 (the watchdog never escalates retry-parked transactions)"
            ),
        }
    }

    /// Defers a host-side action until this transaction commits (paper §6's
    /// *deferral* pattern for side-effecting operations: the effect becomes
    /// visible exactly once, only if the transaction does). The action is
    /// dropped if the attempt aborts. The simulated *cost* of an external
    /// effect is not modelled here — combine with [`Tx::io`] when the
    /// timing and failover behaviour of the I/O itself matter.
    pub fn defer(&mut self, action: impl FnOnce() + Send + 'static) {
        self.deferred.push(Box::new(action));
    }

    pub(crate) fn into_bookkeeping(self) -> Bookkeeping {
        Bookkeeping {
            allocs: self.allocs,
            frees: self.frees,
            wakes: self.wake_after_commit,
            deferred: self.deferred,
        }
    }

    /// One BTM data access, looping on nacks and applying the UFO-fault
    /// policy. Implements the paper's §6 `retry` integration: a fault whose
    /// otable owners are all `retry`-parked sleepers is resolved *inside*
    /// the transaction — the protection is bypassed (modelling the
    /// transactional UFO-bit clear) and the sleepers are recorded to be
    /// woken after commit.
    fn hw_access<U: TmWorld>(
        &mut self,
        ctx: &mut Ctx<U>,
        addr: Addr,
        write: Option<u64>,
    ) -> Result<u64, TxAbort> {
        let cpu = self.cpu;
        let policy = self.policy;
        loop {
            let r = ctx.with(|w| match write {
                Some(v) => w.machine.store(cpu, addr, v).map(|()| v),
                None => w.machine.load(cpu, addr),
            });
            match r {
                Ok(v) => return Ok(v),
                Err(AccessError::Nacked) => { /* 20-cycle retry already charged */ }
                Err(AccessError::TxnAbort(i)) => return Err(TxAbort::Hw(i)),
                Err(AccessError::UfoFault { addr, .. }) => {
                    // UFO fault handler, executed while in BTM: inspect the
                    // otable; if every owner is parked in retry, bypass and
                    // remember to wake them post-commit.
                    enum Handled {
                        Done(u64, Vec<usize>),
                        Doomed(AbortInfo),
                        Nacked,
                        NoSleepers,
                    }
                    let line = addr.line();
                    let bypass = ctx.with(|w| {
                        // Handler entry (charges inspection work; a pending
                        // doom surfaces here).
                        if let Err(AccessError::TxnAbort(i)) = w.machine.work(cpu, 20) {
                            return Handled::Doomed(i);
                        }
                        let u = w.shared.ustm();
                        let sleepers: Option<Vec<usize>> = match u.otable.lookup(line) {
                            Some((_, e))
                                if e.owner_cpus().all(|o| {
                                    u.slots[o].status == ufotm_ustm::TxnStatus::Retrying
                                }) =>
                            {
                                Some(e.owner_cpus().collect())
                            }
                            _ => None,
                        };
                        let Some(owners) = sleepers else {
                            return Handled::NoSleepers;
                        };
                        let m = &mut w.machine;
                        m.set_ufo_enabled(cpu, false);
                        let res = match write {
                            Some(v) => m.store(cpu, addr, v).map(|()| v),
                            None => m.load(cpu, addr),
                        };
                        m.set_ufo_enabled(cpu, true);
                        match res {
                            Ok(v) => Handled::Done(v, owners),
                            Err(AccessError::TxnAbort(i)) => Handled::Doomed(i),
                            Err(AccessError::Nacked) => Handled::Nacked,
                            Err(e) => panic!("bypass access: {e}"),
                        }
                    });
                    match bypass {
                        Handled::Done(v, owners) => {
                            for o in owners {
                                if !self.wake_after_commit.contains(&o) {
                                    self.wake_after_commit.push(o);
                                }
                            }
                            return Ok(v);
                        }
                        Handled::Doomed(i) => return Err(TxAbort::Hw(i)),
                        Handled::Nacked => { /* retry whole access */ }
                        Handled::NoSleepers => match policy.btm_ufo_fault {
                            BtmUfoFaultPolicy::AbortAndRetry => {
                                let info =
                                    ctx.btm_abort_with(AbortInfo::at(AbortReason::UfoFault, addr));
                                return Err(TxAbort::Hw(info));
                            }
                            BtmUfoFaultPolicy::Stall => {
                                if let Err(AccessError::TxnAbort(i)) =
                                    ctx.stall(policy.ufo_stall_backoff)
                                {
                                    return Err(TxAbort::Hw(i));
                                }
                            }
                        },
                    }
                }
            }
        }
    }
}

/// Per-attempt bookkeeping handed back to the driver.
pub(crate) struct Bookkeeping {
    pub allocs: Vec<Addr>,
    pub frees: Vec<Addr>,
    pub wakes: Vec<usize>,
    pub deferred: Vec<Box<dyn FnOnce() + Send>>,
}

impl Bookkeeping {
    /// Runs the deferred actions (commit path).
    pub fn run_deferred(self) {
        for action in self.deferred {
            action();
        }
    }
}

/// A plain load in a homogeneous (lock/sequential) run: no UFO protection
/// can be present, so errors are impossible.
fn plain_load<U: TmWorld>(ctx: &mut Ctx<U>, addr: Addr) -> u64 {
    let cpu = ctx.cpu();
    ctx.with(|w| w.machine.load(cpu, addr)).plain("plain load")
}

fn plain_store<U: TmWorld>(ctx: &mut Ctx<U>, addr: Addr, value: u64) {
    let cpu = ctx.cpu();
    ctx.with(|w| w.machine.store(cpu, addr, value))
        .plain("plain store");
}

/// HyTM's instrumented barrier: a *transactional* otable lookup before the
/// data access. A conflicting record (any record, for writes; a write
/// record, for reads) makes the hardware transaction abort explicitly and
/// retry (paper §5). The transactional bin read is what inflates HyTM's
/// footprint and causes its false conflicts.
fn hytm_barrier<U: TmWorld>(ctx: &mut Ctx<U>, addr: Addr, is_write: bool) -> Result<(), TxAbort> {
    let cpu = ctx.cpu();
    let line = addr.line();
    loop {
        let r = ctx.with(|w| {
            let bin = {
                let u = w.shared.ustm();
                u.otable.bin_addr_of(line)
            };
            match w.machine.load(cpu, bin) {
                Ok(_) => {
                    w.machine.work(cpu, 8)?;
                    let u = w.shared.ustm();
                    let conflict = match u.otable.lookup(line) {
                        None => false,
                        Some((_, e)) => is_write || e.perm == Perm::Write,
                    };
                    Ok(conflict)
                }
                Err(e) => Err(e),
            }
        });
        match r {
            Ok(false) => return Ok(()),
            Ok(true) => {
                let info = ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
                return Err(TxAbort::Hw(info));
            }
            Err(AccessError::Nacked) => {}
            Err(AccessError::TxnAbort(i)) => return Err(TxAbort::Hw(i)),
            Err(AccessError::UfoFault { .. }) => {
                unreachable!("HyTM threads run with UFO faults disabled")
            }
        }
    }
}
