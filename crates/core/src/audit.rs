//! Post-pass invariant checking over the trace journal.
//!
//! The drivers journal every attempt edge (begin / commit / abort), every
//! failover, escalation, serial window, and injected fault. This module
//! replays that journal through a per-CPU state machine and checks the
//! protocol invariants that any correct run must satisfy:
//!
//! 1. **Balanced attempts** — every `HwCommit`/`HwAbort` closes a matching
//!    `HwBegin` on the same CPU (likewise `SwCommit`/`SwAbort` for
//!    `SwBegin`), and a complete journal leaves every CPU idle at the end.
//! 2. **Failover follows an abort** — a `Failover` entry appears only
//!    directly after a `HwAbort` on the same CPU (the driver decides to
//!    abandon hardware only because an attempt just died).
//! 3. **Escalations are honoured** — after `WatchdogEscalation(Software)`
//!    the CPU's next attempt is software; after
//!    `WatchdogEscalation(Serial)` it is serial-irrevocable.
//! 4. **Serial exclusivity** — `SerialIrrevocable` is journaled only once
//!    the gate is raised and in-flight software transactions have
//!    quiesced, so between it and the holder's `PlainCommit` no other CPU
//!    may open a serial window or commit in hardware (subscribed hardware
//!    transactions are doomed by the gate store through plain coherence).
//! 5. **Faults precede their driver event** — a `FaultInjected` entry is
//!    drained into the journal before the driver event it provoked, so it
//!    must not carry a cycle later than the CPU's next driver event.
//! 6. **Per-CPU time is monotonic** — a CPU's entries carry non-decreasing
//!    cycles.
//!
//! Persistent runs ([`audit_events_durable`]) add three durability rules:
//!
//! 7. **Commits are fenced** — every `SwCommit` is preceded by a
//!    `PersistFence` within the same attempt (the redo record reached its
//!    durable commit point before the commit was journaled).
//! 8. **Recovery never resurrects** — after a `PowerFail`, a
//!    `RecoveryReplay` with a non-zero record count is legal only for a CPU
//!    that had a software attempt open at the crash (only a commit caught
//!    between its redo fence and its applied-marker fence leaves a
//!    replayable record; anything else would resurrect an uncommitted or
//!    regress an already-applied transaction).
//! 9. **Recovery is idempotent** — every `RecoveryReplay` for a CPU in the
//!    same crash epoch reports the same record count (recovering twice
//!    equals recovering once).
//! 10. **Serial windows are fenced (or refused)** — a serial-irrevocable
//!     window that commits on a durable run must contain a
//!     `PersistFence`. The driver upholds this by *refusing* serial
//!     escalation whenever a persist domain is configured (the serial
//!     path writes no redo record), so any durable journal showing
//!     `SerialIrrevocable` … `PlainCommit` without a fence is the
//!     pre-refusal bug resurfacing: a window a power failure could tear.
//!
//! A `PowerFail` entry ends every CPU's execution at once: open attempts
//! die with the volatile state (no balance violation), and later entries
//! belong to the rebooted machine, whose clocks restart at zero.
//!
//! As a by-product of the replay the auditor reconstructs per-transaction
//! records (first begin → final commit, attempt counts, commit path),
//! which [`RunReport`](crate::RunReport) turns into latency and retry
//! histograms.

use crate::trace::{EscalationTier, TraceEvent, TraceKind, TraceLog};

/// Which path finally committed a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPath {
    /// Committed by a hardware (BTM) attempt.
    Hw,
    /// Committed by a software (STM) attempt.
    Sw,
    /// Committed serial-irrevocably under the gate.
    Serial,
    /// Committed on the plain/lock path (no attempt events journaled).
    Plain,
}

impl CommitPath {
    /// Stable label used in reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CommitPath::Hw => "hw",
            CommitPath::Sw => "sw",
            CommitPath::Serial => "serial",
            CommitPath::Plain => "plain",
        }
    }
}

/// One transaction reconstructed from the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnRecord {
    /// The committing CPU.
    pub cpu: usize,
    /// Cycle of the transaction's first attempt begin (for the plain path,
    /// the commit cycle: no begin is journaled).
    pub start_cycle: u64,
    /// Cycle of the final commit.
    pub commit_cycle: u64,
    /// Attempts made (begins observed; 1 = committed first try).
    pub attempts: u32,
    /// The committing path.
    pub path: CommitPath,
}

impl TxnRecord {
    /// First-begin-to-commit latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.commit_cycle - self.start_cycle
    }

    /// Retries before the committing attempt.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// One invariant violation found by the auditor.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// Index of the offending event in the journal (`usize::MAX` for
    /// end-of-journal violations).
    pub index: usize,
    /// The CPU the violation is charged to.
    pub cpu: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.index == usize::MAX {
            write!(f, "[end of journal] cpu {}: {}", self.cpu, self.message)
        } else {
            write!(
                f,
                "[event {}] cpu {}: {}",
                self.index, self.cpu, self.message
            )
        }
    }
}

/// The auditor's verdict plus the reconstructed transactions.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Transactions reconstructed from the journal, in commit order.
    pub txns: Vec<TxnRecord>,
    /// All invariant violations, in journal order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the journal satisfied every invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation listed unless the journal is clean.
    ///
    /// # Panics
    ///
    /// Panics if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "trace audit found {} violation(s):\n{}",
            self.violations.len(),
            self.violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// What a CPU is doing, per the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuState {
    Idle,
    InHw,
    InSw,
    InSerial,
}

#[derive(Clone, Debug)]
struct CpuTrack {
    state: CpuState,
    last_cycle: u64,
    /// Cycle of the first begin of the in-progress transaction.
    txn_start: Option<u64>,
    attempts: u32,
    /// The CPU's previous driver (non-`FaultInjected`) event kind.
    last_driver: Option<TraceKind>,
    /// Escalation tier awaiting its promised follow-up attempt.
    pending_escalation: Option<EscalationTier>,
    /// Cycle of the latest fault still awaiting a driver event.
    pending_fault: Option<u64>,
    /// Whether a `PersistFence` was journaled inside the open sw attempt.
    fence_since_begin: bool,
}

impl Default for CpuTrack {
    fn default() -> Self {
        CpuTrack {
            state: CpuState::Idle,
            last_cycle: 0,
            txn_start: None,
            attempts: 0,
            last_driver: None,
            pending_escalation: None,
            pending_fault: None,
            fence_since_begin: false,
        }
    }
}

/// Audits a [`TraceLog`], tolerating cap truncation automatically.
#[must_use]
pub fn audit_log(log: &TraceLog) -> AuditReport {
    audit_events(log.events(), log.truncated())
}

/// Audits a raw event slice. Pass `truncated = true` when the journal hit
/// its cap (end-of-journal balance is then not checked).
#[must_use]
pub fn audit_events(events: &[TraceEvent], truncated: bool) -> AuditReport {
    audit(events, truncated, false)
}

/// Audits a journal from a *persistent* run: everything [`audit_events`]
/// checks, plus the durability rules (module docs, invariants 7–9).
#[must_use]
pub fn audit_events_durable(events: &[TraceEvent], truncated: bool) -> AuditReport {
    audit(events, truncated, true)
}

fn audit(events: &[TraceEvent], truncated: bool, durable: bool) -> AuditReport {
    let cpus = events.iter().map(|e| e.cpu + 1).max().unwrap_or(0);
    let mut tracks: Vec<CpuTrack> = vec![CpuTrack::default(); cpus];
    let mut report = AuditReport::default();
    // The CPU currently holding a journaled serial window, if any.
    let mut serial_holder: Option<usize> = None;
    // Crash bookkeeping: which CPUs had an open sw attempt when the power
    // failed, and each CPU's first post-crash replay count.
    let mut crashed = false;
    let mut open_sw_at_crash: Vec<bool> = vec![false; cpus];
    let mut first_replay: Vec<Option<u32>> = vec![None; cpus];

    for (i, e) in events.iter().enumerate() {
        let violation = |msg: String| AuditViolation {
            index: i,
            cpu: e.cpu,
            message: msg,
        };

        if e.kind == TraceKind::PowerFail {
            // Invariant 6 still applies to the crash marker itself.
            if e.cycle < tracks[e.cpu].last_cycle {
                report.violations.push(violation(format!(
                    "cycle went backwards ({} after {}) at {}",
                    e.cycle, tracks[e.cpu].last_cycle, e.kind
                )));
            }
            if crashed {
                report
                    .violations
                    .push(violation("second power-fail in one journal".to_string()));
            }
            // The crash ends every CPU's execution at once: open attempts
            // die with the volatile state, pending faults and escalations
            // are moot, and the rebooted machine's clocks restart at zero.
            crashed = true;
            serial_holder = None;
            for (c, track) in tracks.iter_mut().enumerate() {
                open_sw_at_crash[c] = track.state == CpuState::InSw;
                *track = CpuTrack::default();
            }
            continue;
        }
        let t = &mut tracks[e.cpu];

        // Invariant 6: per-CPU cycles never go backwards.
        if e.cycle < t.last_cycle {
            report.violations.push(violation(format!(
                "cycle went backwards ({} after {}) at {}",
                e.cycle, t.last_cycle, e.kind
            )));
        }
        t.last_cycle = t.last_cycle.max(e.cycle);

        if let TraceKind::FaultInjected(_) = e.kind {
            // Invariant 5 is checked when the next driver event arrives.
            t.pending_fault = Some(t.pending_fault.unwrap_or(0).max(e.cycle));
            continue;
        }

        // Invariant 5: the fault was journaled before this driver event,
        // and must not postdate it.
        if let Some(fault_cycle) = t.pending_fault.take() {
            if fault_cycle > e.cycle {
                report.violations.push(violation(format!(
                    "injected fault at cycle {fault_cycle} postdates the driver \
                     event {} at cycle {} it precedes",
                    e.kind, e.cycle
                )));
            }
        }

        // Invariant 3: an escalation promises a specific next attempt.
        if let Some(tier) = t.pending_escalation {
            let honoured = match (tier, e.kind) {
                (EscalationTier::Software, TraceKind::SwBegin)
                | (EscalationTier::Serial, TraceKind::SerialIrrevocable) => true,
                // A second escalation may override the first (software
                // tier escalating again to serial).
                (_, TraceKind::WatchdogEscalation(_)) => true,
                _ => false,
            };
            if !honoured {
                report.violations.push(violation(format!(
                    "escalation to {tier} followed by {} instead of the \
                     promised attempt",
                    e.kind
                )));
            }
            if !matches!(e.kind, TraceKind::WatchdogEscalation(_)) {
                t.pending_escalation = None;
            }
        }

        // Invariant 4: no hardware commit or second serial window while a
        // serial window is open on another CPU.
        if let Some(holder) = serial_holder {
            if holder != e.cpu
                && matches!(
                    e.kind,
                    TraceKind::HwCommit | TraceKind::PlainCommit | TraceKind::SerialIrrevocable
                )
            {
                report.violations.push(violation(format!(
                    "{} while cpu {holder} holds the serial-irrevocable window",
                    e.kind
                )));
            }
        }

        // Invariants 1–2: the per-CPU attempt state machine.
        match e.kind {
            TraceKind::HwBegin => {
                if t.state != CpuState::Idle {
                    report
                        .violations
                        .push(violation(format!("hw-begin in state {:?}", t.state)));
                }
                t.state = CpuState::InHw;
                t.txn_start.get_or_insert(e.cycle);
                t.attempts += 1;
            }
            TraceKind::SwBegin => {
                if t.state != CpuState::Idle {
                    report
                        .violations
                        .push(violation(format!("sw-begin in state {:?}", t.state)));
                }
                t.state = CpuState::InSw;
                t.txn_start.get_or_insert(e.cycle);
                t.attempts += 1;
                t.fence_since_begin = false;
            }
            TraceKind::HwCommit | TraceKind::HwAbort(_) => {
                if t.state != CpuState::InHw {
                    report.violations.push(violation(format!(
                        "{} without an open hw attempt (state {:?})",
                        e.kind, t.state
                    )));
                }
                t.state = CpuState::Idle;
                if e.kind == TraceKind::HwCommit {
                    report.txns.push(TxnRecord {
                        cpu: e.cpu,
                        start_cycle: t.txn_start.take().unwrap_or(e.cycle),
                        commit_cycle: e.cycle,
                        attempts: std::mem::take(&mut t.attempts).max(1),
                        path: CommitPath::Hw,
                    });
                }
            }
            TraceKind::SwCommit | TraceKind::SwAbort => {
                if t.state != CpuState::InSw {
                    report.violations.push(violation(format!(
                        "{} without an open sw attempt (state {:?})",
                        e.kind, t.state
                    )));
                }
                // Invariant 7 (durable runs): the commit's redo record
                // reached its durable commit point before the commit.
                if durable && e.kind == TraceKind::SwCommit && !t.fence_since_begin {
                    report.violations.push(violation(
                        "sw-commit without its persist fence on a durable run".to_string(),
                    ));
                }
                t.state = CpuState::Idle;
                t.fence_since_begin = false;
                if e.kind == TraceKind::SwCommit {
                    report.txns.push(TxnRecord {
                        cpu: e.cpu,
                        start_cycle: t.txn_start.take().unwrap_or(e.cycle),
                        commit_cycle: e.cycle,
                        attempts: std::mem::take(&mut t.attempts).max(1),
                        path: CommitPath::Sw,
                    });
                }
            }
            TraceKind::SerialIrrevocable => {
                if t.state != CpuState::Idle {
                    report.violations.push(violation(format!(
                        "serial-irrevocable in state {:?}",
                        t.state
                    )));
                }
                if serial_holder.is_none() {
                    serial_holder = Some(e.cpu);
                }
                t.state = CpuState::InSerial;
                t.txn_start.get_or_insert(e.cycle);
                t.attempts += 1;
                t.fence_since_begin = false;
            }
            TraceKind::PlainCommit => {
                let path = if t.state == CpuState::InSerial {
                    if serial_holder == Some(e.cpu) {
                        serial_holder = None;
                    }
                    // Invariant 10: a durable serial window without its
                    // fence is unrecoverable after a power failure (the
                    // serial path has no redo record — the driver must
                    // refuse the escalation instead).
                    if durable && !t.fence_since_begin {
                        report.violations.push(violation(
                            "serial-irrevocable window committed without a persist \
                             fence on a durable run (serial escalation must be \
                             refused when a persist domain is configured)"
                                .to_string(),
                        ));
                    }
                    CommitPath::Serial
                } else {
                    if t.state != CpuState::Idle {
                        report
                            .violations
                            .push(violation(format!("plain-commit in state {:?}", t.state)));
                    }
                    CommitPath::Plain
                };
                t.state = CpuState::Idle;
                report.txns.push(TxnRecord {
                    cpu: e.cpu,
                    start_cycle: t.txn_start.take().unwrap_or(e.cycle),
                    commit_cycle: e.cycle,
                    attempts: std::mem::take(&mut t.attempts).max(1),
                    path,
                });
            }
            TraceKind::Failover(_) => {
                if t.state != CpuState::Idle {
                    report
                        .violations
                        .push(violation(format!("failover in state {:?}", t.state)));
                }
                if !matches!(t.last_driver, Some(TraceKind::HwAbort(_))) {
                    report.violations.push(violation(format!(
                        "failover not directly after a hw abort (previous driver \
                         event: {})",
                        t.last_driver
                            .map_or_else(|| "none".to_string(), |k| k.to_string()),
                    )));
                }
            }
            TraceKind::WatchdogEscalation(tier) => {
                if t.state != CpuState::Idle {
                    report
                        .violations
                        .push(violation(format!("escalation in state {:?}", t.state)));
                }
                t.pending_escalation = Some(tier);
            }
            TraceKind::PersistFence => {
                t.fence_since_begin = true;
            }
            TraceKind::RecoveryReplay(records) => {
                if !crashed {
                    report.violations.push(violation(
                        "recovery-replay before any power-fail".to_string(),
                    ));
                }
                // Invariant 8: only a commit caught between its redo fence
                // and its applied-marker fence leaves a replayable record,
                // and such a CPU was mid-attempt when the power failed.
                if records > 0 && !open_sw_at_crash[e.cpu] {
                    report.violations.push(violation(format!(
                        "recovery replayed {records} record(s) for a cpu with no \
                         commit in flight at the crash — it must not resurrect an \
                         uncommitted or already-applied transaction"
                    )));
                }
                // Invariant 9: replaying is a pure, repeatable function of
                // the durable image.
                match first_replay[e.cpu] {
                    None => first_replay[e.cpu] = Some(records),
                    Some(first) if first != records => {
                        report.violations.push(violation(format!(
                            "recovery is not idempotent: first replay applied \
                             {first} record(s), this one {records}"
                        )));
                    }
                    Some(_) => {}
                }
            }
            TraceKind::FaultInjected(_) | TraceKind::PowerFail => {
                unreachable!("handled above")
            }
        }
        t.last_driver = Some(e.kind);
    }

    // End-of-journal balance: meaningless for a truncated journal.
    if !truncated {
        for (cpu, t) in tracks.iter().enumerate() {
            if t.state != CpuState::Idle {
                report.violations.push(AuditViolation {
                    index: usize::MAX,
                    cpu,
                    message: format!("journal ends with an open attempt ({:?})", t.state),
                });
            }
        }
        if let Some(holder) = serial_holder {
            report.violations.push(AuditViolation {
                index: usize::MAX,
                cpu: holder,
                message: "journal ends inside a serial-irrevocable window".to_string(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::AbortReason;

    fn ev(cycle: u64, cpu: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent { cycle, cpu, kind }
    }

    #[test]
    fn clean_hw_commit_reconstructs_txn() {
        let events = [
            ev(10, 0, TraceKind::HwBegin),
            ev(20, 0, TraceKind::HwAbort(AbortReason::Conflict)),
            ev(30, 0, TraceKind::HwBegin),
            ev(50, 0, TraceKind::HwCommit),
        ];
        let r = audit_events(&events, false);
        r.assert_clean();
        assert_eq!(r.txns.len(), 1);
        let t = r.txns[0];
        assert_eq!(t.start_cycle, 10);
        assert_eq!(t.commit_cycle, 50);
        assert_eq!(t.latency(), 40);
        assert_eq!(t.attempts, 2);
        assert_eq!(t.retries(), 1);
        assert_eq!(t.path, CommitPath::Hw);
    }

    #[test]
    fn failover_chain_counts_as_one_txn() {
        let events = [
            ev(10, 0, TraceKind::HwBegin),
            ev(20, 0, TraceKind::HwAbort(AbortReason::Overflow)),
            ev(21, 0, TraceKind::Failover(AbortReason::Overflow)),
            ev(25, 0, TraceKind::SwBegin),
            ev(80, 0, TraceKind::SwCommit),
        ];
        let r = audit_events(&events, false);
        r.assert_clean();
        assert_eq!(r.txns.len(), 1);
        assert_eq!(r.txns[0].path, CommitPath::Sw);
        assert_eq!(r.txns[0].attempts, 2);
        assert_eq!(r.txns[0].latency(), 70);
    }

    #[test]
    fn truncated_journal_tolerates_open_attempt() {
        let events = [ev(10, 0, TraceKind::HwBegin)];
        assert!(audit_events(&events, true).is_clean());
        assert!(!audit_events(&events, false).is_clean());
    }

    #[test]
    fn durable_commit_requires_a_fence_volatile_does_not() {
        let events = [
            ev(10, 0, TraceKind::SwBegin),
            ev(80, 0, TraceKind::SwCommit),
        ];
        // The same journal is fine on a volatile run...
        audit_events(&events, false).assert_clean();
        // ...and a violation on a durable one.
        let r = audit_events_durable(&events, false);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0]
            .message
            .contains("without its persist fence"));

        let fenced = [
            ev(10, 0, TraceKind::SwBegin),
            ev(70, 0, TraceKind::PersistFence),
            ev(80, 0, TraceKind::SwCommit),
        ];
        audit_events_durable(&fenced, false).assert_clean();
    }

    #[test]
    fn power_fail_closes_open_attempts_without_violation() {
        let events = [
            ev(10, 0, TraceKind::SwBegin),
            ev(15, 1, TraceKind::HwBegin),
            ev(40, 0, TraceKind::PowerFail),
            // Rebooted machine: clocks restart, recovery replays cpu 0's
            // in-flight commit, then new work proceeds.
            ev(0, 0, TraceKind::RecoveryReplay(1)),
            ev(0, 1, TraceKind::RecoveryReplay(0)),
            ev(5, 1, TraceKind::HwBegin),
            ev(9, 1, TraceKind::HwCommit),
        ];
        audit_events_durable(&events, false).assert_clean();
    }

    #[test]
    fn replay_for_an_idle_cpu_is_a_resurrection() {
        let events = [
            ev(10, 1, TraceKind::SwBegin),
            ev(20, 1, TraceKind::SwAbort),
            ev(40, 0, TraceKind::PowerFail),
            ev(0, 1, TraceKind::RecoveryReplay(1)),
        ];
        let r = audit_events_durable(&events, false);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("resurrect"));
    }

    #[test]
    fn diverging_replays_are_not_idempotent() {
        let events = [
            ev(10, 0, TraceKind::SwBegin),
            ev(40, 0, TraceKind::PowerFail),
            ev(0, 0, TraceKind::RecoveryReplay(1)),
            ev(3, 0, TraceKind::RecoveryReplay(0)),
        ];
        let r = audit_events_durable(&events, false);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("not idempotent"));
    }

    #[test]
    fn replay_without_a_crash_is_flagged() {
        let events = [ev(5, 0, TraceKind::RecoveryReplay(0))];
        let r = audit_events_durable(&events, false);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("before any power-fail"));
    }

    #[test]
    fn second_power_fail_is_flagged() {
        let events = [
            ev(40, 0, TraceKind::PowerFail),
            ev(10, 0, TraceKind::PowerFail),
        ];
        let r = audit_events_durable(&events, false);
        assert!(!r.is_clean());
        assert!(r
            .violations
            .iter()
            .any(|v| v.message.contains("second power-fail")));
    }
}
