//! The global-lock baseline: one test-and-set lock in simulated memory.

use ufotm_machine::{Addr, PlainAccess};
use ufotm_sim::Ctx;

use crate::shared::HasTm;

/// Shared state of the global-lock baseline.
#[derive(Clone, Copy, Debug)]
pub struct LockShared {
    addr: Addr,
    holder: Option<usize>,
    /// Successful acquisitions.
    pub acquisitions: u64,
}

impl LockShared {
    /// Creates the lock at simulated address `addr` (reserve one line).
    #[must_use]
    pub fn new(addr: Addr) -> Self {
        LockShared {
            addr,
            holder: None,
            acquisitions: 0,
        }
    }

    /// Who holds the lock (tests/diagnostics).
    #[must_use]
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }
}

/// Spins (test-and-test-and-set with backoff) until the lock is acquired.
pub(crate) fn lock_acquire<U: HasTm>(ctx: &mut Ctx<U>, spin_backoff: u64) {
    let cpu = ctx.cpu();
    loop {
        let got = ctx.with(|w| {
            let m = &mut w.machine;
            let l = &mut w.shared.tm().lock;
            m.load(cpu, l.addr).plain("lock read");
            if l.holder.is_none() {
                l.holder = Some(cpu);
                l.acquisitions += 1;
                m.store(cpu, l.addr, cpu as u64 + 1).plain("lock take");
                true
            } else {
                false
            }
        });
        if got {
            return;
        }
        ctx.stall(spin_backoff).plain("lock spin");
    }
}

/// Releases the lock.
///
/// # Panics
///
/// Panics if the caller does not hold it.
pub(crate) fn lock_release<U: HasTm>(ctx: &mut Ctx<U>) {
    let cpu = ctx.cpu();
    ctx.with(|w| {
        let m = &mut w.machine;
        let l = &mut w.shared.tm().lock;
        assert_eq!(l.holder, Some(cpu), "releasing a lock we do not hold");
        l.holder = None;
        m.store(cpu, l.addr, 0).plain("lock release");
    });
}
