//! Reboot and recovery orchestration for crashed persistent runs.
//!
//! A power failure latches a [`CrashImage`] inside the machine while the
//! simulation keeps running ("ghost execution" — the pre-crash timeline is
//! still needed for determinism checks). Rebooting is therefore a host-side
//! reconstruction:
//!
//! 1. [`crashed_journal`] truncates the run's trace to what the crashed
//!    world had journaled and marks the cut with a
//!    [`TraceKind::PowerFail`] event.
//! 2. A fresh [`Machine`] with the same configuration gets the durable
//!    image via [`Machine::install_image`], and a fresh [`TmShared`] is
//!    built with the same layout (software state does not survive a crash).
//! 3. [`recover_world`] replays USTM's durable redo windows and journals
//!    one [`TraceKind::RecoveryReplay`] per CPU, so the combined
//!    crash-plus-recovery journal can be audited end to end with
//!    [`audit_events_durable`](crate::audit_events_durable).

use ufotm_machine::{ChaosFaultKind, CrashImage, Machine};
use ufotm_ustm::CpuRecovery;

use crate::shared::TmShared;
use crate::trace::{TraceEvent, TraceKind, TraceLog};

/// The journal as the crashed world saw it, capped with a
/// [`TraceKind::PowerFail`] marker.
///
/// When the failure was chaos-injected, the drained
/// `FaultInjected(power-fail)` event marks the exact recording-order cut:
/// every runtime event drains the chaos journal before recording itself,
/// so everything before that event happened strictly before the latch and
/// everything at or after it is ghost execution. Without such an event
/// (a host-side [`Machine::power_fail`] call) the cut falls back to the
/// failing CPU's crash cycle — exact for single-CPU runs, and a
/// within-one-operation approximation when CPU clocks diverge.
#[must_use]
pub fn crashed_journal(trace: &TraceLog, crash: &CrashImage) -> Vec<TraceEvent> {
    let cut = trace
        .events()
        .iter()
        .position(|e| e.kind == TraceKind::FaultInjected(ChaosFaultKind::PowerFail));
    let mut events: Vec<TraceEvent> = match cut {
        Some(i) => trace.events()[..i].to_vec(),
        None => trace
            .events()
            .iter()
            .copied()
            .filter(|e| e.cycle <= crash.cycle())
            .collect(),
    };
    events.push(TraceEvent {
        cycle: crash.cycle(),
        cpu: crash.cpu(),
        kind: TraceKind::PowerFail,
    });
    events
}

/// Runs crash recovery on a rebooted world and extends `journal` with the
/// per-CPU [`TraceKind::RecoveryReplay`] events, returning what each CPU's
/// redo window yielded.
///
/// `machine` must be a fresh machine holding the crash's durable image and
/// `shared` a fresh shared state with the crashed run's layout; `journal`
/// is typically the output of [`crashed_journal`].
pub fn recover_world(
    machine: &mut Machine,
    shared: &mut TmShared,
    journal: &mut Vec<TraceEvent>,
) -> Vec<CpuRecovery> {
    let recoveries = shared.ustm.recover(machine);
    for r in &recoveries {
        journal.push(TraceEvent {
            cycle: machine.now(r.cpu),
            cpu: r.cpu,
            kind: TraceKind::RecoveryReplay(u32::try_from(r.replayed_records).unwrap_or(u32::MAX)),
        });
    }
    recoveries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashed_journal_truncates_and_marks() {
        use ufotm_machine::{Machine, MachineConfig, PersistConfig};
        let mut cfg = MachineConfig::table4(2);
        cfg.persist = Some(PersistConfig::default());
        let mut m = Machine::new(cfg);
        // Advance cpu 0 a little so the crash lands mid-run.
        for _ in 0..10 {
            let _ = m.load(0, ufotm_machine::Addr(0)).expect("plain load");
        }
        assert!(m.power_fail(0));
        let crash = m.crash_image().expect("latched").clone();

        let mut log = TraceLog::default();
        log.enable(16);
        log.record(1, 0, TraceKind::SwBegin);
        log.record(crash.cycle(), 0, TraceKind::SwCommit);
        log.record(crash.cycle() + 1, 1, TraceKind::SwBegin); // ghost
        let j = crashed_journal(&log, &crash);
        assert_eq!(j.len(), 3);
        assert_eq!(j[2].kind, TraceKind::PowerFail);
        assert_eq!(j[2].cpu, 0);
        assert!(j.iter().all(|e| e.cycle <= crash.cycle()));
    }

    #[test]
    fn injected_fault_event_cuts_by_recording_order() {
        use ufotm_machine::{Machine, MachineConfig, PersistConfig};
        let mut cfg = MachineConfig::table4(2);
        cfg.persist = Some(PersistConfig::default());
        let mut m = Machine::new(cfg);
        assert!(m.power_fail(0));
        let crash = m.crash_image().expect("latched").clone();

        let mut log = TraceLog::default();
        log.enable(16);
        // cpu 1's clock ran ahead of the failing cpu; its pre-crash event
        // must survive the cut even though its cycle exceeds the crash
        // cycle.
        log.record(crash.cycle() + 50, 1, TraceKind::SwBegin);
        log.record(
            crash.cycle(),
            0,
            TraceKind::FaultInjected(ChaosFaultKind::PowerFail),
        );
        log.record(crash.cycle() + 90, 1, TraceKind::SwCommit); // ghost
        let j = crashed_journal(&log, &crash);
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].kind, TraceKind::SwBegin);
        assert_eq!(j[1].kind, TraceKind::PowerFail);
    }
}
