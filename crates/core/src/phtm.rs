//! PhTM shared state: the two phase counters (paper §5, "PhTM [19]").
//!
//! * `stm_count` — software transactions currently executing. Hardware
//!   transactions read it **transactionally** at begin: if non-zero they
//!   abort immediately, and if it changes mid-flight the update's plain
//!   store kills them through coherence (the "nonT conflicts on the
//!   software-transactions-in-flight counter" of Figure 6).
//! * `must_count` — software transactions that failed over because of a
//!   condition the HTM cannot run (overflow, syscall, …). While non-zero,
//!   *new* transactions also start in software; once it drains, newcomers
//!   stall until `stm_count` reaches zero and the HTM phase resumes.

use ufotm_machine::Addr;

/// PhTM's two phase counters, each on its own cache line.
#[derive(Clone, Copy, Debug)]
pub struct PhtmShared {
    stm_addr: Addr,
    must_addr: Addr,
    /// Software transactions in flight.
    pub stm_count: u64,
    /// Of those, the ones that *had* to be in software.
    pub must_count: u64,
    /// Times a hardware attempt aborted because the system was in an STM
    /// phase.
    pub phase_aborts: u64,
    /// Cumulative stalls waiting for the STM phase to drain.
    pub phase_stalls: u64,
}

impl PhtmShared {
    /// Creates the counters at `base` (reserve two lines there).
    #[must_use]
    pub fn new(base: Addr) -> Self {
        PhtmShared {
            stm_addr: base,
            must_addr: Addr(base.0 + 64),
            stm_count: 0,
            must_count: 0,
            phase_aborts: 0,
            phase_stalls: 0,
        }
    }

    /// Simulated address of `stm_count` (hardware transactions read this
    /// transactionally).
    #[must_use]
    pub fn stm_addr(&self) -> Addr {
        self.stm_addr
    }

    /// Simulated address of `must_count`.
    #[must_use]
    pub fn must_addr(&self) -> Addr {
        self.must_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_live_on_distinct_lines() {
        let p = PhtmShared::new(Addr(0x2000));
        assert_ne!(p.stm_addr().line(), p.must_addr().line());
    }
}
