//! The per-thread transaction drivers: retry loops, the BTM abort handler
//! (paper Algorithm 3), and the hybrid failover machinery.

use ufotm_machine::{splitmix64, AbortInfo, AbortReason, AccessError, Addr, PlainAccess, SimRng};
use ufotm_sim::Ctx;
use ufotm_tl2::Tl2Txn;
use ufotm_ustm::{nont_load, TxnStatus, UstmAbort, UstmTxn};

use crate::lockbase::{lock_acquire, lock_release};
use crate::policy::HybridPolicy;
use crate::shared::{SystemKind, TmWorld};
use crate::trace::{EscalationTier, TraceKind};
use crate::tx::{Mode, Tx, TxAbort};

/// Records one trace event (free when the journal is disabled). Any chaos
/// faults the machine injected since the last event are drained first, so
/// a `FaultInjected` entry always precedes the driver event it provoked.
fn trace<U: TmWorld>(ctx: &mut Ctx<U>, kind: TraceKind) {
    let cpu = ctx.cpu();
    ctx.with(|w| {
        let injected = w.machine.drain_chaos_events();
        let t = w.shared.tm();
        if t.trace.is_recording() {
            for e in &injected {
                w.shared
                    .tm()
                    .trace
                    .record(e.cycle, e.cpu, TraceKind::FaultInjected(e.kind));
            }
            let cycle = w.machine.now(cpu);
            w.shared.tm().trace.record(cycle, cpu, kind);
        }
    });
}

/// How a hardware attempt failed.
enum HwFail {
    /// The BTM transaction aborted with this reason.
    Abort(AbortInfo),
    /// The microbenchmark hook forced a failover.
    Forced,
    /// The body executed `retry`; honour it in software.
    RetryRequested,
    /// PhTM only: the system is in an STM phase.
    PhaseBusy,
    /// A serial-irrevocable transaction holds the system; wait it out.
    SerialBusy,
}

/// The per-thread TM runtime: owns the software transaction handles and
/// drives attempts according to the selected [`SystemKind`] and
/// [`HybridPolicy`].
pub struct TmThread {
    cpu: usize,
    kind: SystemKind,
    policy: HybridPolicy,
    ustm: UstmTxn,
    tl2: Tl2Txn,
    alloc_budget: u32,
    consecutive: u32,
    /// Seeded per-thread stream for backoff jitter (watchdog tier 0);
    /// deterministic per CPU, so runs stay bit-reproducible.
    rng: SimRng,
    /// Global commit count at this thread's last watchdog observation.
    last_commits: u64,
    /// Consecutive watchdog observations with no global commit progress.
    stagnant: u32,
}

impl TmThread {
    /// Creates a runtime for `kind` on `cpu` with the default policy.
    #[must_use]
    pub fn new(kind: SystemKind, cpu: usize) -> Self {
        TmThread::with_policy(kind, cpu, HybridPolicy::default())
    }

    /// Creates a runtime with an explicit hybrid policy (Figure 8 knobs).
    #[must_use]
    pub fn with_policy(kind: SystemKind, cpu: usize, policy: HybridPolicy) -> Self {
        TmThread {
            cpu,
            kind,
            policy,
            ustm: UstmTxn::new(cpu),
            tl2: Tl2Txn::new(cpu),
            alloc_budget: 1, // first allocation refills the pool
            consecutive: 0,
            rng: SimRng::seed_from_u64(splitmix64(&mut (0x057a_7d06 ^ cpu as u64))),
            last_commits: 0,
            stagnant: 0,
        }
    }

    /// The system this runtime drives.
    #[must_use]
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Thread-start setup: arms UFO fault delivery for strongly-atomic
    /// systems (their threads must fault on protected lines outside their
    /// own transactions — that is what protects software transactions from
    /// both plain code and hardware transactions).
    pub fn install<U: TmWorld>(&self, ctx: &mut Ctx<U>) {
        ctx.set_ufo_enabled(self.kind.strong_atomicity());
    }

    /// Runs `body` as one transaction to commit, retrying and failing over
    /// per the system's policy, and returns the body's result.
    ///
    /// The body receives a fresh [`Tx`] per attempt and must propagate
    /// `Err` from every fallible `Tx` operation.
    pub fn transaction<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        mut body: impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        self.consecutive = 0;
        match self.kind {
            SystemKind::Sequential => self.plain_path(ctx, &mut body, false),
            SystemKind::GlobalLock => self.plain_path(ctx, &mut body, true),
            SystemKind::UstmWeak | SystemKind::UstmStrong => self.ustm_path(ctx, &mut body),
            SystemKind::Tl2 => self.tl2_path(ctx, &mut body),
            SystemKind::UnboundedHtm => self.unbounded_path(ctx, &mut body),
            SystemKind::UfoHybrid => self.ufo_hybrid_path(ctx, &mut body),
            SystemKind::HyTm => self.hytm_path(ctx, &mut body),
            SystemKind::PhTm => self.phtm_path(ctx, &mut body),
        }
    }

    // --- baselines -------------------------------------------------------

    fn plain_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        locked: bool,
    ) -> R {
        if locked {
            lock_acquire(ctx, 80);
        }
        let mut tx = Tx::new(self.cpu, Mode::Plain, self.policy, &mut self.alloc_budget);
        let r = body(&mut tx, ctx);
        let bk = tx.into_bookkeeping();
        let r = r.unwrap_or_else(|e| panic!("plain-mode body cannot abort, got {e}"));
        apply_frees(ctx, &bk.frees);
        ctx.with(|w| w.shared.tm().stats.lock_commits += 1);
        trace(ctx, TraceKind::PlainCommit);
        bk.run_deferred();
        if locked {
            lock_release(ctx);
        }
        r
    }

    fn ustm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        let mut kills: u32 = 0;
        let mut serial_refused = false;
        loop {
            if self.serial_gate_armed() {
                self.wait_serial_clear(ctx);
            }
            // Watchdog tier 2: a transaction that keeps getting killed in
            // software (or observes system-wide stagnation) escalates to
            // serial-irrevocable execution. Only sound where the serial
            // path's plain accesses are strongly atomic — and only on
            // volatile machines: the serial path has no redo record, so a
            // persistent machine refuses the escalation (counted once per
            // transaction) and stays on the software tier, whose
            // age-ordered kills still guarantee progress.
            if let Some(limit) = self.policy.watchdog_sw_kills {
                let stagnant = kills > 0 && self.observe_stagnation(ctx);
                if (kills >= limit || stagnant) && self.kind.strong_atomicity() && !serial_refused {
                    if self.refuse_serial_escalation(ctx) {
                        serial_refused = true;
                    } else {
                        self.escalate(ctx, EscalationTier::Serial);
                        return self.serial_path(ctx, body);
                    }
                }
            }
            trace(ctx, TraceKind::SwBegin);
            self.ustm.begin(ctx);
            let mut tx = Tx::new(
                self.cpu,
                Mode::Ustm(&mut self.ustm),
                self.policy,
                &mut self.alloc_budget,
            );
            let out = body(&mut tx, ctx);
            let bk = tx.into_bookkeeping();
            match out {
                Ok(r) => {
                    let fences_before = ctx.with(|w| w.machine.persist_stats().fences);
                    match self.ustm.commit(ctx) {
                        Ok(()) => {
                            apply_frees(ctx, &bk.frees);
                            ctx.with(|w| w.shared.tm().stats.sw_commits += 1);
                            // A persistent commit fenced its redo record
                            // durable before releasing ownership; journal the
                            // fence so the auditor can check the ordering.
                            if ctx.with(|w| w.machine.persist_stats().fences) > fences_before {
                                trace(ctx, TraceKind::PersistFence);
                            }
                            trace(ctx, TraceKind::SwCommit);
                            bk.run_deferred();
                            return r;
                        }
                        Err(UstmAbort::Killed { .. }) => {
                            undo_allocs(ctx, &bk.allocs);
                            trace(ctx, TraceKind::SwAbort);
                            self.ustm.wait_for_killer(ctx);
                            kills += 1;
                        }
                        Err(other) => unreachable!("commit produced {other:?}"),
                    }
                }
                Err(TxAbort::Stm(UstmAbort::Killed { .. })) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                    self.ustm.wait_for_killer(ctx);
                    kills += 1;
                }
                Err(TxAbort::Stm(UstmAbort::RetryWoken | UstmAbort::Explicit)) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                }
                Err(other) => unreachable!("USTM body produced {other}"),
            }
        }
    }

    fn tl2_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            trace(ctx, TraceKind::SwBegin);
            self.tl2.begin(ctx);
            let mut tx = Tx::new(
                self.cpu,
                Mode::Tl2(&mut self.tl2),
                self.policy,
                &mut self.alloc_budget,
            );
            let out = body(&mut tx, ctx);
            let bk = tx.into_bookkeeping();
            match out {
                Ok(r) => {
                    if self.tl2.commit(ctx).is_ok() {
                        apply_frees(ctx, &bk.frees);
                        ctx.with(|w| w.shared.tm().stats.sw_commits += 1);
                        trace(ctx, TraceKind::SwCommit);
                        bk.run_deferred();
                        return r;
                    }
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                }
                Err(TxAbort::Tl2(_)) | Err(TxAbort::RetryRequested) => {
                    if self.tl2.is_active() {
                        self.tl2.drop_attempt(ctx);
                    }
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                }
                Err(other) => unreachable!("TL2 body produced {other}"),
            }
            self.consecutive += 1;
            let backoff = self.policy.backoff_for(self.consecutive);
            ctx.with(|w| w.shared.tm().stats.backoff_cycles += backoff);
            ctx.stall(backoff).plain("TL2 backoff");
        }
    }

    // --- hardware attempt ------------------------------------------------

    /// One hardware attempt: begin, (PhTM phase check), body, commit.
    fn hw_attempt<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        hytm: bool,
        phtm_check: bool,
    ) -> Result<R, HwFail> {
        if let Err(AccessError::TxnAbort(i)) = ctx.btm_begin() {
            // The attempt died at begin (e.g. a timer interrupt landing on
            // the begin op). Journal both edges so every abort has a begin
            // and the trace auditor sees a balanced attempt.
            trace(ctx, TraceKind::HwBegin);
            trace(ctx, TraceKind::HwAbort(i.reason));
            return Err(HwFail::Abort(i));
        }
        trace(ctx, TraceKind::HwBegin);
        if phtm_check {
            // Transactionally subscribe to the STM-phase counter: if it is
            // non-zero now (or changes mid-flight), this transaction dies.
            let cpu = self.cpu;
            loop {
                let r = ctx.with(|w| {
                    let a = w.shared.tm().phtm.stm_addr();
                    w.machine.load(cpu, a).map(|_| w.shared.tm().phtm.stm_count)
                });
                match r {
                    Ok(0) => break,
                    Ok(_) => {
                        ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
                        ctx.with(|w| w.shared.tm().phtm.phase_aborts += 1);
                        trace(ctx, TraceKind::HwAbort(AbortReason::Explicit));
                        return Err(HwFail::PhaseBusy);
                    }
                    Err(AccessError::Nacked) => {}
                    Err(AccessError::TxnAbort(i)) => {
                        trace(ctx, TraceKind::HwAbort(i.reason));
                        return Err(HwFail::Abort(i));
                    }
                    Err(e) => panic!("phase check: {e}"),
                }
            }
        }
        if self.serial_gate_armed() {
            // Transactionally subscribe to the serial-irrevocable flag:
            // raising it dooms this transaction through plain coherence;
            // finding it already raised means a serial transaction holds
            // the system — abort and get out of its way. Without this gate
            // a hardware commit could land between a serial transaction's
            // read and write of the same line (a lost update).
            let cpu = self.cpu;
            loop {
                let r = ctx.with(|w| {
                    let a = w.shared.tm().serial.addr();
                    w.machine.load(cpu, a).map(|_| w.shared.tm().serial.active)
                });
                match r {
                    Ok(false) => break,
                    Ok(true) => {
                        ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
                        trace(ctx, TraceKind::HwAbort(AbortReason::Explicit));
                        return Err(HwFail::SerialBusy);
                    }
                    Err(AccessError::Nacked) => {}
                    Err(AccessError::TxnAbort(i)) => {
                        trace(ctx, TraceKind::HwAbort(i.reason));
                        return Err(HwFail::Abort(i));
                    }
                    Err(e) => panic!("serial gate subscribe: {e}"),
                }
            }
        }
        let mut tx = Tx::new(
            self.cpu,
            Mode::Hw { hytm },
            self.policy,
            &mut self.alloc_budget,
        );
        let out = body(&mut tx, ctx);
        let bk = tx.into_bookkeeping();
        match out {
            Ok(r) => match ctx.btm_end() {
                Ok(()) => {
                    apply_frees(ctx, &bk.frees);
                    wake_sleepers(ctx, &bk.wakes);
                    ctx.with(|w| w.shared.tm().stats.hw_commits += 1);
                    trace(ctx, TraceKind::HwCommit);
                    bk.run_deferred();
                    Ok(r)
                }
                Err(AccessError::TxnAbort(i)) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::HwAbort(i.reason));
                    Err(HwFail::Abort(i))
                }
                Err(e) => panic!("btm_end: {e}"),
            },
            Err(e) => {
                undo_allocs(ctx, &bk.allocs);
                match e {
                    TxAbort::Hw(i) => {
                        trace(ctx, TraceKind::HwAbort(i.reason));
                        Err(HwFail::Abort(i))
                    }
                    // Both hooks already aborted the BTM transaction (as
                    // Explicit); journal the abort so the attempt is
                    // balanced in the trace.
                    TxAbort::Forced => {
                        trace(ctx, TraceKind::HwAbort(AbortReason::Explicit));
                        Err(HwFail::Forced)
                    }
                    TxAbort::RetryRequested => {
                        trace(ctx, TraceKind::HwAbort(AbortReason::Explicit));
                        Err(HwFail::RetryRequested)
                    }
                    TxAbort::Stm(_) | TxAbort::Tl2(_) => {
                        unreachable!("software abort in a hardware attempt")
                    }
                }
            }
        }
    }

    /// Exponential backoff after a contention-class abort (Algorithm 3's
    /// counted backoff), with optional seeded jitter (watchdog tier 0 —
    /// symmetric contenders otherwise back off in lockstep and re-collide).
    fn backoff<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) {
        self.consecutive += 1;
        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
        let mut cycles = self.policy.backoff_for(self.consecutive);
        if self.policy.backoff_jitter_pct > 0 {
            let span = cycles * u64::from(self.policy.backoff_jitter_pct) / 100;
            if span > 0 {
                cycles += self.rng.gen_range(0..span);
            }
        }
        ctx.with(|w| w.shared.tm().stats.backoff_cycles += cycles);
        ctx.stall(cycles).plain("backoff stall");
    }

    /// One watchdog observation: has the whole system committed anything
    /// since this thread last looked? Returns `true` when the stagnation
    /// limit is armed and has been reached (the livelock signature:
    /// everybody aborts, nobody commits).
    fn observe_stagnation<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> bool {
        let Some(limit) = self.policy.watchdog_stagnation else {
            return false;
        };
        let now = ctx.with(|w| w.shared.tm().stats.total_commits());
        if now != self.last_commits {
            self.last_commits = now;
            self.stagnant = 0;
            return false;
        }
        self.stagnant += 1;
        self.stagnant >= limit
    }

    /// Whether a serial-irrevocable escalation must be refused because
    /// the machine has a persist domain. The serial path commits through
    /// plain stores with **no redo record**, so a power failure inside a
    /// serial window would leave a torn, unrecoverable heap — on
    /// persistent machines the watchdog therefore caps out at the
    /// software tier. Each refusal bumps
    /// [`HybridStats::durable_serial_refusals`](crate::HybridStats), so
    /// a run that degraded this way is visible in its report.
    fn refuse_serial_escalation<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> bool {
        ctx.with(|w| {
            let durable = w.machine.persist_enabled();
            if durable {
                w.shared.tm().stats.durable_serial_refusals += 1;
            }
            durable
        })
    }

    /// Records a watchdog escalation (counter + trace journal).
    fn escalate<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, tier: EscalationTier) {
        self.stagnant = 0;
        ctx.with(|w| w.shared.tm().stats.watchdog_escalations += 1);
        trace(ctx, TraceKind::WatchdogEscalation(tier));
    }

    /// Whether this thread participates in the serial-irrevocable gate:
    /// the policy can escalate to tier 2 and the system's plain accesses
    /// are strongly atomic (the soundness requirement for serial mode).
    fn serial_gate_armed(&self) -> bool {
        self.kind.strong_atomicity()
            && (self.policy.watchdog_sw_kills.is_some()
                || self.policy.watchdog_stagnation.is_some())
    }

    /// Spins (with stalls) until no serial-irrevocable transaction holds
    /// the system.
    fn wait_serial_clear<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) {
        let cpu = self.cpu;
        loop {
            let active = ctx.with(|w| {
                let a = w.shared.tm().serial.addr();
                w.machine.load(cpu, a).plain("serial flag read");
                w.shared.tm().serial.active
            });
            if !active {
                return;
            }
            ctx.stall(200).plain("serial gate wait");
        }
    }

    /// The watchdog's last tier: run the transaction serial-irrevocably
    /// under the global lock with the stop flag raised. Raising the flag
    /// dooms every subscribed hardware transaction through plain coherence
    /// and turns away new attempts; in-flight software transactions are
    /// quiesced before the body runs. Accesses then use the
    /// strong-atomicity-aware non-transactional path, which cannot abort,
    /// so this attempt always commits — the bounded-retry guarantee.
    fn serial_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        let cpu = self.cpu;
        let entered = ctx.with(|w| w.machine.now(cpu));
        lock_acquire(ctx, 80);
        ctx.with(|w| {
            let a = {
                let t = w.shared.tm();
                t.serial.active = true;
                t.serial.raised += 1;
                t.serial.addr()
            };
            w.machine.store(cpu, a, 1).plain("serial flag raise");
        });
        // Quiesce in-flight software transactions. Parked (`Retrying`)
        // sleepers may stay parked: they hold read ownership only, and a
        // conflicting serial store wakes them through the fault handler.
        loop {
            let busy = ctx.with(|w| {
                w.shared.ustm().slots.iter().enumerate().any(|(o, s)| {
                    o != cpu
                        && matches!(
                            s.status,
                            TxnStatus::Active | TxnStatus::Committing | TxnStatus::Aborting
                        )
                })
            });
            if !busy {
                break;
            }
            ctx.stall(120).plain("serial quiesce wait");
        }
        // Journaled only now — gate raised and quiesce complete — so the
        // SerialIrrevocable..PlainCommit window in the trace is exactly the
        // interval in which no other CPU may commit (the auditor's serial-
        // exclusivity invariant).
        trace(ctx, TraceKind::SerialIrrevocable);
        let mut tx = Tx::new(self.cpu, Mode::Serial, self.policy, &mut self.alloc_budget);
        let r = body(&mut tx, ctx);
        let bk = tx.into_bookkeeping();
        let r = r.unwrap_or_else(|e| panic!("serial-mode body cannot abort, got {e}"));
        apply_frees(ctx, &bk.frees);
        ctx.with(|w| w.shared.tm().stats.serial_commits += 1);
        trace(ctx, TraceKind::PlainCommit);
        bk.run_deferred();
        ctx.with(|w| {
            let a = {
                let t = w.shared.tm();
                t.serial.active = false;
                t.serial.addr()
            };
            w.machine.store(cpu, a, 0).plain("serial flag lower");
        });
        lock_release(ctx);
        ctx.with(|w| {
            let window = w.machine.now(cpu) - entered;
            w.shared.tm().stats.serial_cycles += window;
        });
        r
    }

    /// Watchdog tiers 1–2 for hardware attempts. `Software` once the
    /// consecutive-abort limit trips; `Serial` straight away when global
    /// commit progress has stalled (per-transaction patience cannot break
    /// a livelock — every contender must leave the optimistic path).
    fn watchdog_tier<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) -> Option<EscalationTier> {
        let stagnant = self.observe_stagnation(ctx);
        if stagnant && self.kind.strong_atomicity() {
            // On a persistent machine the serial tier is off the table
            // (no redo record — see `refuse_serial_escalation`); fall
            // through to the software tier instead.
            if !self.refuse_serial_escalation(ctx) {
                return Some(EscalationTier::Serial);
            }
        }
        let tripped = self
            .policy
            .watchdog_hw_attempts
            .is_some_and(|n| self.consecutive + 1 >= n);
        if tripped || stagnant {
            return Some(EscalationTier::Software);
        }
        None
    }

    /// Software fix-up for a page-fault abort: touch the page
    /// non-transactionally (strong-atomicity-aware), then retry in hardware
    /// (Algorithm 3).
    fn resolve_page_fault<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, addr: Option<Addr>) {
        if let Some(a) = addr {
            let _ = nont_load(ctx, a);
        }
        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
    }

    // --- the paper's hybrid ---------------------------------------------

    /// The UFO hybrid (paper §4.3): try BTM, classify aborts per
    /// Algorithm 3, fail over to the strongly-atomic USTM when hardware
    /// cannot help.
    fn ufo_hybrid_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, false, false) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::RetryRequested) => {
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::PhaseBusy) => unreachable!("no phase check in UFO hybrid"),
                // A serial-irrevocable transaction holds the system: wait
                // for it to finish, then retry in hardware (no backoff —
                // this is not contention, and the wait itself paces us).
                Err(HwFail::SerialBusy) => self.wait_serial_clear(ctx),
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        trace(ctx, TraceKind::Failover(info.reason));
                        return self.ustm_path(ctx, body);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        AbortReason::Conflict
                        | AbortReason::NonTConflict
                        | AbortReason::UfoSet
                        | AbortReason::UfoFault => {
                            if let Some(n) = self.policy.conflict_failover_after {
                                if self.consecutive + 1 >= n {
                                    ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                                    trace(ctx, TraceKind::Failover(info.reason));
                                    return self.ustm_path(ctx, body);
                                }
                            }
                            if let Some(tier) = self.watchdog_tier(ctx) {
                                self.escalate(ctx, tier);
                                return match tier {
                                    EscalationTier::Serial => self.serial_path(ctx, body),
                                    EscalationTier::Software => self.ustm_path(ctx, body),
                                };
                            }
                            self.backoff(ctx);
                        }
                        _ => {
                            if let Some(tier) = self.watchdog_tier(ctx) {
                                self.escalate(ctx, tier);
                                return match tier {
                                    EscalationTier::Serial => self.serial_path(ctx, body),
                                    EscalationTier::Software => self.ustm_path(ctx, body),
                                };
                            }
                            self.backoff(ctx);
                        }
                    }
                }
            }
        }
    }

    // --- prior hybrids ----------------------------------------------------

    /// The idealized unbounded HTM: everything retries in hardware; page
    /// faults and allocator syscalls get software fix-ups (the "simplified
    /// abort handler" of §5's footnote).
    fn unbounded_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, false, false) {
                Ok(r) => return r,
                Err(HwFail::Abort(info)) => match info.reason {
                    AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                    AbortReason::Syscall => {
                        // The pool refill already happened; pay its cost
                        // outside the transaction and retry.
                        let cost = ctx.with(|w| w.shared.tm().alloc_model.syscall_cost);
                        ctx.work(cost).plain("refill outside txn");
                        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
                    }
                    _ => self.backoff(ctx),
                },
                // No software to fail over to: spin and retry.
                Err(HwFail::Forced) | Err(HwFail::RetryRequested) => self.backoff(ctx),
                Err(HwFail::PhaseBusy | HwFail::SerialBusy) => unreachable!(),
            }
        }
    }

    /// HyTM: hardware transactions carry otable-check barriers; anything
    /// the hardware cannot run fails over to the (weakly-atomic) USTM.
    fn hytm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, true, false) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::RetryRequested) => return self.ustm_path(ctx, body),
                Err(HwFail::PhaseBusy | HwFail::SerialBusy) => {
                    unreachable!("no phase check or serial gate in HyTM")
                }
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        trace(ctx, TraceKind::Failover(info.reason));
                        return self.ustm_path(ctx, body);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        // Explicit = otable conflict with an STM txn:
                        // retry in hardware after backoff (paper §5).
                        _ => self.backoff(ctx),
                    }
                }
            }
        }
    }

    /// PhTM: hardware and software phases exclude each other via the two
    /// global counters.
    fn phtm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        let cpu = self.cpu;
        loop {
            // Phase check (plain reads of both counters).
            let (must, stm) = ctx.with(|w| {
                let (ma, sa) = {
                    let p = &w.shared.tm().phtm;
                    (p.must_addr(), p.stm_addr())
                };
                w.machine.load(cpu, ma).plain("must read");
                w.machine.load(cpu, sa).plain("stm read");
                let p = &w.shared.tm().phtm;
                (p.must_count, p.stm_count)
            });
            if must != 0 {
                // Mandatory STM phase: new transactions start in software.
                return self.phtm_sw(ctx, body, false);
            }
            if stm != 0 {
                // Draining back toward a hardware phase: stall, don't start.
                ctx.with(|w| w.shared.tm().phtm.phase_stalls += 1);
                ctx.stall(self.policy.backoff_base * 4).plain("phase stall");
                continue;
            }
            match self.hw_attempt(ctx, body, false, true) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.phtm_sw(ctx, body, true);
                }
                Err(HwFail::RetryRequested) => return self.phtm_sw(ctx, body, true),
                Err(HwFail::PhaseBusy) => { /* loop back to the phase check */ }
                Err(HwFail::SerialBusy) => unreachable!("no serial gate in PhTM"),
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        trace(ctx, TraceKind::Failover(info.reason));
                        return self.phtm_sw(ctx, body, true);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        _ => self.backoff(ctx),
                    }
                }
            }
        }
    }

    /// Runs the transaction in PhTM's software mode, bumping the phase
    /// counters around it. The counter stores are plain — they kill any
    /// hardware transaction subscribed to the counter line, exactly the
    /// paper's "nonT conflicts on the software-transactions-in-flight
    /// counter".
    fn phtm_sw<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        mandatory: bool,
    ) -> R {
        let cpu = self.cpu;
        ctx.with(|w| {
            let (sa, ma) = {
                let p = &w.shared.tm().phtm;
                (p.stm_addr(), p.must_addr())
            };
            {
                let p = &mut w.shared.tm().phtm;
                p.stm_count += 1;
            }
            let sv = w.shared.tm().phtm.stm_count;
            w.machine.store(cpu, sa, sv).plain("stm count store");
            if mandatory {
                {
                    let p = &mut w.shared.tm().phtm;
                    p.must_count += 1;
                }
                let mv = w.shared.tm().phtm.must_count;
                w.machine.store(cpu, ma, mv).plain("must count store");
            }
        });
        let r = self.ustm_path(ctx, body);
        ctx.with(|w| {
            let (sa, ma) = {
                let p = &w.shared.tm().phtm;
                (p.stm_addr(), p.must_addr())
            };
            {
                let p = &mut w.shared.tm().phtm;
                p.stm_count -= 1;
            }
            let sv = w.shared.tm().phtm.stm_count;
            w.machine.store(cpu, sa, sv).plain("stm count store");
            if mandatory {
                {
                    let p = &mut w.shared.tm().phtm;
                    p.must_count -= 1;
                }
                let mv = w.shared.tm().phtm.must_count;
                w.machine.store(cpu, ma, mv).plain("must count store");
            }
        });
        r
    }
}

/// Frees deferred by a committed transaction.
fn apply_frees<U: TmWorld>(ctx: &mut Ctx<U>, frees: &[Addr]) {
    if frees.is_empty() {
        return;
    }
    let frees = frees.to_vec();
    ctx.with(|w| {
        let heap = &mut w.shared.tm().heap;
        for a in frees {
            heap.free(a).expect("double free of heap allocation");
        }
    });
}

/// Wakes `retry`-parked STM sleepers after a hardware commit (paper §6:
/// the wake is deferred so an aborted transaction never wakes anyone).
fn wake_sleepers<U: TmWorld>(ctx: &mut Ctx<U>, wakes: &[usize]) {
    if wakes.is_empty() {
        return;
    }
    let cpu = ctx.cpu();
    let wakes = wakes.to_vec();
    ctx.with(|w| {
        for s in wakes {
            let slot_addr = {
                let u = w.shared.ustm();
                u.slots[s].woken = true;
                u.slot_addr(s)
            };
            w.machine.store(cpu, slot_addr, 4).plain("wake store");
        }
    });
}

/// Allocations rolled back by an aborted attempt.
fn undo_allocs<U: TmWorld>(ctx: &mut Ctx<U>, allocs: &[Addr]) {
    if allocs.is_empty() {
        return;
    }
    let allocs = allocs.to_vec();
    ctx.with(|w| {
        let heap = &mut w.shared.tm().heap;
        for a in allocs {
            heap.free(a).expect("aborted allocation already freed");
        }
    });
}
