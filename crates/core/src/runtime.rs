//! The per-thread transaction drivers: retry loops, the BTM abort handler
//! (paper Algorithm 3), and the hybrid failover machinery.

use ufotm_machine::{AbortInfo, AbortReason, AccessError, Addr};
use ufotm_sim::Ctx;
use ufotm_tl2::Tl2Txn;
use ufotm_ustm::{nont_load, UstmAbort, UstmTxn};

use crate::lockbase::{lock_acquire, lock_release};
use crate::policy::HybridPolicy;
use crate::shared::{SystemKind, TmWorld};
use crate::trace::TraceKind;
use crate::tx::{Mode, Tx, TxAbort};

/// Records one trace event (free when the journal is disabled).
fn trace<U: TmWorld>(ctx: &mut Ctx<U>, kind: TraceKind) {
    let cpu = ctx.cpu();
    ctx.with(|w| {
        let t = w.shared.tm();
        if t.trace.is_recording() {
            let cycle = w.machine.now(cpu);
            w.shared.tm().trace.record(cycle, cpu, kind);
        }
    });
}

/// How a hardware attempt failed.
enum HwFail {
    /// The BTM transaction aborted with this reason.
    Abort(AbortInfo),
    /// The microbenchmark hook forced a failover.
    Forced,
    /// The body executed `retry`; honour it in software.
    RetryRequested,
    /// PhTM only: the system is in an STM phase.
    PhaseBusy,
}

/// The per-thread TM runtime: owns the software transaction handles and
/// drives attempts according to the selected [`SystemKind`] and
/// [`HybridPolicy`].
pub struct TmThread {
    cpu: usize,
    kind: SystemKind,
    policy: HybridPolicy,
    ustm: UstmTxn,
    tl2: Tl2Txn,
    alloc_budget: u32,
    consecutive: u32,
}

impl TmThread {
    /// Creates a runtime for `kind` on `cpu` with the default policy.
    #[must_use]
    pub fn new(kind: SystemKind, cpu: usize) -> Self {
        TmThread::with_policy(kind, cpu, HybridPolicy::default())
    }

    /// Creates a runtime with an explicit hybrid policy (Figure 8 knobs).
    #[must_use]
    pub fn with_policy(kind: SystemKind, cpu: usize, policy: HybridPolicy) -> Self {
        TmThread {
            cpu,
            kind,
            policy,
            ustm: UstmTxn::new(cpu),
            tl2: Tl2Txn::new(cpu),
            alloc_budget: 1, // first allocation refills the pool
            consecutive: 0,
        }
    }

    /// The system this runtime drives.
    #[must_use]
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Thread-start setup: arms UFO fault delivery for strongly-atomic
    /// systems (their threads must fault on protected lines outside their
    /// own transactions — that is what protects software transactions from
    /// both plain code and hardware transactions).
    pub fn install<U: TmWorld>(&self, ctx: &mut Ctx<U>) {
        ctx.set_ufo_enabled(self.kind.strong_atomicity());
    }

    /// Runs `body` as one transaction to commit, retrying and failing over
    /// per the system's policy, and returns the body's result.
    ///
    /// The body receives a fresh [`Tx`] per attempt and must propagate
    /// `Err` from every fallible `Tx` operation.
    pub fn transaction<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        mut body: impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        self.consecutive = 0;
        match self.kind {
            SystemKind::Sequential => self.plain_path(ctx, &mut body, false),
            SystemKind::GlobalLock => self.plain_path(ctx, &mut body, true),
            SystemKind::UstmWeak | SystemKind::UstmStrong => self.ustm_path(ctx, &mut body),
            SystemKind::Tl2 => self.tl2_path(ctx, &mut body),
            SystemKind::UnboundedHtm => self.unbounded_path(ctx, &mut body),
            SystemKind::UfoHybrid => self.ufo_hybrid_path(ctx, &mut body),
            SystemKind::HyTm => self.hytm_path(ctx, &mut body),
            SystemKind::PhTm => self.phtm_path(ctx, &mut body),
        }
    }

    // --- baselines -------------------------------------------------------

    fn plain_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        locked: bool,
    ) -> R {
        if locked {
            lock_acquire(ctx, 80);
        }
        let mut tx = Tx::new(self.cpu, Mode::Plain, self.policy, &mut self.alloc_budget);
        let r = body(&mut tx, ctx);
        let bk = tx.into_bookkeeping();
        let r = r.unwrap_or_else(|e| panic!("plain-mode body cannot abort, got {e}"));
        apply_frees(ctx, &bk.frees);
        ctx.with(|w| w.shared.tm().stats.lock_commits += 1);
        trace(ctx, TraceKind::PlainCommit);
        bk.run_deferred();
        if locked {
            lock_release(ctx);
        }
        r
    }

    fn ustm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            trace(ctx, TraceKind::SwBegin);
            self.ustm.begin(ctx);
            let mut tx = Tx::new(
                self.cpu,
                Mode::Ustm(&mut self.ustm),
                self.policy,
                &mut self.alloc_budget,
            );
            let out = body(&mut tx, ctx);
            let bk = tx.into_bookkeeping();
            match out {
                Ok(r) => match self.ustm.commit(ctx) {
                    Ok(()) => {
                        apply_frees(ctx, &bk.frees);
                        ctx.with(|w| w.shared.tm().stats.sw_commits += 1);
                        trace(ctx, TraceKind::SwCommit);
                        bk.run_deferred();
                        return r;
                    }
                    Err(UstmAbort::Killed { .. }) => {
                        undo_allocs(ctx, &bk.allocs);
                        trace(ctx, TraceKind::SwAbort);
                        self.ustm.wait_for_killer(ctx);
                    }
                    Err(other) => unreachable!("commit produced {other:?}"),
                },
                Err(TxAbort::Stm(UstmAbort::Killed { .. })) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                    self.ustm.wait_for_killer(ctx);
                }
                Err(TxAbort::Stm(UstmAbort::RetryWoken | UstmAbort::Explicit)) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                }
                Err(other) => unreachable!("USTM body produced {other}"),
            }
        }
    }

    fn tl2_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            trace(ctx, TraceKind::SwBegin);
            self.tl2.begin(ctx);
            let mut tx = Tx::new(
                self.cpu,
                Mode::Tl2(&mut self.tl2),
                self.policy,
                &mut self.alloc_budget,
            );
            let out = body(&mut tx, ctx);
            let bk = tx.into_bookkeeping();
            match out {
                Ok(r) => {
                    if self.tl2.commit(ctx).is_ok() {
                        apply_frees(ctx, &bk.frees);
                        ctx.with(|w| w.shared.tm().stats.sw_commits += 1);
                        trace(ctx, TraceKind::SwCommit);
                        bk.run_deferred();
                        return r;
                    }
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::SwAbort);
                }
                Err(TxAbort::Tl2(_)) | Err(TxAbort::RetryRequested) => {
                    if self.tl2.is_active() {
                        self.tl2.drop_attempt(ctx);
                    }
                    undo_allocs(ctx, &bk.allocs);
                }
                Err(other) => unreachable!("TL2 body produced {other}"),
            }
            self.consecutive += 1;
            let backoff = self.policy.backoff_for(self.consecutive);
            ctx.stall(backoff).expect("TL2 backoff");
        }
    }

    // --- hardware attempt ------------------------------------------------

    /// One hardware attempt: begin, (PhTM phase check), body, commit.
    fn hw_attempt<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        hytm: bool,
        phtm_check: bool,
    ) -> Result<R, HwFail> {
        if let Err(AccessError::TxnAbort(i)) = ctx.btm_begin() {
            return Err(HwFail::Abort(i));
        }
        trace(ctx, TraceKind::HwBegin);
        if phtm_check {
            // Transactionally subscribe to the STM-phase counter: if it is
            // non-zero now (or changes mid-flight), this transaction dies.
            let cpu = self.cpu;
            loop {
                let r = ctx.with(|w| {
                    let a = w.shared.tm().phtm.stm_addr();
                    w.machine.load(cpu, a).map(|_| w.shared.tm().phtm.stm_count)
                });
                match r {
                    Ok(0) => break,
                    Ok(_) => {
                        ctx.btm_abort_with(AbortInfo::new(AbortReason::Explicit));
                        ctx.with(|w| w.shared.tm().phtm.phase_aborts += 1);
                        return Err(HwFail::PhaseBusy);
                    }
                    Err(AccessError::Nacked) => {}
                    Err(AccessError::TxnAbort(i)) => return Err(HwFail::Abort(i)),
                    Err(e) => panic!("phase check: {e}"),
                }
            }
        }
        let mut tx = Tx::new(self.cpu, Mode::Hw { hytm }, self.policy, &mut self.alloc_budget);
        let out = body(&mut tx, ctx);
        let bk = tx.into_bookkeeping();
        match out {
            Ok(r) => match ctx.btm_end() {
                Ok(()) => {
                    apply_frees(ctx, &bk.frees);
                    wake_sleepers(ctx, &bk.wakes);
                    ctx.with(|w| w.shared.tm().stats.hw_commits += 1);
                    trace(ctx, TraceKind::HwCommit);
                    bk.run_deferred();
                    Ok(r)
                }
                Err(AccessError::TxnAbort(i)) => {
                    undo_allocs(ctx, &bk.allocs);
                    trace(ctx, TraceKind::HwAbort(i.reason));
                    Err(HwFail::Abort(i))
                }
                Err(e) => panic!("btm_end: {e}"),
            },
            Err(e) => {
                undo_allocs(ctx, &bk.allocs);
                match e {
                    TxAbort::Hw(i) => {
                        trace(ctx, TraceKind::HwAbort(i.reason));
                        Err(HwFail::Abort(i))
                    }
                    TxAbort::Forced => Err(HwFail::Forced),
                    TxAbort::RetryRequested => Err(HwFail::RetryRequested),
                    TxAbort::Stm(_) | TxAbort::Tl2(_) => {
                        unreachable!("software abort in a hardware attempt")
                    }
                }
            }
        }
    }

    /// Exponential backoff after a contention-class abort (Algorithm 3's
    /// counted backoff).
    fn backoff<U: TmWorld>(&mut self, ctx: &mut Ctx<U>) {
        self.consecutive += 1;
        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
        let cycles = self.policy.backoff_for(self.consecutive);
        ctx.stall(cycles).expect("backoff stall");
    }

    /// Software fix-up for a page-fault abort: touch the page
    /// non-transactionally (strong-atomicity-aware), then retry in hardware
    /// (Algorithm 3).
    fn resolve_page_fault<U: TmWorld>(&mut self, ctx: &mut Ctx<U>, addr: Option<Addr>) {
        if let Some(a) = addr {
            let _ = nont_load(ctx, a);
        }
        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
    }

    // --- the paper's hybrid ---------------------------------------------

    /// The UFO hybrid (paper §4.3): try BTM, classify aborts per
    /// Algorithm 3, fail over to the strongly-atomic USTM when hardware
    /// cannot help.
    fn ufo_hybrid_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, false, false) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::RetryRequested) => {
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::PhaseBusy) => unreachable!("no phase check in UFO hybrid"),
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        trace(ctx, TraceKind::Failover(info.reason));
                        return self.ustm_path(ctx, body);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        AbortReason::Conflict
                        | AbortReason::NonTConflict
                        | AbortReason::UfoSet
                        | AbortReason::UfoFault => {
                            if let Some(n) = self.policy.conflict_failover_after {
                                if self.consecutive + 1 >= n {
                                    ctx.with(|w| {
                                        w.shared.tm().stats.record_failover(info.reason)
                                    });
                                    return self.ustm_path(ctx, body);
                                }
                            }
                            self.backoff(ctx);
                        }
                        _ => self.backoff(ctx),
                    }
                }
            }
        }
    }

    // --- prior hybrids ----------------------------------------------------

    /// The idealized unbounded HTM: everything retries in hardware; page
    /// faults and allocator syscalls get software fix-ups (the "simplified
    /// abort handler" of §5's footnote).
    fn unbounded_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, false, false) {
                Ok(r) => return r,
                Err(HwFail::Abort(info)) => match info.reason {
                    AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                    AbortReason::Syscall => {
                        // The pool refill already happened; pay its cost
                        // outside the transaction and retry.
                        let cost = ctx.with(|w| w.shared.tm().alloc_model.syscall_cost);
                        ctx.work(cost).expect("refill outside txn");
                        ctx.with(|w| w.shared.tm().stats.hw_retries += 1);
                    }
                    _ => self.backoff(ctx),
                },
                // No software to fail over to: spin and retry.
                Err(HwFail::Forced) | Err(HwFail::RetryRequested) => self.backoff(ctx),
                Err(HwFail::PhaseBusy) => unreachable!(),
            }
        }
    }

    /// HyTM: hardware transactions carry otable-check barriers; anything
    /// the hardware cannot run fails over to the (weakly-atomic) USTM.
    fn hytm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        loop {
            match self.hw_attempt(ctx, body, true, false) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.ustm_path(ctx, body);
                }
                Err(HwFail::RetryRequested) => return self.ustm_path(ctx, body),
                Err(HwFail::PhaseBusy) => unreachable!("no phase check in HyTM"),
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        return self.ustm_path(ctx, body);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        // Explicit = otable conflict with an STM txn:
                        // retry in hardware after backoff (paper §5).
                        _ => self.backoff(ctx),
                    }
                }
            }
        }
    }

    /// PhTM: hardware and software phases exclude each other via the two
    /// global counters.
    fn phtm_path<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
    ) -> R {
        let cpu = self.cpu;
        loop {
            // Phase check (plain reads of both counters).
            let (must, stm) = ctx.with(|w| {
                let (ma, sa) = {
                    let p = &w.shared.tm().phtm;
                    (p.must_addr(), p.stm_addr())
                };
                w.machine.load(cpu, ma).expect("must read");
                w.machine.load(cpu, sa).expect("stm read");
                let p = &w.shared.tm().phtm;
                (p.must_count, p.stm_count)
            });
            if must != 0 {
                // Mandatory STM phase: new transactions start in software.
                return self.phtm_sw(ctx, body, false);
            }
            if stm != 0 {
                // Draining back toward a hardware phase: stall, don't start.
                ctx.with(|w| w.shared.tm().phtm.phase_stalls += 1);
                ctx.stall(self.policy.backoff_base * 4).expect("phase stall");
                continue;
            }
            match self.hw_attempt(ctx, body, false, true) {
                Ok(r) => return r,
                Err(HwFail::Forced) => {
                    ctx.with(|w| w.shared.tm().stats.forced_failovers += 1);
                    return self.phtm_sw(ctx, body, true);
                }
                Err(HwFail::RetryRequested) => return self.phtm_sw(ctx, body, true),
                Err(HwFail::PhaseBusy) => { /* loop back to the phase check */ }
                Err(HwFail::Abort(info)) => {
                    if info.reason.is_failover() {
                        ctx.with(|w| w.shared.tm().stats.record_failover(info.reason));
                        return self.phtm_sw(ctx, body, true);
                    }
                    match info.reason {
                        AbortReason::PageFault => self.resolve_page_fault(ctx, info.addr),
                        _ => self.backoff(ctx),
                    }
                }
            }
        }
    }

    /// Runs the transaction in PhTM's software mode, bumping the phase
    /// counters around it. The counter stores are plain — they kill any
    /// hardware transaction subscribed to the counter line, exactly the
    /// paper's "nonT conflicts on the software-transactions-in-flight
    /// counter".
    fn phtm_sw<U: TmWorld, R>(
        &mut self,
        ctx: &mut Ctx<U>,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<U>) -> Result<R, TxAbort>,
        mandatory: bool,
    ) -> R {
        let cpu = self.cpu;
        ctx.with(|w| {
            let (sa, ma) = {
                let p = &w.shared.tm().phtm;
                (p.stm_addr(), p.must_addr())
            };
            {
                let p = &mut w.shared.tm().phtm;
                p.stm_count += 1;
            }
            let sv = w.shared.tm().phtm.stm_count;
            w.machine.store(cpu, sa, sv).expect("stm count store");
            if mandatory {
                {
                    let p = &mut w.shared.tm().phtm;
                    p.must_count += 1;
                }
                let mv = w.shared.tm().phtm.must_count;
                w.machine.store(cpu, ma, mv).expect("must count store");
            }
        });
        let r = self.ustm_path(ctx, body);
        ctx.with(|w| {
            let (sa, ma) = {
                let p = &w.shared.tm().phtm;
                (p.stm_addr(), p.must_addr())
            };
            {
                let p = &mut w.shared.tm().phtm;
                p.stm_count -= 1;
            }
            let sv = w.shared.tm().phtm.stm_count;
            w.machine.store(cpu, sa, sv).expect("stm count store");
            if mandatory {
                {
                    let p = &mut w.shared.tm().phtm;
                    p.must_count -= 1;
                }
                let mv = w.shared.tm().phtm.must_count;
                w.machine.store(cpu, ma, mv).expect("must count store");
            }
        });
        r
    }
}

/// Frees deferred by a committed transaction.
fn apply_frees<U: TmWorld>(ctx: &mut Ctx<U>, frees: &[Addr]) {
    if frees.is_empty() {
        return;
    }
    let frees = frees.to_vec();
    ctx.with(|w| {
        let heap = &mut w.shared.tm().heap;
        for a in frees {
            heap.free(a).expect("double free of heap allocation");
        }
    });
}

/// Wakes `retry`-parked STM sleepers after a hardware commit (paper §6:
/// the wake is deferred so an aborted transaction never wakes anyone).
fn wake_sleepers<U: TmWorld>(ctx: &mut Ctx<U>, wakes: &[usize]) {
    if wakes.is_empty() {
        return;
    }
    let cpu = ctx.cpu();
    let wakes = wakes.to_vec();
    ctx.with(|w| {
        for s in wakes {
            let slot_addr = {
                let u = w.shared.ustm();
                u.slots[s].woken = true;
                u.slot_addr(s)
            };
            w.machine.store(cpu, slot_addr, 4).expect("wake store");
        }
    });
}

/// Allocations rolled back by an aborted attempt.
fn undo_allocs<U: TmWorld>(ctx: &mut Ctx<U>, allocs: &[Addr]) {
    if allocs.is_empty() {
        return;
    }
    let allocs = allocs.to_vec();
    ctx.with(|w| {
        let heap = &mut w.shared.tm().heap;
        for a in allocs {
            heap.free(a).expect("aborted allocation already freed");
        }
    });
}
