//! Hybrid contention-management and failover policy knobs (paper §4.4).
//!
//! Together with the machine-level knobs
//! ([`HwCmPolicy`](ufotm_machine::HwCmPolicy),
//! [`UfoKillPolicy`](ufotm_machine::UfoKillPolicy)), these reproduce every
//! bar of the paper's Figure 8 sensitivity study.

/// What a hardware transaction does when it takes a UFO fault (i.e. touches
/// a line held by an in-flight software transaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BtmUfoFaultPolicy {
    /// Abort the hardware transaction and let the abort handler back off
    /// and retry (the paper's default).
    #[default]
    AbortAndRetry,
    /// Stall inside the transaction until the protection clears (Figure 8,
    /// third bar: "preventing hardware transactions from aborting unless
    /// absolutely necessary").
    Stall,
}

/// The hybrid's software policy, consumed by the BTM abort handler
/// (Algorithm 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridPolicy {
    /// UFO-fault handling inside hardware transactions.
    pub btm_ufo_fault: BtmUfoFaultPolicy,
    /// Fail over to software after this many consecutive contention-class
    /// aborts. `None` — the paper's recommendation — never fails over on
    /// contention ("the STM's overhead will increase the transaction's
    /// duration, … increasing contention"; such policies are metastable).
    pub conflict_failover_after: Option<u32>,
    /// Base of the exponential backoff applied after contention-class
    /// aborts (doubled per consecutive abort, counted up to
    /// [`HybridPolicy::backoff_cap_exp`]).
    pub backoff_base: u64,
    /// Consecutive-abort count saturates here (the paper counts "up to 7").
    pub backoff_cap_exp: u32,
    /// Cycles a [`BtmUfoFaultPolicy::Stall`] retry waits between attempts.
    pub ufo_stall_backoff: u64,
    /// Percent of each backoff added as seeded random jitter (watchdog
    /// tier 0: randomized backoff breaks symmetric abort ping-pong). `0`
    /// keeps the paper's pure exponential schedule.
    pub backoff_jitter_pct: u32,
    /// Watchdog tier 1: after this many *consecutive* hardware aborts of
    /// any recoverable class, stop retrying in hardware and fail the
    /// transaction over to the STM. `None` (the default) disables the
    /// watchdog and keeps the paper's retry-forever policy.
    pub watchdog_hw_attempts: Option<u32>,
    /// Watchdog tier 2: after this many consecutive software kills of the
    /// same transaction, escalate to serial-irrevocable execution under
    /// the global lock (strongly-atomic systems only). `None` disables.
    pub watchdog_sw_kills: Option<u32>,
    /// Watchdog livelock accelerator: if the *global* commit count has not
    /// advanced across this many consecutive abort/backoff observations by
    /// this thread, escalate straight to the strongest available tier
    /// (nobody is making progress, so per-transaction patience is
    /// pointless). `None` disables.
    pub watchdog_stagnation: Option<u32>,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        HybridPolicy {
            btm_ufo_fault: BtmUfoFaultPolicy::default(),
            conflict_failover_after: None,
            backoff_base: 50,
            backoff_cap_exp: 7,
            ufo_stall_backoff: 60,
            backoff_jitter_pct: 0,
            watchdog_hw_attempts: None,
            watchdog_sw_kills: None,
            watchdog_stagnation: None,
        }
    }
}

impl HybridPolicy {
    /// The backoff (in cycles) after the `n`-th consecutive
    /// contention-class abort.
    #[must_use]
    pub fn backoff_for(&self, consecutive_aborts: u32) -> u64 {
        let exp = consecutive_aborts.min(self.backoff_cap_exp);
        self.backoff_base << exp
    }

    /// Figure 8, second bar: fail over to software after `n` conflict
    /// aborts.
    #[must_use]
    pub fn failover_on_nth_conflict(n: u32) -> Self {
        HybridPolicy {
            conflict_failover_after: Some(n),
            ..HybridPolicy::default()
        }
    }

    /// Figure 8, third bar: stall (rather than abort) on UFO faults.
    #[must_use]
    pub fn stall_on_ufo_fault() -> Self {
        HybridPolicy {
            btm_ufo_fault: BtmUfoFaultPolicy::Stall,
            ..HybridPolicy::default()
        }
    }

    /// The progress watchdog, armed with its default limits: jittered
    /// backoff, software failover after 16 consecutive hardware aborts,
    /// serial-irrevocable execution after 8 consecutive software kills,
    /// and immediate escalation once 8 consecutive observations show zero
    /// global commit progress. Guarantees every transaction commits within
    /// a bounded number of attempts, at the price of abandoning the
    /// paper's never-fail-over-on-contention recommendation when the
    /// system is demonstrably stuck.
    #[must_use]
    pub fn watchdog() -> Self {
        HybridPolicy {
            backoff_jitter_pct: 25,
            watchdog_hw_attempts: Some(16),
            watchdog_sw_kills: Some(8),
            watchdog_stagnation: Some(8),
            ..HybridPolicy::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates() {
        let p = HybridPolicy::default();
        assert_eq!(p.backoff_for(0), 50);
        assert_eq!(p.backoff_for(1), 100);
        assert_eq!(p.backoff_for(7), 50 << 7);
        assert_eq!(p.backoff_for(20), 50 << 7, "saturates at the cap");
    }

    #[test]
    fn presets_set_the_right_knobs() {
        assert_eq!(
            HybridPolicy::failover_on_nth_conflict(5).conflict_failover_after,
            Some(5)
        );
        assert_eq!(
            HybridPolicy::stall_on_ufo_fault().btm_ufo_fault,
            BtmUfoFaultPolicy::Stall
        );
        assert_eq!(HybridPolicy::default().conflict_failover_after, None);
    }

    #[test]
    fn watchdog_is_off_by_default_and_bounded_when_armed() {
        let d = HybridPolicy::default();
        assert_eq!(d.backoff_jitter_pct, 0);
        assert_eq!(d.watchdog_hw_attempts, None);
        assert_eq!(d.watchdog_sw_kills, None);
        assert_eq!(d.watchdog_stagnation, None);
        let w = HybridPolicy::watchdog();
        assert!(w.watchdog_hw_attempts.is_some());
        assert!(w.watchdog_sw_kills.is_some());
        assert!(w.watchdog_stagnation.is_some());
        assert!(w.backoff_jitter_pct > 0);
        // The armed watchdog leaves the paper's CM knobs alone.
        assert_eq!(w.conflict_failover_after, None);
        assert_eq!(w.backoff_for(1), d.backoff_for(1));
    }
}
