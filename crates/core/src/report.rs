//! The run report: one deterministic, serializable summary per run.
//!
//! A [`RunReport`] gathers everything a run produced — per-CPU machine
//! counters, hybrid commit-path counters, USTM/TL2/PhTM counters, otable
//! occupancy, swap and chaos counters, and (when tracing was enabled) the
//! audited trace journal — into one plain-old-data struct with a
//! hand-rolled JSON serialization.
//!
//! Determinism is a design requirement, not an accident: the simulator
//! replays bit-for-bit from a seed, so two same-seed runs must serialize
//! to **byte-identical** JSON. The serializer therefore emits integers,
//! booleans and fixed-order keys only — no floats, no timestamps, no
//! host-dependent values. Derived ratios are the reader's job.

use std::collections::BTreeMap;

use ufotm_machine::{AbortReason, ChaosStats, CpuStats, Machine, PersistStats, SwapStats};
use ufotm_tl2::Tl2Stats;
use ufotm_ustm::{OtableOccupancy, UstmStats};

use crate::audit::{audit_events, audit_events_durable, CommitPath};
use crate::shared::TmShared;

/// The Figure-6 abort taxonomy: groups [`AbortReason`]s into the buckets
/// the paper plots, in a stable order.
pub const ABORT_TAXONOMY: &[(&str, &[AbortReason])] = &[
    ("conflict", &[AbortReason::Conflict]),
    ("nonT-conflict", &[AbortReason::NonTConflict]),
    ("ufo-set", &[AbortReason::UfoSet]),
    ("ufo-fault", &[AbortReason::UfoFault]),
    ("overflow", &[AbortReason::Overflow]),
    ("explicit", &[AbortReason::Explicit]),
    (
        "recoverable",
        &[
            AbortReason::Interrupt,
            AbortReason::PageFault,
            AbortReason::Spurious,
        ],
    ),
    (
        "unsupported",
        &[
            AbortReason::Syscall,
            AbortReason::Io,
            AbortReason::Exception,
            AbortReason::Uncacheable,
            AbortReason::DepthOverflow,
            AbortReason::IllegalOp,
        ],
    ),
];

/// A histogram over power-of-two buckets: bucket 0 holds the value 0,
/// bucket `i` (for `i >= 1`) holds values in `[2^(i-1), 2^i - 1]`.
///
/// Integer-only and order-insensitive, so it aggregates deterministically
/// regardless of recording order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: Vec<u64>,
}

impl Log2Histogram {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
    }

    /// Per-bucket counts; the highest occupied bucket is last (no trailing
    /// zeros).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Table-4-style attribution of where cycles went, beyond useful work.
/// Each field is a sum over all CPUs; fields can overlap with each other
/// only where documented.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles spent in STM read/write barriers and otable maintenance
    /// (the paper's "instrumentation" share).
    pub barrier: u64,
    /// Cycles lost to nacked coherence requests (back-pressure stalls).
    pub nack_stall: u64,
    /// Cycles spent in contention backoff between attempts.
    pub backoff: u64,
    /// Cycles inside serial-irrevocable windows (lock acquisition, gate
    /// raise, quiesce, body, gate lower).
    pub serial: u64,
    /// All explicitly stalled cycles (includes `backoff` and the stall
    /// portions of `serial`; kept as the machine's raw counter).
    pub stall: u64,
}

/// Summary of the trace journal after auditing (all zeros when tracing
/// was disabled).
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Events recorded.
    pub events: u64,
    /// Whether the journal hit its cap (histograms then undercount).
    pub truncated: bool,
    /// Invariant violations the auditor found (0 for a correct run).
    pub audit_violations: u64,
    /// The first few violation messages, for diagnostics (not
    /// serialized: the JSON carries only the count).
    pub audit_violation_samples: Vec<String>,
    /// Transactions reconstructed from the journal.
    pub txns: u64,
    /// Committed transactions per final path, keyed by
    /// [`CommitPath::label`].
    pub commit_paths: BTreeMap<&'static str, u64>,
    /// First-begin-to-commit latency, log2 buckets of cycles.
    pub latency_log2: Log2Histogram,
    /// Retries before the committing attempt, log2 buckets.
    pub retry_log2: Log2Histogram,
}

/// Everything one run produced, ready to serialize.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The system that ran ([`SystemKind::label`](crate::SystemKind::label)).
    pub system: &'static str,
    /// Simulated CPUs.
    pub threads: usize,
    /// The run's replay seed.
    pub seed: u64,
    /// Slowest CPU's final clock: the run's wall-clock in cycles.
    pub makespan_cycles: u64,
    /// Hybrid driver counters (commit paths, failovers, escalations).
    pub hybrid: crate::HybridStats,
    /// Machine counters summed over all CPUs.
    pub machine: CpuStats,
    /// Cycle attribution (Table 4 style).
    pub cycles: CycleAttribution,
    /// USTM counters.
    pub ustm: UstmStats,
    /// TL2 counters.
    pub tl2: Tl2Stats,
    /// PhTM phase counters: (stm_count, must_count, phase_aborts,
    /// phase_stalls).
    pub phtm: (u64, u64, u64, u64),
    /// Otable occupancy at end of run.
    pub otable: OtableOccupancy,
    /// Demand-paging counters.
    pub swap: SwapStats,
    /// Persistence-domain counters (all zeros on volatile machines).
    pub persist: PersistStats,
    /// Fault-injection counters.
    pub chaos: ChaosStats,
    /// Audited trace journal summary.
    pub trace: TraceSummary,
}

impl RunReport {
    /// Gathers a report from a finished run.
    ///
    /// `seed` is the run's replay seed (the machine does not know it).
    /// Auditing the journal is part of collection: `trace.audit_violations`
    /// must be 0 for any correct run that had tracing enabled.
    #[must_use]
    pub fn collect(seed: u64, machine: &Machine, shared: &TmShared) -> RunReport {
        let makespan = (0..machine.cpus())
            .map(|c| machine.now(c))
            .max()
            .unwrap_or(0);
        let agg = machine.stats().aggregate();
        // A persistent machine's journal must also satisfy the durability
        // invariants (fence-before-commit, no resurrection, idempotence).
        let audit = if machine.persist_enabled() {
            audit_events_durable(shared.trace.events(), shared.trace.truncated())
        } else {
            audit_events(shared.trace.events(), shared.trace.truncated())
        };

        let mut trace = TraceSummary {
            events: shared.trace.events().len() as u64,
            truncated: shared.trace.truncated(),
            audit_violations: audit.violations.len() as u64,
            audit_violation_samples: audit
                .violations
                .iter()
                .take(8)
                .map(ToString::to_string)
                .collect(),
            txns: audit.txns.len() as u64,
            ..TraceSummary::default()
        };
        for path in [
            CommitPath::Hw,
            CommitPath::Sw,
            CommitPath::Serial,
            CommitPath::Plain,
        ] {
            trace.commit_paths.insert(path.label(), 0);
        }
        for t in &audit.txns {
            *trace.commit_paths.entry(t.path.label()).or_insert(0) += 1;
            trace.latency_log2.record(t.latency());
            trace.retry_log2.record(u64::from(t.retries()));
        }
        // A dropped UFO bit is silent protection loss — strong atomicity
        // can no longer be trusted, so surface it as an audit violation
        // rather than a counter a reader might skim past.
        let dropped = machine.swap_stats().ufo_bits_dropped;
        if dropped != 0 {
            trace.audit_violations += 1;
            trace.audit_violation_samples.push(format!(
                "swap dropped {dropped} UFO bit(s): strong atomicity was silently lost"
            ));
        }

        RunReport {
            system: shared.kind.label(),
            threads: machine.cpus(),
            seed,
            makespan_cycles: makespan,
            cycles: CycleAttribution {
                barrier: shared.ustm.stats.barrier_cycles,
                nack_stall: agg.nack_stall_cycles,
                backoff: shared.stats.backoff_cycles,
                serial: shared.stats.serial_cycles,
                stall: agg.stall_cycles,
            },
            hybrid: shared.stats.clone(),
            machine: agg,
            ustm: shared.ustm.stats,
            tl2: shared.tl2.stats,
            phtm: (
                shared.phtm.stm_count,
                shared.phtm.must_count,
                shared.phtm.phase_aborts,
                shared.phtm.phase_stalls,
            ),
            otable: shared.ustm.otable.occupancy(),
            swap: machine.swap_stats(),
            persist: machine.persist_stats(),
            chaos: machine.chaos_stats(),
            trace,
        }
    }

    /// Panics unless the trace auditor found the journal invariant-clean.
    /// A no-op when tracing was off (there is nothing to audit).
    ///
    /// # Panics
    ///
    /// Panics if collection found audit violations, listing the first few.
    pub fn assert_audit_clean(&self) {
        assert!(
            self.trace.audit_violations == 0,
            "trace audit found {} violation(s), e.g.:\n{}",
            self.trace.audit_violations,
            self.trace
                .audit_violation_samples
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }

    /// The Figure-6 abort taxonomy over the machine's BTM abort counters.
    /// Every bucket is present (zeros included), in [`ABORT_TAXONOMY`]
    /// order.
    #[must_use]
    pub fn abort_taxonomy(&self) -> Vec<(&'static str, u64)> {
        ABORT_TAXONOMY
            .iter()
            .map(|&(name, reasons)| (name, reasons.iter().map(|&r| self.machine.aborts(r)).sum()))
            .collect()
    }

    /// Serializes the report as deterministic JSON: fixed key order,
    /// integers and booleans only. Two same-seed runs produce
    /// byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = JsonObj::new();
        root.u64("schema", SCHEMA_VERSION);
        root.str("system", self.system);
        root.u64("threads", self.threads as u64);
        root.u64("seed", self.seed);
        root.u64("makespan_cycles", self.makespan_cycles);

        let mut commits = JsonObj::new();
        commits.u64("hw", self.hybrid.hw_commits);
        commits.u64("sw", self.hybrid.sw_commits);
        commits.u64("lock", self.hybrid.lock_commits);
        commits.u64("serial", self.hybrid.serial_commits);
        commits.u64("total", self.hybrid.total_commits());
        root.raw("commits", &commits.close());

        let mut failovers = JsonObj::new();
        for (&reason, &n) in &self.hybrid.failovers {
            failovers.u64(&reason.to_string(), n);
        }
        root.raw("failovers", &failovers.close());
        root.u64("hw_retries", self.hybrid.hw_retries);
        root.u64("forced_failovers", self.hybrid.forced_failovers);
        root.u64("watchdog_escalations", self.hybrid.watchdog_escalations);
        root.u64(
            "durable_serial_refusals",
            self.hybrid.durable_serial_refusals,
        );
        root.u64("alloc_syscalls", self.hybrid.alloc_syscalls);

        let mut machine = JsonObj::new();
        machine.u64("accesses", self.machine.accesses);
        machine.u64("l1_misses", self.machine.l1_misses);
        machine.u64("l2_misses", self.machine.l2_misses);
        machine.u64("nacks", self.machine.nacks);
        machine.u64("ufo_faults", self.machine.ufo_faults);
        machine.u64("interrupts", self.machine.interrupts);
        machine.u64("btm_commits", self.machine.btm_commits);
        let mut aborts = JsonObj::new();
        for (&reason, &n) in &self.machine.btm_aborts {
            aborts.u64(&reason.to_string(), n);
        }
        machine.raw("btm_aborts", &aborts.close());
        root.raw("machine", &machine.close());

        let mut taxonomy = JsonObj::new();
        for (name, n) in self.abort_taxonomy() {
            taxonomy.u64(name, n);
        }
        root.raw("abort_taxonomy", &taxonomy.close());

        let mut cycles = JsonObj::new();
        cycles.u64("barrier", self.cycles.barrier);
        cycles.u64("nack_stall", self.cycles.nack_stall);
        cycles.u64("backoff", self.cycles.backoff);
        cycles.u64("serial", self.cycles.serial);
        cycles.u64("stall", self.cycles.stall);
        root.raw("cycle_attribution", &cycles.close());

        let mut ustm = JsonObj::new();
        ustm.u64("begins", self.ustm.begins);
        ustm.u64("commits", self.ustm.commits);
        ustm.u64("aborts", self.ustm.aborts);
        ustm.u64("kills_issued", self.ustm.kills_issued);
        ustm.u64("stall_polls", self.ustm.stall_polls);
        ustm.u64("chain_walks", self.ustm.chain_walks);
        ustm.u64("nont_faults", self.ustm.nont_faults);
        ustm.u64("retries_entered", self.ustm.retries_entered);
        ustm.u64("retries_woken", self.ustm.retries_woken);
        ustm.u64("barrier_cycles", self.ustm.barrier_cycles);
        ustm.u64("max_chain_seen", self.ustm.max_chain_seen);
        ustm.u64("redo_records", self.ustm.redo_records);
        ustm.u64("recovery_runs", self.ustm.recovery_runs);
        ustm.u64("recovered_records", self.ustm.recovered_records);
        ustm.u64("recovered_lines", self.ustm.recovered_lines);
        ustm.u64("torn_records", self.ustm.torn_records);
        root.raw("ustm", &ustm.close());

        let mut tl2 = JsonObj::new();
        tl2.u64("begins", self.tl2.begins);
        tl2.u64("commits", self.tl2.commits);
        tl2.u64("aborts", self.tl2.aborts);
        root.raw("tl2", &tl2.close());

        let mut phtm = JsonObj::new();
        phtm.u64("stm_count", self.phtm.0);
        phtm.u64("must_count", self.phtm.1);
        phtm.u64("phase_aborts", self.phtm.2);
        phtm.u64("phase_stalls", self.phtm.3);
        root.raw("phtm", &phtm.close());

        let mut otable = JsonObj::new();
        otable.u64("bins", self.otable.bins);
        otable.u64("live_entries", self.otable.live_entries);
        otable.u64("occupied_bins", self.otable.occupied_bins);
        otable.u64("aliased_bins", self.otable.aliased_bins);
        otable.u64("max_chain", self.otable.max_chain);
        root.raw("otable", &otable.close());

        let mut swap = JsonObj::new();
        swap.u64("page_ins", self.swap.page_ins);
        swap.u64("page_outs", self.swap.page_outs);
        swap.u64("ufo_pages_saved", self.swap.ufo_pages_saved);
        swap.u64("all_clear_fast_path", self.swap.all_clear_fast_path);
        swap.u64("ufo_pages_restored", self.swap.ufo_pages_restored);
        swap.u64("ufo_bits_dropped", self.swap.ufo_bits_dropped);
        root.raw("swap", &swap.close());

        let mut persist = JsonObj::new();
        persist.u64("flushes", self.persist.flushes);
        persist.u64("fences", self.persist.fences);
        persist.u64("flush_cycles", self.persist.flush_cycles);
        persist.u64("fence_cycles", self.persist.fence_cycles);
        persist.u64("buffer_evictions", self.persist.buffer_evictions);
        persist.u64("max_buffer_occupancy", self.persist.max_buffer_occupancy);
        root.raw("persist", &persist.close());

        let mut chaos = JsonObj::new();
        chaos.u64("spurious_aborts", self.chaos.spurious_aborts);
        chaos.u64("forced_evictions", self.chaos.forced_evictions);
        chaos.u64("injected_nacks", self.chaos.injected_nacks);
        chaos.u64("ufo_set_retries", self.chaos.ufo_set_retries);
        chaos.u64("swap_thrashes", self.chaos.swap_thrashes);
        chaos.u64("power_fails", self.chaos.power_fails);
        root.raw("chaos", &chaos.close());

        let mut trace = JsonObj::new();
        trace.u64("events", self.trace.events);
        trace.bool("truncated", self.trace.truncated);
        trace.u64("audit_violations", self.trace.audit_violations);
        trace.u64("txns", self.trace.txns);
        let mut paths = JsonObj::new();
        for (&path, &n) in &self.trace.commit_paths {
            paths.u64(path, n);
        }
        trace.raw("commit_paths", &paths.close());
        trace.raw(
            "latency_log2",
            &json_u64_array(self.trace.latency_log2.buckets()),
        );
        trace.raw(
            "retry_log2",
            &json_u64_array(self.trace.retry_log2.buckets()),
        );
        root.raw("trace", &trace.close());

        root.close()
    }
}

/// Bumped whenever a field is added, removed or renamed; consumers key
/// off it. Documented in `docs/RUN_REPORT.md`.
///
/// v2: `persist` section, `chaos.power_fails`, and the five USTM
/// durability counters (`redo_records` through `torn_records`).
///
/// v3: `durable_serial_refusals` (serial-irrevocable escalations the
/// driver refused because a persist domain was configured — the serial
/// path has no redo record, so escalating would break crash
/// consistency).
pub const SCHEMA_VERSION: u64 = 3;

fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// Escapes a string for embedding in a JSON string literal (RFC 8259):
/// `"` and `\` get their two-character escapes, `\n`/`\t`/`\r` their
/// short forms, and every other control character below `0x20` a
/// `\u00XX` escape. Everything else — including non-BMP characters —
/// passes through as UTF-8 (lone surrogates cannot occur: Rust `&str`
/// is valid UTF-8 by construction).
///
/// Shared by every hand-rolled JSON writer in the workspace (run
/// reports here, bench artifacts in `ufotm-bench`) so hostile workload
/// names and labels cannot produce invalid JSON.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A tiny insertion-ordered JSON object writer. Key order is whatever the
/// caller's code order is — fixed at compile time, hence deterministic.
struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn raw(&mut self, key: &str, value: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
        self.buf.push_str(value);
    }

    fn u64(&mut self, key: &str, value: u64) {
        self.raw(key, &value.to_string());
    }

    fn bool(&mut self, key: &str, value: bool) {
        self.raw(key, if value { "true" } else { "false" });
    }

    fn str(&mut self, key: &str, value: &str) {
        let quoted = format!("\"{}\"", json_escape(value));
        self.raw(key, &quoted);
    }

    fn close(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_land_where_documented() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        let mut h = Log2Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[11], 1);
    }

    #[test]
    fn json_writer_is_plain_and_ordered() {
        let mut o = JsonObj::new();
        o.u64("a", 1);
        o.str("b", "x\"y");
        o.bool("c", true);
        assert_eq!(o.close(), r#"{"a":1,"b":"x\"y","c":true}"#);
    }

    /// A strict little JSON string-literal reader: parses exactly one
    /// quoted string from `input` and returns its decoded value. Errors
    /// (not panics) on anything RFC 8259 forbids — unescaped control
    /// characters, unknown escapes, bad `\uXXXX` — so the round-trip
    /// test rejects invalid output instead of misreading it.
    fn parse_json_string(input: &str) -> Result<String, String> {
        let mut chars = input.chars();
        if chars.next() != Some('"') {
            return Err("missing opening quote".into());
        }
        let mut out = String::new();
        loop {
            let c = chars.next().ok_or("unterminated string")?;
            match c {
                '"' => {
                    return if chars.next().is_none() {
                        Ok(out)
                    } else {
                        Err("trailing garbage".into())
                    };
                }
                '\\' => match chars.next().ok_or("dangling backslash")? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = (0..4)
                            .map(|_| chars.next().ok_or("short \\u escape"))
                            .collect::<Result<_, _>>()?;
                        let n = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(n).ok_or("\\u escape is a surrogate")?);
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!("raw control character {:#x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn json_escape_round_trips_hostile_strings() {
        let hostile = [
            "",
            "plain",
            "\\",
            "\\\\",
            "\"",
            "\\\"",
            "a\"b\\c",
            "\n\t\r",
            "\u{0}\u{1}\u{1f}",
            "ctrl\u{b}mixed\u{7f}", // 0x7f is not a control char per RFC 8259
            "trailing backslash\\",
            "\\u0041 looks like an escape but is literal",
            "unicode: é 漢 🦀 \u{10FFFF}",
            "already \\n escaped",
            "quote-backslash tangle: \\\" \"\\ \\\\\" ",
        ];
        for s in hostile {
            let encoded = format!("\"{}\"", json_escape(s));
            let decoded = parse_json_string(&encoded)
                .unwrap_or_else(|e| panic!("invalid JSON for {s:?}: {e}\n  encoded: {encoded}"));
            assert_eq!(decoded, s, "round-trip mangled {s:?} via {encoded}");
        }
    }

    #[test]
    fn json_escape_round_trips_seeded_random_strings() {
        // Deterministic fuzz: random mixes of quotes, backslashes,
        // control characters and multibyte text. No host randomness —
        // same bytes every run.
        let alphabet: Vec<char> = ('\u{0}'..='\u{2f}')
            .chain(['\\', '"', 'a', 'é', '漢', '🦀', '\u{7f}', '\u{9f}'])
            .collect();
        let mut state = 0xDEAD_BEEF_u64;
        for _ in 0..2000 {
            let len = (splitmix(&mut state) % 24) as usize;
            let s: String = (0..len)
                .map(|_| alphabet[(splitmix(&mut state) as usize) % alphabet.len()])
                .collect();
            let encoded = format!("\"{}\"", json_escape(&s));
            let decoded = parse_json_string(&encoded)
                .unwrap_or_else(|e| panic!("invalid JSON for {s:?}: {e}\n  encoded: {encoded}"));
            assert_eq!(decoded, s, "round-trip mangled {s:?} via {encoded}");
        }
    }

    #[test]
    fn taxonomy_covers_every_reason_once() {
        let mut seen = std::collections::BTreeSet::new();
        for (_, reasons) in ABORT_TAXONOMY {
            for &r in *reasons {
                assert!(seen.insert(r), "{r} appears in two buckets");
            }
        }
        assert_eq!(seen.len(), AbortReason::all().len());
    }
}
