//! # `ufotm-core` — the UFO hybrid transactional memory
//!
//! This crate is the paper's contribution (§4): a hybrid TM whose hardware
//! transactions run **with zero instrumentation** even while conflicting
//! software transactions are in flight, because the strongly-atomic USTM
//! protects everything it touches with UFO bits — a conflicting hardware
//! transaction simply takes a protection fault.
//!
//! It also implements every system the paper compares against, over the
//! same substrate, selected by [`SystemKind`]:
//!
//! | Kind | What it models |
//! |------|----------------|
//! | [`SystemKind::UfoHybrid`]  | the paper's system: BTM + abort handler (Alg. 3) + strong USTM failover |
//! | [`SystemKind::HyTm`]       | Damron et al.: hardware txns instrumented with transactional otable checks |
//! | [`SystemKind::PhTm`]       | phased TM: global counters exclude HTM and STM phases |
//! | [`SystemKind::UnboundedHtm`] | idealized HTM with no capacity bound |
//! | [`SystemKind::UstmStrong`] / [`SystemKind::UstmWeak`] | pure STM, with/without UFO strong atomicity |
//! | [`SystemKind::Tl2`]        | the TL2 baseline |
//! | [`SystemKind::GlobalLock`] / [`SystemKind::Sequential`] | lock and serial baselines |
//!
//! Workloads are written once against [`Tx`] / [`TmThread::transaction`]
//! and run unchanged on every system — the same property the paper gets
//! from compiling each transaction twice (Figure 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod backend;
mod lockbase;
mod phtm;
mod policy;
mod reboot;
mod report;
mod runtime;
mod shared;
mod trace;
mod tx;

pub use audit::{
    audit_events, audit_events_durable, audit_log, AuditReport, AuditViolation, CommitPath,
    TxnRecord,
};
pub use backend::{BackendKind, Stop, TmBackend, TxScope};
pub use lockbase::LockShared;
pub use phtm::PhtmShared;
pub use policy::{BtmUfoFaultPolicy, HybridPolicy};
pub use reboot::{crashed_journal, recover_world};
pub use report::{
    json_escape, CycleAttribution, Log2Histogram, RunReport, TraceSummary, ABORT_TAXONOMY,
};
pub use runtime::TmThread;
pub use shared::{
    AllocModel, HasTm, HybridStats, SerialGate, SystemKind, TmShared, TmSharedLayout, TmWorld,
};
pub use trace::{EscalationTier, TraceEvent, TraceKind, TraceLog};
pub use tx::{Tx, TxAbort};

/// Re-exported so harnesses can reach the strong-atomicity helpers without
/// depending on `ufotm-ustm` directly.
pub use ufotm_ustm::{nont_load, nont_store};
