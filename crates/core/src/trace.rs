//! An optional transaction-event journal.
//!
//! When enabled, the drivers record begin/commit/abort/failover events with
//! their simulated timestamps — the moral equivalent of the event dumps a
//! hardware-simulator study pores over. Host-side only: recording charges
//! no simulated cycles and cannot perturb results.

use ufotm_machine::{AbortReason, ChaosFaultKind};

/// Which degradation tier the progress watchdog escalated to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscalationTier {
    /// Give up on hardware for this transaction; run it in the STM.
    Software,
    /// Give up on optimistic execution entirely; run serial-irrevocably
    /// under the global lock.
    Serial,
}

impl std::fmt::Display for EscalationTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscalationTier::Software => f.write_str("software"),
            EscalationTier::Serial => f.write_str("serial"),
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A hardware (BTM) attempt began.
    HwBegin,
    /// A hardware attempt committed.
    HwCommit,
    /// A hardware attempt aborted for this reason.
    HwAbort(AbortReason),
    /// The driver decided to fail this transaction over to software.
    Failover(AbortReason),
    /// A software (STM) attempt began.
    SwBegin,
    /// A software attempt committed.
    SwCommit,
    /// A software attempt aborted (killed, woken, or explicit).
    SwAbort,
    /// The transaction committed under the global lock / serially.
    PlainCommit,
    /// The chaos engine injected this fault (drained from the machine's
    /// journal; timestamped with the machine-side injection cycle).
    FaultInjected(ChaosFaultKind),
    /// The progress watchdog escalated this transaction to a stronger tier.
    WatchdogEscalation(EscalationTier),
    /// The transaction entered serial-irrevocable execution (watchdog's
    /// last tier: global lock + strong-atomicity-aware plain accesses).
    SerialIrrevocable,
    /// A persist fence completed inside a software commit (persistent runs
    /// only); journaled directly before the `SwCommit` it makes durable.
    PersistFence,
    /// Power failed: only flushed-and-fenced lines survive in the durable
    /// image, everything else is gone. In a combined crash journal every
    /// later event happened on the rebooted machine (clocks restart at 0).
    PowerFail,
    /// A recovery pass scanned this CPU's redo window and replayed this
    /// many records (0 = nothing to replay).
    RecoveryReplay(u32),
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceKind::HwBegin => f.write_str("hw-begin"),
            TraceKind::HwCommit => f.write_str("hw-commit"),
            TraceKind::HwAbort(r) => write!(f, "hw-abort({r})"),
            TraceKind::Failover(r) => write!(f, "failover({r})"),
            TraceKind::SwBegin => f.write_str("sw-begin"),
            TraceKind::SwCommit => f.write_str("sw-commit"),
            TraceKind::SwAbort => f.write_str("sw-abort"),
            TraceKind::PlainCommit => f.write_str("plain-commit"),
            TraceKind::FaultInjected(k) => write!(f, "fault-injected({k})"),
            TraceKind::WatchdogEscalation(t) => write!(f, "watchdog-escalation({t})"),
            TraceKind::SerialIrrevocable => f.write_str("serial-irrevocable"),
            TraceKind::PersistFence => f.write_str("persist-fence"),
            TraceKind::PowerFail => f.write_str("power-fail"),
            TraceKind::RecoveryReplay(n) => write!(f, "recovery-replay({n})"),
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The issuing CPU's simulated clock at the event.
    pub cycle: u64,
    /// The CPU.
    pub cpu: usize,
    /// The event.
    pub kind: TraceKind,
}

/// A bounded event journal (disabled and empty by default).
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    cap: usize,
    enabled: bool,
}

impl TraceLog {
    /// Enables recording of up to `cap` events (older events are kept;
    /// recording stops at the cap).
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
        self.events.reserve(cap.min(1 << 20));
    }

    /// Whether recording is on (and below the cap).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.enabled && self.events.len() < self.cap
    }

    /// Whether recording was enabled but hit the cap: the journal ends
    /// mid-stream, so end-of-journal balance checks do not apply.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.enabled && self.events.len() >= self.cap
    }

    pub(crate) fn record(&mut self, cycle: u64, cpu: usize, kind: TraceKind) {
        if self.is_recording() {
            self.events.push(TraceEvent { cycle, cpu, kind });
        }
    }

    /// The recorded events, in recording order (which is also
    /// non-decreasing simulated time per CPU).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events for one CPU.
    pub fn for_cpu(&self, cpu: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.cpu == cpu)
    }

    /// Renders a compact per-CPU timeline (for examples and debugging).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cpus: std::collections::BTreeSet<usize> = self.events.iter().map(|e| e.cpu).collect();
        for cpu in cpus {
            let _ = writeln!(out, "cpu {cpu}:");
            for e in self.for_cpu(cpu) {
                let _ = writeln!(out, "  @{:>10}  {}", e.cycle, e.kind);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.record(1, 0, TraceKind::HwBegin);
        assert!(log.events().is_empty());
        assert!(!log.is_recording());
    }

    #[test]
    fn cap_bounds_recording() {
        let mut log = TraceLog::default();
        log.enable(2);
        log.record(1, 0, TraceKind::HwBegin);
        log.record(2, 0, TraceKind::HwCommit);
        log.record(3, 0, TraceKind::HwBegin);
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn render_groups_by_cpu() {
        let mut log = TraceLog::default();
        log.enable(16);
        log.record(5, 1, TraceKind::HwBegin);
        log.record(9, 0, TraceKind::SwBegin);
        log.record(12, 1, TraceKind::HwCommit);
        let s = log.render();
        assert!(s.contains("cpu 0:"));
        assert!(s.contains("cpu 1:"));
        assert!(s.contains("hw-commit"));
        let cpu0_pos = s.find("cpu 0:").unwrap();
        let cpu1_pos = s.find("cpu 1:").unwrap();
        assert!(cpu0_pos < cpu1_pos);
    }
}
