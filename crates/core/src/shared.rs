//! The combined shared state for all TM systems, and system selection.

use std::collections::BTreeMap;

use ufotm_machine::{AbortReason, Addr, MachineConfig, SimAlloc};
use ufotm_tl2::{HasTl2, Tl2Config, Tl2Shared};
use ufotm_ustm::{HasUstm, UstmConfig, UstmShared};

use crate::lockbase::LockShared;
use crate::phtm::PhtmShared;
use crate::trace::TraceLog;

/// Which TM system executes the transactions (paper §5's comparison set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemKind {
    /// Serial execution, no synchronization (the speedup baseline).
    Sequential,
    /// A single global test-and-set lock.
    GlobalLock,
    /// USTM without strong atomicity.
    UstmWeak,
    /// USTM with UFO-based strong atomicity.
    UstmStrong,
    /// The TL2 baseline.
    Tl2,
    /// Idealized unbounded HTM (requires
    /// [`MachineConfig::btm_unbounded`]).
    UnboundedHtm,
    /// The paper's UFO hybrid.
    UfoHybrid,
    /// HyTM: hardware transactions instrumented with otable checks.
    HyTm,
    /// Phased TM.
    PhTm,
}

impl SystemKind {
    /// All systems, in presentation order.
    #[must_use]
    pub const fn all() -> [SystemKind; 9] {
        use SystemKind::*;
        [
            Sequential,
            GlobalLock,
            UstmWeak,
            UstmStrong,
            Tl2,
            UnboundedHtm,
            UfoHybrid,
            HyTm,
            PhTm,
        ]
    }

    /// Short label for tables (matches the paper's legends).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SystemKind::Sequential => "sequential",
            SystemKind::GlobalLock => "global-lock",
            SystemKind::UstmWeak => "USTM",
            SystemKind::UstmStrong => "USTM+UFO",
            SystemKind::Tl2 => "TL2",
            SystemKind::UnboundedHtm => "unbounded-HTM",
            SystemKind::UfoHybrid => "UFO-hybrid",
            SystemKind::HyTm => "HyTM",
            SystemKind::PhTm => "PhTM",
        }
    }

    /// Whether the machine must be configured with an unbounded BTM.
    #[must_use]
    pub const fn needs_unbounded_btm(self) -> bool {
        matches!(self, SystemKind::UnboundedHtm)
    }

    /// Whether this system's STM component runs strongly atomic (and its
    /// threads therefore run with UFO faults enabled outside transactions).
    #[must_use]
    pub const fn strong_atomicity(self) -> bool {
        matches!(self, SystemKind::UstmStrong | SystemKind::UfoHybrid)
    }

    /// Whether transactions may execute in BTM.
    #[must_use]
    pub const fn uses_htm(self) -> bool {
        matches!(
            self,
            SystemKind::UnboundedHtm | SystemKind::UfoHybrid | SystemKind::HyTm | SystemKind::PhTm
        )
    }

    /// Whether this is a hybrid (has a software failover path).
    #[must_use]
    pub const fn is_hybrid(self) -> bool {
        matches!(
            self,
            SystemKind::UfoHybrid | SystemKind::HyTm | SystemKind::PhTm
        )
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Driver-level counters (the machine counts hardware events; these count
/// what the software layers did with them).
#[derive(Clone, Debug, Default)]
pub struct HybridStats {
    /// Transactions committed in hardware.
    pub hw_commits: u64,
    /// Transactions committed in software.
    pub sw_commits: u64,
    /// Transactions committed while holding the global lock.
    pub lock_commits: u64,
    /// Transactions committed serial-irrevocably (the watchdog's last
    /// tier; these also hold the global lock but are counted apart so
    /// degradation is visible).
    pub serial_commits: u64,
    /// Times the progress watchdog escalated a transaction to a stronger
    /// tier (software failover or serial-irrevocable execution).
    pub watchdog_escalations: u64,
    /// Serial-irrevocable escalations the driver *refused* because a
    /// persist domain is configured: the serial path commits through
    /// plain stores with no redo record, so a power failure inside a
    /// serial window would violate crash consistency. On persistent
    /// machines the watchdog caps out at the software tier and this
    /// counts each time the serial tier would otherwise have fired.
    pub durable_serial_refusals: u64,
    /// Failovers to software, by the abort reason that triggered them.
    pub failovers: BTreeMap<AbortReason, u64>,
    /// Failovers forced by the microbenchmark hook.
    pub forced_failovers: u64,
    /// Hardware retries after recoverable aborts.
    pub hw_retries: u64,
    /// Allocator pool refills modelled as system calls.
    pub alloc_syscalls: u64,
    /// Cycles spent in post-abort exponential backoff (jitter included) —
    /// Table 4-style attribution of contention-management time.
    pub backoff_cycles: u64,
    /// Cycles spent inside serial-irrevocable windows (lock acquisition,
    /// gate raise, quiesce, body, gate lower) — the cost of the watchdog's
    /// last tier.
    pub serial_cycles: u64,
}

impl HybridStats {
    /// Total commits across modes.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.hw_commits + self.sw_commits + self.lock_commits + self.serial_commits
    }

    /// Total failovers.
    #[must_use]
    pub fn total_failovers(&self) -> u64 {
        self.failovers.values().sum::<u64>() + self.forced_failovers
    }

    pub(crate) fn record_failover(&mut self, reason: AbortReason) {
        *self.failovers.entry(reason).or_insert(0) += 1;
    }
}

/// The serial-irrevocable stop flag (watchdog tier 2).
///
/// The flag word lives on its own metadata line. Hardware attempts under a
/// serial-armed policy transactionally subscribe to it, so raising it dooms
/// every in-flight hardware transaction through plain coherence (the same
/// mechanism PhTM uses for its phase counters), and software attempts check
/// it before beginning. The host-side mirror carries the value; the
/// simulated loads and stores provide the timing and the conflicts.
#[derive(Clone, Copy, Debug)]
pub struct SerialGate {
    addr: Addr,
    /// Whether a serial-irrevocable transaction currently holds the system.
    pub active: bool,
    /// Times the gate has been raised.
    pub raised: u64,
}

impl SerialGate {
    /// A gate whose flag word lives at `addr`.
    #[must_use]
    pub fn new(addr: Addr) -> Self {
        SerialGate {
            addr,
            active: false,
            raised: 0,
        }
    }

    /// The simulated address of the flag word.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }
}

/// Simulated-memory layout for the combined shared state.
#[derive(Clone, Copy, Debug)]
pub struct TmSharedLayout {
    /// Start of the metadata region (otable, TL2 locks, counters, lock).
    pub meta_base: Addr,
    /// USTM otable bins (power of two).
    pub otable_bins: u64,
    /// TL2 lock-table entries (power of two).
    pub tl2_locks: u64,
    /// Start of the shared heap.
    pub heap_base: Addr,
    /// Heap size in words.
    pub heap_words: u64,
    /// Whether the machine has a persistence domain: USTM then carves out
    /// per-CPU durable redo windows after its undo logs, and software
    /// commits fence a redo record before releasing ownership.
    pub durable: bool,
}

impl TmSharedLayout {
    /// Words of metadata needed for `cpus` CPUs with the given table sizes
    /// (`durable` adds USTM's per-CPU redo windows).
    #[must_use]
    pub fn required_meta_words(
        cpus: usize,
        otable_bins: u64,
        tl2_locks: u64,
        durable: bool,
    ) -> u64 {
        let ustm_words = if durable {
            UstmShared::required_words_durable(cpus, otable_bins)
        } else {
            UstmShared::required_words(cpus, otable_bins)
        };
        ustm_words
            + Tl2Shared::required_words(tl2_locks)
            + 8  // global lock line
            + 16 // PhTM counters (two lines)
            + 32 // padding
    }

    /// A standard layout for a machine configuration: metadata at the top
    /// of memory, the heap in the upper middle, everything below
    /// `heap_base` left to the workload's own static data.
    ///
    /// # Panics
    ///
    /// Panics if the machine's memory is too small (< ~1 MiB of words).
    #[must_use]
    pub fn standard(cfg: &MachineConfig) -> Self {
        let otable_bins = 16 * 1024;
        let tl2_locks = 16 * 1024;
        let durable = cfg.persist.is_some();
        let meta_words = Self::required_meta_words(cfg.cpus, otable_bins, tl2_locks, durable);
        let total = cfg.memory_words;
        assert!(
            total > meta_words + (1 << 17),
            "memory too small for standard layout"
        );
        let meta_base_word = total - meta_words;
        let heap_base_word = total / 4;
        TmSharedLayout {
            meta_base: Addr::from_word_index(meta_base_word),
            otable_bins,
            tl2_locks,
            heap_base: Addr::from_word_index(heap_base_word),
            heap_words: meta_base_word - heap_base_word,
            durable,
        }
    }
}

/// Allocator modelling knobs (paper §6: `malloc` inside transactions).
#[derive(Clone, Copy, Debug)]
pub struct AllocModel {
    /// Every this-many allocations, the thread-local pool refills via a
    /// system call (which aborts a BTM transaction).
    pub syscall_every: u32,
    /// Cycles charged per allocation (pool hit).
    pub alloc_cost: u64,
    /// Cycles charged by a pool-refill system call.
    pub syscall_cost: u64,
}

impl Default for AllocModel {
    fn default() -> Self {
        AllocModel {
            syscall_every: 32,
            alloc_cost: 30,
            syscall_cost: 500,
        }
    }
}

/// The combined software-shared state: every TM system's metadata plus the
/// shared heap. One `TmShared` is built per run, configured for the
/// [`SystemKind`] under test.
#[derive(Debug)]
pub struct TmShared {
    /// The system being run.
    pub kind: SystemKind,
    /// USTM state (used by USTM runs and as the hybrids' software side).
    pub ustm: UstmShared,
    /// TL2 state.
    pub tl2: Tl2Shared,
    /// PhTM phase counters.
    pub phtm: PhtmShared,
    /// The global lock.
    pub lock: LockShared,
    /// The serial-irrevocable stop flag (watchdog tier 2).
    pub serial: SerialGate,
    /// The shared heap allocator.
    pub heap: SimAlloc,
    /// Allocator modelling knobs.
    pub alloc_model: AllocModel,
    /// Driver-level counters.
    pub stats: HybridStats,
    /// Optional transaction-event journal (disabled by default; enable with
    /// [`TraceLog::enable`](crate::TraceLog::enable)).
    pub trace: TraceLog,
}

impl TmShared {
    /// Builds the shared state for `kind` with the given layout.
    #[must_use]
    pub fn new(kind: SystemKind, cpus: usize, layout: TmSharedLayout) -> Self {
        let ustm_cfg = if kind.strong_atomicity() {
            UstmConfig::default()
        } else {
            UstmConfig::weak()
        };
        let ustm_base = layout.meta_base;
        let ustm_words = if layout.durable {
            UstmShared::required_words_durable(cpus, layout.otable_bins)
        } else {
            UstmShared::required_words(cpus, layout.otable_bins)
        };
        let tl2_base = Addr(ustm_base.0 + ustm_words * 8);
        let tl2_words = Tl2Shared::required_words(layout.tl2_locks);
        let lock_base = Addr(tl2_base.0 + tl2_words * 8);
        let phtm_base = Addr(lock_base.0 + 64);
        let serial_base = Addr(phtm_base.0 + 128);
        TmShared {
            kind,
            ustm: UstmShared::new(ustm_cfg, ustm_base, cpus, layout.otable_bins),
            tl2: Tl2Shared::new(Tl2Config::default(), tl2_base, layout.tl2_locks),
            phtm: PhtmShared::new(phtm_base),
            lock: LockShared::new(lock_base),
            serial: SerialGate::new(serial_base),
            heap: SimAlloc::new(layout.heap_base, layout.heap_words),
            alloc_model: AllocModel::default(),
            stats: HybridStats::default(),
            trace: TraceLog::default(),
        }
    }

    /// Builds the shared state with the standard layout for `cfg`.
    #[must_use]
    pub fn standard(kind: SystemKind, cfg: &MachineConfig) -> Self {
        TmShared::new(kind, cfg.cpus, TmSharedLayout::standard(cfg))
    }
}

impl HasUstm for TmShared {
    fn ustm(&mut self) -> &mut UstmShared {
        &mut self.ustm
    }
}

impl HasTl2 for TmShared {
    fn tl2(&mut self) -> &mut Tl2Shared {
        &mut self.tl2
    }
}

/// Access to the combined state inside a larger world type.
pub trait HasTm {
    /// The embedded combined state.
    fn tm(&mut self) -> &mut TmShared;
}

impl HasTm for TmShared {
    fn tm(&mut self) -> &mut TmShared {
        self
    }
}

/// The world type drivers operate over.
pub trait TmWorld: HasTm + HasUstm + HasTl2 + Send {}
impl<T: HasTm + HasUstm + HasTl2 + Send> TmWorld for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_regions_are_disjoint_and_ordered() {
        let cfg = MachineConfig::table4(8);
        let layout = TmSharedLayout::standard(&cfg);
        assert!(layout.heap_base < layout.meta_base);
        let heap_end = layout.heap_base.0 + layout.heap_words * 8;
        assert!(heap_end <= layout.meta_base.0);
        let meta_end = layout.meta_base.word_index()
            + TmSharedLayout::required_meta_words(
                8,
                layout.otable_bins,
                layout.tl2_locks,
                layout.durable,
            );
        assert!(meta_end <= cfg.memory_words);
    }

    #[test]
    fn durable_layout_reserves_the_redo_windows() {
        let volatile = MachineConfig::table4(4);
        let mut durable = MachineConfig::table4(4);
        durable.persist = Some(ufotm_machine::PersistConfig::default());
        let lv = TmSharedLayout::standard(&volatile);
        let ld = TmSharedLayout::standard(&durable);
        assert!(!lv.durable);
        assert!(ld.durable);
        // The durable layout is strictly larger: 512 words per CPU of redo
        // window between the undo logs and the TL2 lock table.
        assert_eq!(
            lv.meta_base.word_index() - ld.meta_base.word_index(),
            4 * 512
        );
    }

    #[test]
    fn kind_configures_ustm_atomicity() {
        let cfg = MachineConfig::table4(2);
        let strong = TmShared::standard(SystemKind::UfoHybrid, &cfg);
        assert!(strong.ustm.config.strong_atomicity);
        let weak = TmShared::standard(SystemKind::HyTm, &cfg);
        assert!(!weak.ustm.config.strong_atomicity);
        let tl2 = TmShared::standard(SystemKind::Tl2, &cfg);
        assert!(!tl2.ustm.config.strong_atomicity);
    }

    #[test]
    fn kind_predicates() {
        assert!(SystemKind::UfoHybrid.is_hybrid());
        assert!(SystemKind::UfoHybrid.uses_htm());
        assert!(SystemKind::UfoHybrid.strong_atomicity());
        assert!(!SystemKind::Tl2.uses_htm());
        assert!(SystemKind::UnboundedHtm.needs_unbounded_btm());
        assert!(!SystemKind::PhTm.strong_atomicity());
        assert_eq!(SystemKind::all().len(), 9);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = HybridStats {
            hw_commits: 3,
            sw_commits: 2,
            ..Default::default()
        };
        s.record_failover(AbortReason::Overflow);
        s.record_failover(AbortReason::Overflow);
        s.forced_failovers = 1;
        assert_eq!(s.total_commits(), 5);
        assert_eq!(s.total_failovers(), 3);
    }
}
