//! Trace-journal integration: the drivers record coherent event sequences.

use ufotm_core::{EscalationTier, HybridPolicy, SystemKind, TmShared, TmThread, TraceKind};
use ufotm_machine::{
    AbortReason, Addr, CacheGeometry, ChaosFaultKind, FaultPlan, Machine, MachineConfig,
};
use ufotm_sim::{Ctx, Sim, ThreadFn};

#[test]
fn hw_commit_sequence_is_begin_then_commit() {
    let cfg = MachineConfig::table4(1);
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(64);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
        t.install(ctx);
        for _ in 0..3 {
            t.transaction(ctx, |tx, ctx| {
                let v = tx.read(ctx, Addr(0))?;
                tx.write(ctx, Addr(0), v + 1)
            });
        }
    }) as ThreadFn<TmShared>]);
    let kinds: Vec<TraceKind> = r.shared.trace.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TraceKind::HwBegin,
            TraceKind::HwCommit,
            TraceKind::HwBegin,
            TraceKind::HwCommit,
            TraceKind::HwBegin,
            TraceKind::HwCommit,
        ]
    );
    // Timestamps are non-decreasing per CPU.
    let cycles: Vec<u64> = r.shared.trace.events().iter().map(|e| e.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn overflow_trace_shows_abort_failover_sw_commit() {
    let mut cfg = MachineConfig::table4(1);
    cfg.l1 = CacheGeometry::new(4, 2);
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(64);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
        t.install(ctx);
        t.transaction(ctx, |tx, ctx| {
            for i in 0..24u64 {
                tx.write(ctx, Addr(i * 64), i)?;
            }
            Ok(())
        });
    }) as ThreadFn<TmShared>]);
    let kinds: Vec<TraceKind> = r.shared.trace.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TraceKind::HwBegin,
            TraceKind::HwAbort(AbortReason::Overflow),
            TraceKind::Failover(AbortReason::Overflow),
            TraceKind::SwBegin,
            TraceKind::SwCommit,
        ]
    );
}

#[test]
fn disabled_trace_records_nothing_and_results_match() {
    let cfg = MachineConfig::table4(2);
    let run = |trace_on: bool| {
        let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
        if trace_on {
            shared.trace.enable(1024);
        }
        let machine = Machine::new(cfg.clone());
        Sim::new(machine, shared).run(
            (0..2)
                .map(|cpu| -> ThreadFn<TmShared> {
                    Box::new(move |ctx: &mut Ctx<TmShared>| {
                        let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                        t.install(ctx);
                        for _ in 0..10 {
                            t.transaction(ctx, |tx, ctx| {
                                let v = tx.read(ctx, Addr(0))?;
                                tx.work(ctx, 30)?;
                                tx.write(ctx, Addr(0), v + 1)
                            });
                        }
                    })
                })
                .collect(),
        )
    };
    let with = run(true);
    let without = run(false);
    assert!(without.shared.trace.events().is_empty());
    assert!(!with.shared.trace.events().is_empty());
    // Tracing is observation-only: identical simulated outcome.
    assert_eq!(with.makespan, without.makespan);
    assert_eq!(with.machine.peek(Addr(0)), without.machine.peek(Addr(0)));
}

#[test]
fn injected_faults_are_journaled_before_the_aborts_they_provoke() {
    let mut cfg = MachineConfig::table4(1);
    cfg.fault_plan = Some(FaultPlan::abort_storm(7));
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(4096);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
        t.install(ctx);
        for _ in 0..40 {
            t.transaction(ctx, |tx, ctx| {
                let v = tx.read(ctx, Addr(0))?;
                tx.work(ctx, 20)?;
                tx.write(ctx, Addr(0), v + 1)
            });
        }
    }) as ThreadFn<TmShared>]);
    let events = r.shared.trace.events();
    let spurious_aborts = events
        .iter()
        .filter(|e| e.kind == TraceKind::HwAbort(AbortReason::Spurious))
        .count();
    assert!(
        spurious_aborts > 0,
        "the abort storm must provoke spurious aborts"
    );
    // Every spurious abort entry is preceded by the injection entry that
    // caused it, stamped no later than the abort itself.
    for (i, e) in events.iter().enumerate() {
        if e.kind == TraceKind::HwAbort(AbortReason::Spurious) {
            let cause = events[..i]
                .iter()
                .rev()
                .find(|p| p.kind == TraceKind::FaultInjected(ChaosFaultKind::SpuriousAbort))
                .unwrap_or_else(|| panic!("abort at index {i} has no preceding injection"));
            assert!(cause.cycle <= e.cycle, "injection stamped after its abort");
        }
    }
}

#[test]
fn software_escalation_is_journaled_before_the_sw_attempt_it_triggers() {
    let mut cfg = MachineConfig::table4(1);
    cfg.fault_plan = Some(FaultPlan::abort_storm(11));
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(4096);
    let machine = Machine::new(cfg);
    // One counted abort is enough: any hardware abort escalates straight
    // to the software tier.
    let policy = HybridPolicy {
        watchdog_hw_attempts: Some(1),
        ..HybridPolicy::default()
    };
    let r = Sim::new(machine, shared).run(vec![Box::new(move |ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::with_policy(SystemKind::UfoHybrid, 0, policy);
        t.install(ctx);
        for _ in 0..40 {
            t.transaction(ctx, |tx, ctx| {
                let v = tx.read(ctx, Addr(0))?;
                tx.work(ctx, 20)?;
                tx.write(ctx, Addr(0), v + 1)
            });
        }
    }) as ThreadFn<TmShared>]);
    let kinds: Vec<TraceKind> = r.shared.trace.events().iter().map(|e| e.kind).collect();
    let escalations = kinds
        .iter()
        .filter(|k| **k == TraceKind::WatchdogEscalation(EscalationTier::Software))
        .count();
    assert!(escalations > 0, "the one-attempt watchdog must escalate");
    // Each software escalation is immediately honoured: the next driver
    // event on this CPU is the software begin (injection entries may
    // interleave, driver events may not).
    for (i, k) in kinds.iter().enumerate() {
        if *k == TraceKind::WatchdogEscalation(EscalationTier::Software) {
            let next_driver = kinds[i + 1..]
                .iter()
                .find(|n| !matches!(n, TraceKind::FaultInjected(_)))
                .expect("escalation is not the last driver event");
            assert_eq!(
                *next_driver,
                TraceKind::SwBegin,
                "escalation must be honoured"
            );
        }
    }
}
