//! Integration tests for the TM drivers: the UFO hybrid, HyTM, PhTM, the
//! unbounded HTM, and the baselines, all exercising the full stack
//! (machine + engine + USTM/TL2 + drivers).

use ufotm_core::{audit_log, SystemKind, TmShared, TmThread};
use ufotm_machine::{AbortReason, Addr, CacheGeometry, Machine, MachineConfig};
use ufotm_sim::{Ctx, Sim, SimResult, ThreadFn};

const COUNTER: Addr = Addr(0);

fn machine_for(kind: SystemKind, cpus: usize) -> MachineConfig {
    let mut cfg = MachineConfig::table4(cpus);
    if kind.needs_unbounded_btm() {
        cfg.btm_unbounded = true;
    }
    cfg
}

/// Runs `threads` bodies under `kind`, returning the final world. Every
/// run is journaled and the trace auditor must find it invariant-clean.
fn run_threads(
    kind: SystemKind,
    cfg: MachineConfig,
    bodies: Vec<ThreadFn<TmShared>>,
) -> SimResult<TmShared> {
    let mut shared = TmShared::standard(kind, &cfg);
    shared.trace.enable(1 << 16);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(bodies);
    audit_log(&r.shared.trace).assert_clean();
    r
}

/// N threads × `iters` counter increments with some compute.
fn counter_bodies(kind: SystemKind, threads: usize, iters: u64) -> Vec<ThreadFn<TmShared>> {
    (0..threads)
        .map(|cpu| -> ThreadFn<TmShared> {
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(kind, cpu);
                t.install(ctx);
                for _ in 0..iters {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        tx.work(ctx, 40)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            })
        })
        .collect()
}

#[test]
fn every_system_counts_correctly_under_contention() {
    for kind in [
        SystemKind::GlobalLock,
        SystemKind::UstmWeak,
        SystemKind::UstmStrong,
        SystemKind::Tl2,
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
    ] {
        let cfg = machine_for(kind, 4);
        let r = run_threads(kind, cfg, counter_bodies(kind, 4, 20));
        assert_eq!(
            r.machine.peek(COUNTER),
            80,
            "{kind}: lost or duplicated increments"
        );
        assert_eq!(r.shared.stats.total_commits(), 80, "{kind}: commit count");
    }
}

#[test]
fn sequential_baseline_counts() {
    let cfg = machine_for(SystemKind::Sequential, 1);
    let r = run_threads(
        SystemKind::Sequential,
        cfg,
        counter_bodies(SystemKind::Sequential, 1, 50),
    );
    assert_eq!(r.machine.peek(COUNTER), 50);
}

#[test]
fn ufo_hybrid_commits_small_txns_in_hardware() {
    let cfg = machine_for(SystemKind::UfoHybrid, 2);
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        counter_bodies(SystemKind::UfoHybrid, 2, 25),
    );
    assert_eq!(r.machine.peek(COUNTER), 50);
    assert_eq!(r.shared.stats.hw_commits, 50, "everything fits in hardware");
    assert_eq!(r.shared.stats.sw_commits, 0);
}

#[test]
fn ufo_hybrid_fails_over_on_cache_overflow() {
    let mut cfg = machine_for(SystemKind::UfoHybrid, 1);
    cfg.l1 = CacheGeometry::new(4, 2); // 8 lines: easy to overflow
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
            t.install(ctx);
            t.transaction(ctx, |tx, ctx| {
                // Write 32 distinct lines: cannot fit in an 8-line L1.
                for i in 0..32u64 {
                    tx.write(ctx, Addr(i * 64), i)?;
                }
                Ok(())
            });
        })],
    );
    assert_eq!(r.shared.stats.sw_commits, 1, "must fail over to USTM");
    assert_eq!(r.shared.stats.hw_commits, 0);
    assert_eq!(
        r.shared
            .stats
            .failovers
            .get(&AbortReason::Overflow)
            .copied(),
        Some(1)
    );
    for i in 0..32u64 {
        assert_eq!(r.machine.peek(Addr(i * 64)), i);
    }
}

#[test]
fn unbounded_htm_runs_large_txns_in_hardware() {
    let mut cfg = machine_for(SystemKind::UnboundedHtm, 1);
    cfg.l1 = CacheGeometry::new(4, 2);
    let r = run_threads(
        SystemKind::UnboundedHtm,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UnboundedHtm, 0);
            t.install(ctx);
            t.transaction(ctx, |tx, ctx| {
                for i in 0..32u64 {
                    tx.write(ctx, Addr(i * 64), i)?;
                }
                Ok(())
            });
        })],
    );
    assert_eq!(r.shared.stats.hw_commits, 1);
    assert_eq!(r.shared.stats.sw_commits, 0);
    assert_eq!(
        r.machine.stats().aggregate().aborts(AbortReason::Overflow),
        0
    );
}

#[test]
fn hybrid_io_fails_over() {
    let cfg = machine_for(SystemKind::UfoHybrid, 1);
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
            t.install(ctx);
            t.transaction(ctx, |tx, ctx| {
                tx.write(ctx, COUNTER, 1)?;
                tx.io(ctx)?;
                tx.write(ctx, COUNTER, 2)
            });
        })],
    );
    assert_eq!(r.shared.stats.sw_commits, 1);
    assert_eq!(
        r.shared.stats.failovers.get(&AbortReason::Io).copied(),
        Some(1)
    );
    assert_eq!(r.machine.peek(COUNTER), 2);
}

#[test]
fn alloc_pool_refill_fails_over_and_allocations_survive() {
    let cfg = machine_for(SystemKind::UfoHybrid, 1);
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
            t.install(ctx);
            let mut nodes = Vec::new();
            for i in 0..5u64 {
                let node = t.transaction(ctx, |tx, ctx| {
                    let n = tx.alloc(ctx, 8)?;
                    tx.write(ctx, n, 100 + i)?;
                    Ok(n)
                });
                nodes.push(node);
            }
            let got: Vec<u64> = nodes
                .iter()
                .map(|&n| ufotm_core::nont_load(ctx, n))
                .collect();
            assert_eq!(got, vec![100, 101, 102, 103, 104]);
        })],
    );
    // The very first allocation triggers a pool refill (budget starts at 1),
    // which in hardware is a syscall failover.
    assert!(r.shared.stats.sw_commits >= 1, "first alloc fails over");
    assert_eq!(
        r.shared.heap.live_allocations(),
        5,
        "no leaks, no lost allocs"
    );
    assert!(r.shared.stats.alloc_syscalls >= 1);
}

#[test]
fn frees_are_deferred_to_commit() {
    let cfg = machine_for(SystemKind::UstmWeak, 1);
    let r = run_threads(
        SystemKind::UstmWeak,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UstmWeak, 0);
            t.install(ctx);
            let node = t.transaction(ctx, |tx, ctx| tx.alloc(ctx, 8));
            t.transaction(ctx, |tx, ctx| tx.free(ctx, node));
        })],
    );
    assert_eq!(r.shared.heap.live_allocations(), 0);
}

#[test]
fn hybrid_hw_txn_respects_stm_isolation() {
    // One thread runs a long software transaction (forced via overflow);
    // another hammers the same lines with hardware transactions. The
    // invariant (a == b) must hold throughout.
    let a = Addr(0);
    let b = Addr(4096);
    let mut cfg = machine_for(SystemKind::UfoHybrid, 2);
    cfg.l1 = CacheGeometry::new(8, 2);
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        vec![
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
                t.install(ctx);
                for _ in 0..10 {
                    t.transaction(ctx, |tx, ctx| {
                        // Big footprint: overflows the 16-line L1 → USTM.
                        for i in 0..40u64 {
                            let addr = Addr(8192 + i * 64);
                            let v = tx.read(ctx, addr)?;
                            tx.write(ctx, addr, v + 1)?;
                        }
                        let va = tx.read(ctx, a)?;
                        let vb = tx.read(ctx, b)?;
                        assert_eq!(va, vb, "SW txn saw torn invariant");
                        tx.work(ctx, 200)?;
                        tx.write(ctx, a, va + 1)?;
                        tx.write(ctx, b, vb + 1)
                    });
                }
            }),
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::UfoHybrid, 1);
                t.install(ctx);
                for _ in 0..30 {
                    t.transaction(ctx, |tx, ctx| {
                        let va = tx.read(ctx, a)?;
                        let vb = tx.read(ctx, b)?;
                        assert_eq!(va, vb, "HW txn saw torn invariant");
                        tx.work(ctx, 50)?;
                        tx.write(ctx, a, va + 1)?;
                        tx.write(ctx, b, vb + 1)
                    });
                }
            }),
        ],
    );
    assert_eq!(r.machine.peek(a), 40);
    assert_eq!(r.machine.peek(b), 40);
    assert!(r.shared.stats.sw_commits >= 10, "thread 0 ran in software");
    assert!(r.shared.stats.hw_commits >= 1, "thread 1 ran in hardware");
}

#[test]
fn forced_failover_sends_hybrids_to_software() {
    for kind in [SystemKind::UfoHybrid, SystemKind::HyTm, SystemKind::PhTm] {
        let cfg = machine_for(kind, 1);
        let r = run_threads(
            kind,
            cfg,
            vec![Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(kind, 0);
                t.install(ctx);
                for _ in 0..5 {
                    t.transaction(ctx, |tx, ctx| {
                        tx.force_failover(ctx)?;
                        let v = tx.read(ctx, COUNTER)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            })],
        );
        assert_eq!(r.machine.peek(COUNTER), 5, "{kind}");
        assert_eq!(r.shared.stats.sw_commits, 5, "{kind}: all in software");
        assert_eq!(r.shared.stats.forced_failovers, 5, "{kind}");
    }
}

#[test]
fn forced_failover_is_a_noop_for_pure_htm() {
    let cfg = machine_for(SystemKind::UnboundedHtm, 1);
    let r = run_threads(
        SystemKind::UnboundedHtm,
        cfg,
        vec![Box::new(|ctx: &mut Ctx<TmShared>| {
            let mut t = TmThread::new(SystemKind::UnboundedHtm, 0);
            t.install(ctx);
            t.transaction(ctx, |tx, ctx| {
                // In pure HTM, forcing has nothing to fail over to; the
                // driver retries in hardware and the retry is forced again…
                // so the microbenchmark never calls it for pure systems.
                // Here we only check the no-op path for software/plain.
                let v = tx.read(ctx, COUNTER)?;
                tx.write(ctx, COUNTER, v + 1)
            });
        })],
    );
    assert_eq!(r.shared.stats.hw_commits, 1);
}

#[test]
fn phtm_software_phase_aborts_concurrent_hardware() {
    let mut cfg = machine_for(SystemKind::PhTm, 2);
    cfg.l1 = CacheGeometry::new(4, 2);
    let r = run_threads(
        SystemKind::PhTm,
        cfg,
        vec![
            Box::new(|ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::PhTm, 0);
                t.install(ctx);
                // Overflows → mandatory software phase.
                for _ in 0..5 {
                    t.transaction(ctx, |tx, ctx| {
                        for i in 0..32u64 {
                            let addr = Addr(8192 + i * 64);
                            tx.write(ctx, addr, i)?;
                        }
                        Ok(())
                    });
                }
            }),
            Box::new(|ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::PhTm, 1);
                t.install(ctx);
                for _ in 0..40 {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        tx.work(ctx, 30)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            }),
        ],
    );
    assert_eq!(r.machine.peek(COUNTER), 40);
    assert!(r.shared.stats.sw_commits >= 5);
    assert!(
        r.shared.phtm.phase_aborts + r.shared.phtm.phase_stalls > 0,
        "hardware transactions must have noticed the software phase"
    );
}

#[test]
fn hytm_hw_txn_aborts_on_otable_conflict() {
    let mut cfg = machine_for(SystemKind::HyTm, 2);
    cfg.l1 = CacheGeometry::new(4, 2);
    let r = run_threads(
        SystemKind::HyTm,
        cfg,
        vec![
            Box::new(|ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::HyTm, 0);
                t.install(ctx);
                // Overflow → software; holds COUNTER's line in the otable.
                for _ in 0..5 {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        for i in 0..32u64 {
                            tx.write(ctx, Addr(8192 + i * 64), i)?;
                        }
                        tx.work(ctx, 500)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            }),
            Box::new(|ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::HyTm, 1);
                t.install(ctx);
                for _ in 0..40 {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        tx.work(ctx, 30)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            }),
        ],
    );
    assert_eq!(r.machine.peek(COUNTER), 45, "no lost updates across modes");
    assert!(r.shared.stats.sw_commits >= 5);
    // HyTM's signature behaviour: explicit aborts on otable conflicts.
    assert!(
        r.machine.stats().aggregate().aborts(AbortReason::Explicit) > 0,
        "expected explicit aborts from otable checks"
    );
}

#[test]
fn retry_in_hybrid_fails_over_and_wakes() {
    let flag = Addr(0);
    let data = Addr(4096);
    let cfg = machine_for(SystemKind::UfoHybrid, 2);
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        vec![
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::UfoHybrid, 0);
                t.install(ctx);
                let got = t.transaction(ctx, |tx, ctx| {
                    let f = tx.read(ctx, flag)?;
                    if f == 0 {
                        tx.retry(ctx)?;
                        unreachable!("retry never returns Ok");
                    }
                    tx.read(ctx, data)
                });
                assert_eq!(got, 7);
            }),
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::new(SystemKind::UfoHybrid, 1);
                t.install(ctx);
                ctx.work(30_000).unwrap();
                t.transaction(ctx, |tx, ctx| {
                    tx.write(ctx, data, 7)?;
                    tx.write(ctx, flag, 1)
                });
            }),
        ],
    );
    assert_eq!(r.shared.ustm.stats.retries_woken, 1);
    assert_eq!(r.machine.peek(flag), 1);
}

#[test]
fn requester_wins_cm_still_correct() {
    use ufotm_machine::HwCmPolicy;
    let mut cfg = machine_for(SystemKind::UfoHybrid, 4);
    cfg.hw_cm = HwCmPolicy::RequesterWins;
    let r = run_threads(
        SystemKind::UfoHybrid,
        cfg,
        counter_bodies(SystemKind::UfoHybrid, 4, 15),
    );
    assert_eq!(r.machine.peek(COUNTER), 60);
}

#[test]
fn stall_on_ufo_fault_policy_still_correct() {
    use ufotm_core::HybridPolicy;
    let mut cfg = machine_for(SystemKind::UfoHybrid, 2);
    cfg.l1 = CacheGeometry::new(8, 2);
    let policy = HybridPolicy::stall_on_ufo_fault();
    let bodies: Vec<ThreadFn<TmShared>> = (0..2)
        .map(|cpu| -> ThreadFn<TmShared> {
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::with_policy(SystemKind::UfoHybrid, cpu, policy);
                t.install(ctx);
                for _ in 0..10 {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        // Thread 0 sometimes overflows to software.
                        if cpu == 0 {
                            for i in 0..40u64 {
                                tx.write(ctx, Addr(8192 + i * 64), i)?;
                            }
                        }
                        tx.work(ctx, 50)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            })
        })
        .collect();
    let r = run_threads(SystemKind::UfoHybrid, cfg, bodies);
    assert_eq!(r.machine.peek(COUNTER), 20);
}

#[test]
fn failover_on_nth_conflict_policy_reaches_software() {
    use ufotm_core::HybridPolicy;
    let cfg = machine_for(SystemKind::UfoHybrid, 4);
    let policy = HybridPolicy::failover_on_nth_conflict(2);
    let bodies: Vec<ThreadFn<TmShared>> = (0..4)
        .map(|cpu| -> ThreadFn<TmShared> {
            Box::new(move |ctx: &mut Ctx<TmShared>| {
                let mut t = TmThread::with_policy(SystemKind::UfoHybrid, cpu, policy);
                t.install(ctx);
                for _ in 0..25 {
                    t.transaction(ctx, |tx, ctx| {
                        let v = tx.read(ctx, COUNTER)?;
                        tx.work(ctx, 120)?;
                        tx.write(ctx, COUNTER, v + 1)
                    });
                }
            })
        })
        .collect();
    let r = run_threads(SystemKind::UfoHybrid, cfg, bodies);
    assert_eq!(r.machine.peek(COUNTER), 100);
    assert!(
        r.shared.stats.sw_commits > 0,
        "contention should have pushed some transactions to software"
    );
}
