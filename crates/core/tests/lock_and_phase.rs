//! Focused tests for the global-lock baseline and PhTM's phase machinery.

use ufotm_core::{SystemKind, TmShared, TmThread};
use ufotm_machine::{Addr, Machine, MachineConfig};
use ufotm_sim::{Ctx, Sim, ThreadFn};

#[test]
fn global_lock_serializes_critical_sections() {
    let cfg = MachineConfig::table4(4);
    let shared = TmShared::standard(SystemKind::GlobalLock, &cfg);
    let machine = Machine::new(cfg);
    // Each critical section checks it observes no torn intermediate state:
    // it bumps IN, works, bumps OUT; IN == OUT at entry proves exclusion.
    let in_ctr = Addr(0);
    let out_ctr = Addr(4096);
    let r = Sim::new(machine, shared).run(
        (0..4)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::GlobalLock, cpu);
                    t.install(ctx);
                    for _ in 0..10 {
                        t.transaction(ctx, |tx, ctx| {
                            let i = tx.read(ctx, in_ctr)?;
                            let o = tx.read(ctx, out_ctr)?;
                            assert_eq!(i, o, "another thread inside the lock!");
                            tx.write(ctx, in_ctr, i + 1)?;
                            tx.work(ctx, 100)?;
                            tx.write(ctx, out_ctr, o + 1)
                        });
                    }
                })
            })
            .collect(),
    );
    assert_eq!(r.machine.peek(in_ctr), 40);
    assert_eq!(r.machine.peek(out_ctr), 40);
    assert_eq!(r.shared.lock.holder(), None, "lock released at the end");
    assert_eq!(r.shared.stats.lock_commits, 40);
}

#[test]
fn phtm_counters_return_to_zero() {
    let mut cfg = MachineConfig::table4(2);
    cfg.l1 = ufotm_machine::CacheGeometry::new(4, 2); // force overflows
    let shared = TmShared::standard(SystemKind::PhTm, &cfg);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(
        (0..2)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::PhTm, cpu);
                    t.install(ctx);
                    for k in 0..8u64 {
                        t.transaction(ctx, |tx, ctx| {
                            // Alternate small and overflowing transactions.
                            let lines = if k % 2 == 0 { 2 } else { 24 };
                            for i in 0..lines {
                                let a = Addr(8192 + (cpu as u64 * 64 + i) * 64);
                                let v = tx.read(ctx, a)?;
                                tx.write(ctx, a, v + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect(),
    );
    assert_eq!(r.shared.phtm.stm_count, 0, "stm phase counter must drain");
    assert_eq!(r.shared.phtm.must_count, 0, "must counter must drain");
    assert!(
        r.shared.stats.sw_commits > 0,
        "overflows must have gone to software"
    );
    assert_eq!(r.shared.stats.total_commits(), 16);
}

#[test]
fn phtm_counter_words_track_host_state() {
    let cfg = MachineConfig::table4(1);
    let shared = TmShared::standard(SystemKind::PhTm, &cfg);
    let stm_addr = shared.phtm.stm_addr();
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(vec![Box::new(move |ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(SystemKind::PhTm, 0);
        t.install(ctx);
        t.transaction(ctx, |tx, ctx| {
            tx.force_failover(ctx)?; // software phase for this txn
            let v = tx.read(ctx, Addr(0))?;
            tx.write(ctx, Addr(0), v + 1)
        });
    }) as ThreadFn<TmShared>]);
    // The simulated counter word was written back to 0 on exit.
    assert_eq!(r.machine.peek(stm_addr), 0);
}
