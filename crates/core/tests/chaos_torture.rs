//! Chaos torture: seed sweeps under the fault-injection engine.
//!
//! Every run drives a machine configured with a [`FaultPlan`] — spurious
//! aborts, forced evictions, injected coherence nacks, UFO-set retries,
//! swap thrash — and asserts the invariants that must survive arbitrary
//! fault schedules: exact final counters (serializability), strong
//! atomicity, bounded worst-case retries under the watchdog policy, and
//! bit-for-bit seed replay. A failing seed prints as `CHAOS_SEED=<n>` for
//! exact reproduction; `CHAOS_SEEDS=<k>` shrinks the sweep for smoke runs.

use ufotm_core::{
    audit_log, EscalationTier, HybridPolicy, SystemKind, TmShared, TmThread, TraceKind,
};
use ufotm_machine::{Addr, FaultPlan, HwCmPolicy, Machine, MachineConfig, SwapConfig};
use ufotm_sim::{for_each_seed, seed_count, Ctx, Sim, SimResult, ThreadFn};

const COUNTER: Addr = Addr(0);
const CPUS: usize = 3;
const TXNS: u64 = 8;

type MixFn = fn(u64) -> FaultPlan;

/// The fault mixes swept, in increasing hostility.
fn mixes() -> Vec<(&'static str, MixFn)> {
    vec![
        ("quiet", FaultPlan::quiet as MixFn),
        ("mixed", FaultPlan::mixed),
        ("abort-storm", FaultPlan::abort_storm),
        ("nack-storm", FaultPlan::nack_storm),
    ]
}

fn torture_machine(plan: FaultPlan) -> (MachineConfig, Machine) {
    let mut cfg = MachineConfig::table4(CPUS);
    cfg.memory_words = 1 << 19;
    cfg.fault_plan = Some(plan);
    let mut machine = Machine::new(cfg.clone());
    // Swap pressure so the thrash injector has something to thrash.
    machine.enable_swap(SwapConfig {
        max_resident_pages: 64,
    });
    (cfg, machine)
}

/// One torture run: `CPUS` threads each commit `TXNS` increments of a
/// shared counter plus a private slot. Returns the finished simulation.
fn run_counters(kind: SystemKind, plan: FaultPlan) -> SimResult<TmShared> {
    let (cfg, machine) = torture_machine(plan);
    let mut shared = TmShared::standard(kind, &cfg);
    // Journal every run so the trace auditor can replay it afterwards
    // (host-side only; the simulated execution is unchanged).
    shared.trace.enable(1 << 16);
    Sim::new(machine, shared).run(
        (0..CPUS)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::with_policy(kind, cpu, HybridPolicy::watchdog());
                    t.install(ctx);
                    let slot = Addr(4096 + cpu as u64 * 64);
                    for _ in 0..TXNS {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, COUNTER)?;
                            tx.work(ctx, 60)?;
                            let s = tx.read(ctx, slot)?;
                            tx.write(ctx, slot, s + 1)?;
                            tx.write(ctx, COUNTER, v + 1)
                        });
                    }
                })
            })
            .collect(),
    )
}

fn assert_counters_exact(r: &SimResult<TmShared>, label: &str) {
    let total = CPUS as u64 * TXNS;
    assert_eq!(
        r.machine.peek(COUNTER),
        total,
        "{label}: lost or doubled increments"
    );
    for cpu in 0..CPUS {
        assert_eq!(
            r.machine.peek(Addr(4096 + cpu as u64 * 64)),
            TXNS,
            "{label}: cpu {cpu} private slot"
        );
    }
    assert_eq!(
        r.shared.stats.total_commits(),
        total,
        "{label}: commit accounting"
    );
    // Every fault schedule must still produce a protocol-clean journal:
    // balanced attempts, failovers only after aborts, exclusive serial
    // windows, faults preceding the events they provoke.
    let audit = audit_log(&r.shared.trace);
    assert!(
        audit.is_clean(),
        "{label}: trace audit found {} violation(s), e.g. {}",
        audit.violations.len(),
        audit.violations[0],
    );
}

/// The sweep: every seed × fault mix × system kind must produce exactly
/// the serial outcome, with retries bounded by the watchdog.
#[test]
fn torture_counters_exact_across_seeds_mixes_and_systems() {
    let seeds = seed_count(64);
    for kind in [
        SystemKind::UfoHybrid,
        SystemKind::UstmStrong,
        SystemKind::GlobalLock,
    ] {
        for (name, mk) in mixes() {
            for_each_seed(0, seeds, |seed| {
                let r = run_counters(kind, mk(seed));
                assert_counters_exact(&r, &format!("{kind}/{name}/seed {seed}"));
                if kind == SystemKind::UfoHybrid {
                    // Watchdog bounded-retry guarantee: at most
                    // `watchdog_hw_attempts` counted backoffs per committed
                    // transaction, plus page-fault fix-up retries (each of
                    // which makes residency progress; the generous factor
                    // absorbs injected swap thrash).
                    let total = CPUS as u64 * TXNS;
                    assert!(
                        r.shared.stats.hw_retries <= total * 64,
                        "{kind}/{name}/seed {seed}: unbounded retries \
                         ({} for {} txns)",
                        r.shared.stats.hw_retries,
                        total,
                    );
                }
            });
        }
    }
}

/// Same seed, same plan ⇒ bit-identical execution: makespan, memory,
/// commit counters, and the injected-fault counters all replay exactly.
#[test]
fn same_seed_replays_bit_for_bit() {
    let seeds = seed_count(8);
    for (name, mk) in mixes() {
        for_each_seed(100, seeds, |seed| {
            let snap = |r: &SimResult<TmShared>| {
                (
                    r.makespan,
                    r.machine.peek(COUNTER),
                    r.shared.stats.hw_commits,
                    r.shared.stats.sw_commits,
                    r.shared.stats.serial_commits,
                    r.shared.stats.watchdog_escalations,
                    r.machine.chaos_stats(),
                )
            };
            let a = snap(&run_counters(SystemKind::UfoHybrid, mk(seed)));
            let b = snap(&run_counters(SystemKind::UfoHybrid, mk(seed)));
            assert_eq!(a, b, "mix {name}, seed {seed}: replay diverged");
        });
    }
}

/// Figure 2b's strong-atomicity litmus under an abort storm: the
/// non-transactional word adjacent to transactional data must never be
/// lost, no matter how many injected aborts roll the transaction back.
#[test]
fn strong_atomicity_litmus_survives_abort_storms() {
    let seeds = seed_count(16);
    for kind in [SystemKind::UfoHybrid, SystemKind::UstmStrong] {
        for_each_seed(200, seeds, |seed| {
            let mut cfg = MachineConfig::table4(2);
            cfg.memory_words = 1 << 19;
            cfg.fault_plan = Some(FaultPlan::abort_storm(seed));
            let shared = TmShared::standard(kind, &cfg);
            let machine = Machine::new(cfg);
            let line = Addr(512); // word 0 transactional, word 1 plain
            let rounds = 12u64;
            let r = Sim::new(machine, shared).run(vec![
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::with_policy(kind, 0, HybridPolicy::watchdog());
                    t.install(ctx);
                    for _ in 0..rounds {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, line)?;
                            tx.work(ctx, 80)?;
                            tx.write(ctx, line, v + 1)
                        });
                    }
                }) as ThreadFn<TmShared>,
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    // Plain code: adjacent-word stores through the strong-
                    // atomicity fault handler.
                    ctx.set_ufo_enabled(true);
                    for k in 1..=rounds {
                        ufotm_core::nont_store(ctx, line.add_words(1), k);
                        assert_eq!(
                            ufotm_core::nont_load(ctx, line.add_words(1)),
                            k,
                            "adjacent plain store lost (seed {seed})"
                        );
                    }
                }) as ThreadFn<TmShared>,
            ]);
            assert_eq!(
                r.machine.peek(line),
                rounds,
                "transactional word (seed {seed})"
            );
            assert_eq!(
                r.machine.peek(line.add_words(1)),
                rounds,
                "plain word survived every injected abort (seed {seed})"
            );
        });
    }
}

/// The acceptance scenario: a crafted livelock — two transactions
/// acquiring the same two lines in opposite order under requester-wins
/// hardware contention management and an injected nack storm — must be
/// broken by the watchdog within bounded retries, ending in a
/// serial-irrevocable commit that is visible in the trace journal.
#[test]
fn watchdog_breaks_crafted_livelock_with_serial_commit() {
    let a = Addr(0);
    let b = Addr(4096);
    let mut cfg = MachineConfig::table4(2);
    cfg.memory_words = 1 << 19;
    cfg.hw_cm = HwCmPolicy::RequesterWins;
    cfg.fault_plan = Some(FaultPlan::nack_storm(0xDEAD));
    let mut shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    shared.trace.enable(4096);
    let machine = Machine::new(cfg);
    // Tight limits so the escalation happens quickly; zero jitter keeps
    // the contenders symmetric (the livelock persists until the watchdog
    // breaks it, not by luck).
    let policy = HybridPolicy {
        watchdog_hw_attempts: Some(6),
        watchdog_sw_kills: Some(2),
        watchdog_stagnation: Some(4),
        backoff_jitter_pct: 0,
        ..HybridPolicy::default()
    };
    let rounds = 6u64;
    let r = Sim::new(machine, shared).run(
        (0..2)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::with_policy(SystemKind::UfoHybrid, cpu, policy);
                    t.install(ctx);
                    let (first, second) = if cpu == 0 { (a, b) } else { (b, a) };
                    for _ in 0..rounds {
                        t.transaction(ctx, |tx, ctx| {
                            let x = tx.read(ctx, first)?;
                            tx.write(ctx, first, x + 1)?;
                            let y = tx.read(ctx, second)?;
                            tx.write(ctx, second, y + 1)?;
                            // Long tail: under requester-wins the doomed
                            // rival restarts (max backoff 50 << 7 = 6400
                            // cycles) and re-requests these lines long
                            // before the tail ends — so it dooms us, we
                            // doom it back, and nobody ever commits until
                            // the watchdog breaks the cycle.
                            tx.work(ctx, 20_000)
                        });
                    }
                })
            })
            .collect(),
    );
    // Both counters took every increment from both threads.
    assert_eq!(r.machine.peek(a), 2 * rounds);
    assert_eq!(r.machine.peek(b), 2 * rounds);
    // The full journal of the livelock (nack storm, escalations, the
    // serial window) must satisfy every auditor invariant.
    audit_log(&r.shared.trace).assert_clean();
    // CI artifact: with UFOTM_REPORT_DIR set, emit this run's full report
    // (the chaos smoke job uploads it — see .github/workflows/ci.yml).
    if let Ok(dir) = std::env::var("UFOTM_REPORT_DIR") {
        let report = ufotm_core::RunReport::collect(0xDEAD, &r.machine, &r.shared);
        std::fs::create_dir_all(&dir).expect("report dir");
        std::fs::write(
            std::path::Path::new(&dir).join("REPORT_chaos_livelock.json"),
            report.to_json(),
        )
        .expect("write chaos run report");
    }
    let stats = &r.shared.stats;
    assert!(
        stats.watchdog_escalations > 0,
        "the watchdog must have fired"
    );
    assert!(
        stats.serial_commits > 0,
        "the livelock must end in a serial commit"
    );
    // Bounded retries: per committed transaction, at most the hw-attempt
    // limit of counted backoffs before the watchdog takes over.
    assert!(
        stats.hw_retries <= stats.total_commits() * 6,
        "retries not bounded: {} retries for {} commits",
        stats.hw_retries,
        stats.total_commits(),
    );
    // The trace journal shows the escalation and the serial commit, in
    // that order on the escalating CPU.
    let has_serial_escalation = r
        .shared
        .trace
        .events()
        .iter()
        .any(|e| e.kind == TraceKind::WatchdogEscalation(EscalationTier::Serial));
    assert!(has_serial_escalation, "serial escalation must be journaled");
    for cpu in 0..2 {
        let kinds: Vec<TraceKind> = r.shared.trace.for_cpu(cpu).map(|e| e.kind).collect();
        if let Some(i) = kinds
            .iter()
            .position(|k| *k == TraceKind::WatchdogEscalation(EscalationTier::Serial))
        {
            let j = kinds[i..]
                .iter()
                .position(|k| *k == TraceKind::SerialIrrevocable)
                .expect("escalation is followed by serial-irrevocable entry");
            assert!(
                kinds[i + j..].contains(&TraceKind::PlainCommit),
                "serial attempt must commit"
            );
        }
    }
}
