//! Negative tests for the trace auditor: hand-crafted malformed journals
//! must be rejected with the right violation, and the equivalent
//! well-formed journals must pass. This is the auditor's own test — the
//! positive path (real runs audit clean) is covered by the hybrid and
//! chaos-torture suites.

use ufotm_core::{audit_events, audit_events_durable, EscalationTier, TraceEvent, TraceKind};
use ufotm_machine::AbortReason;

fn ev(cycle: u64, cpu: usize, kind: TraceKind) -> TraceEvent {
    TraceEvent { cycle, cpu, kind }
}

#[test]
fn unbalanced_begin_is_flagged() {
    // Second hw-begin with the first still open.
    let events = [
        ev(10, 0, TraceKind::HwBegin),
        ev(20, 0, TraceKind::HwBegin),
        ev(30, 0, TraceKind::HwCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0].message.contains("hw-begin in state InHw"),
        "got: {}",
        r.violations[0]
    );
}

#[test]
fn commit_without_begin_is_flagged() {
    let events = [ev(10, 0, TraceKind::HwCommit)];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(r.violations[0]
        .message
        .contains("without an open hw attempt"));

    let events = [ev(10, 0, TraceKind::SwCommit)];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(r.violations[0]
        .message
        .contains("without an open sw attempt"));
}

#[test]
fn journal_ending_mid_attempt_is_flagged_unless_truncated() {
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(20, 1, TraceKind::HwBegin),
        ev(30, 1, TraceKind::HwCommit),
    ];
    let r = audit_events(&events, false);
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].cpu, 0);
    assert!(r.violations[0].message.contains("open attempt"));
    // A capped journal legitimately ends mid-stream.
    assert!(audit_events(&events, true).is_clean());
}

#[test]
fn failover_without_preceding_abort_is_flagged() {
    // Failover directly after a *commit* — the driver never does this.
    let events = [
        ev(10, 0, TraceKind::HwBegin),
        ev(20, 0, TraceKind::HwCommit),
        ev(21, 0, TraceKind::Failover(AbortReason::Conflict)),
        ev(25, 0, TraceKind::SwBegin),
        ev(40, 0, TraceKind::SwCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0]
            .message
            .contains("failover not directly after a hw abort"),
        "got: {}",
        r.violations[0]
    );

    // Failover as the journal's very first event: same violation.
    let events = [
        ev(10, 0, TraceKind::Failover(AbortReason::Overflow)),
        ev(15, 0, TraceKind::SwBegin),
        ev(30, 0, TraceKind::SwCommit),
    ];
    assert!(!audit_events(&events, false).is_clean());
}

#[test]
fn overlapping_serial_windows_are_flagged() {
    // CPU 1 opens a serial window while CPU 0 still holds one.
    let events = [
        ev(10, 0, TraceKind::SerialIrrevocable),
        ev(20, 1, TraceKind::SerialIrrevocable),
        ev(30, 0, TraceKind::PlainCommit),
        ev(40, 1, TraceKind::PlainCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert_eq!(r.violations[0].cpu, 1);
    assert!(
        r.violations[0]
            .message
            .contains("while cpu 0 holds the serial-irrevocable window"),
        "got: {}",
        r.violations[0]
    );
}

#[test]
fn hw_commit_inside_serial_window_is_flagged() {
    let events = [
        ev(5, 1, TraceKind::HwBegin),
        ev(10, 0, TraceKind::SerialIrrevocable),
        ev(20, 1, TraceKind::HwCommit),
        ev(30, 0, TraceKind::PlainCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(r.violations[0]
        .message
        .contains("hw-commit while cpu 0 holds the serial-irrevocable window"));
}

#[test]
fn sw_commit_inside_serial_window_is_tolerated() {
    // A software transaction that passed the gate check before the raise
    // and stored its commit after the quiesce poll is a benign, bounded
    // race — the auditor must not flag it.
    let events = [
        ev(5, 1, TraceKind::SwBegin),
        ev(10, 0, TraceKind::SerialIrrevocable),
        ev(20, 1, TraceKind::SwCommit),
        ev(30, 0, TraceKind::PlainCommit),
    ];
    audit_events(&events, false).assert_clean();
}

#[test]
fn escalation_must_be_followed_by_promised_attempt() {
    // Software escalation followed by a hardware attempt: violation.
    let events = [
        ev(
            10,
            0,
            TraceKind::WatchdogEscalation(EscalationTier::Software),
        ),
        ev(20, 0, TraceKind::HwBegin),
        ev(30, 0, TraceKind::HwCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(r.violations[0].message.contains("escalation to software"));

    // Serial escalation honoured: clean.
    let events = [
        ev(10, 0, TraceKind::WatchdogEscalation(EscalationTier::Serial)),
        ev(20, 0, TraceKind::SerialIrrevocable),
        ev(40, 0, TraceKind::PlainCommit),
    ];
    audit_events(&events, false).assert_clean();
}

#[test]
fn fault_postdating_its_driver_event_is_flagged() {
    // The trace() helper drains chaos events *before* recording the
    // driver event they provoked, so a fault stamped later than the next
    // driver event means the drain ordering broke.
    let events = [
        ev(10, 0, TraceKind::HwBegin),
        ev(
            50,
            0,
            TraceKind::FaultInjected(ufotm_machine::ChaosFaultKind::SpuriousAbort),
        ),
        ev(20, 0, TraceKind::HwAbort(AbortReason::Spurious)),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations
            .iter()
            .any(|v| v.message.contains("postdates the driver event")),
        "got: {:?}",
        r.violations
    );
}

#[test]
fn per_cpu_cycle_regression_is_flagged() {
    let events = [
        ev(100, 0, TraceKind::HwBegin),
        ev(90, 0, TraceKind::HwCommit),
    ];
    let r = audit_events(&events, false);
    assert!(!r.is_clean());
    assert!(r.violations[0].message.contains("cycle went backwards"));
}

#[test]
fn durable_commit_missing_its_fence_is_flagged() {
    // Invariant 7: on a persistent run every sw-commit's redo record must
    // have been fenced durable first.
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(80, 0, TraceKind::SwCommit),
    ];
    let r = audit_events_durable(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0]
            .message
            .contains("without its persist fence"),
        "got: {}",
        r.violations[0]
    );
    // The volatile auditor must not apply the durable rule.
    audit_events(&events, false).assert_clean();

    // A fence from a *previous* transaction does not cover this one.
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(30, 0, TraceKind::PersistFence),
        ev(40, 0, TraceKind::SwCommit),
        ev(50, 0, TraceKind::SwBegin),
        ev(90, 0, TraceKind::SwCommit),
    ];
    let r = audit_events_durable(&events, false);
    assert_eq!(r.violations.len(), 1);
    assert!(r.violations[0]
        .message
        .contains("without its persist fence"));
}

#[test]
fn durable_serial_window_without_fence_is_flagged() {
    // Invariant 10: this is exactly the journal shape the pre-refusal
    // driver produced on a persistent machine — a serial-irrevocable
    // escalation committing through plain stores with no redo record,
    // hence no fence. A power failure inside the window would tear the
    // heap unrecoverably, so the durable auditor must reject it.
    let events = [
        ev(10, 0, TraceKind::SerialIrrevocable),
        ev(20, 0, TraceKind::PlainCommit),
    ];
    let r = audit_events_durable(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0]
            .message
            .contains("serial-irrevocable window committed without a persist"),
        "got: {}",
        r.violations[0]
    );
    // The volatile auditor accepts the same journal: without a persist
    // domain the serial path is sound (and was, before this rule).
    audit_events(&events, false).assert_clean();

    // A fence from the *preceding software attempt* does not cover the
    // serial window — it must contain its own.
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(20, 0, TraceKind::PersistFence),
        ev(30, 0, TraceKind::SwCommit),
        ev(40, 0, TraceKind::SerialIrrevocable),
        ev(50, 0, TraceKind::PlainCommit),
    ];
    let r = audit_events_durable(&events, false);
    assert_eq!(r.violations.len(), 1);
    assert!(r.violations[0]
        .message
        .contains("serial-irrevocable window committed without a persist"));

    // A fenced serial window is clean (the legal shape, should the
    // serial path ever grow a durable redo record).
    let events = [
        ev(10, 0, TraceKind::SerialIrrevocable),
        ev(15, 0, TraceKind::PersistFence),
        ev(20, 0, TraceKind::PlainCommit),
    ];
    audit_events_durable(&events, false).assert_clean();
}

#[test]
fn resurrected_transaction_is_flagged() {
    // Invariant 8: cpu 1 cleanly aborted before the crash — recovery must
    // not replay a record for it.
    let events = [
        ev(10, 1, TraceKind::SwBegin),
        ev(20, 1, TraceKind::SwAbort),
        ev(40, 0, TraceKind::PowerFail),
        ev(0, 0, TraceKind::RecoveryReplay(0)),
        ev(0, 1, TraceKind::RecoveryReplay(1)),
    ];
    let r = audit_events_durable(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0].message.contains("resurrect"),
        "got: {}",
        r.violations[0]
    );

    // The legal shape: the replayed cpu was mid-commit when power failed.
    let events = [
        ev(10, 1, TraceKind::SwBegin),
        ev(40, 0, TraceKind::PowerFail),
        ev(0, 0, TraceKind::RecoveryReplay(0)),
        ev(0, 1, TraceKind::RecoveryReplay(1)),
    ];
    audit_events_durable(&events, false).assert_clean();
}

#[test]
fn non_idempotent_recovery_is_flagged() {
    // Invariant 9: two recovery passes over the same durable image must
    // replay the same records.
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(40, 0, TraceKind::PowerFail),
        ev(0, 0, TraceKind::RecoveryReplay(1)),
        ev(5, 0, TraceKind::RecoveryReplay(0)),
    ];
    let r = audit_events_durable(&events, false);
    assert!(!r.is_clean());
    assert!(
        r.violations[0].message.contains("not idempotent"),
        "got: {}",
        r.violations[0]
    );

    // Matching passes are clean.
    let events = [
        ev(10, 0, TraceKind::SwBegin),
        ev(40, 0, TraceKind::PowerFail),
        ev(0, 0, TraceKind::RecoveryReplay(1)),
        ev(5, 0, TraceKind::RecoveryReplay(1)),
    ];
    audit_events_durable(&events, false).assert_clean();
}

#[test]
fn replay_without_a_crash_and_double_crash_are_flagged() {
    let r = audit_events_durable(&[ev(5, 0, TraceKind::RecoveryReplay(0))], false);
    assert!(!r.is_clean());
    assert!(r.violations[0].message.contains("before any power-fail"));

    let events = [
        ev(40, 0, TraceKind::PowerFail),
        ev(5, 1, TraceKind::PowerFail),
    ];
    let r = audit_events_durable(&events, false);
    assert!(!r.is_clean());
    assert!(r
        .violations
        .iter()
        .any(|v| v.message.contains("second power-fail")));
}

#[test]
fn interleaved_cpus_with_failover_chain_audit_clean() {
    // A realistic interleaving: cpu 0 commits in hardware while cpu 1
    // aborts, fails over, and commits in software.
    let events = [
        ev(10, 0, TraceKind::HwBegin),
        ev(12, 1, TraceKind::HwBegin),
        ev(20, 1, TraceKind::HwAbort(AbortReason::Overflow)),
        ev(21, 1, TraceKind::Failover(AbortReason::Overflow)),
        ev(25, 0, TraceKind::HwCommit),
        ev(26, 1, TraceKind::SwBegin),
        ev(90, 1, TraceKind::SwCommit),
    ];
    let r = audit_events(&events, false);
    r.assert_clean();
    assert_eq!(r.txns.len(), 2);
    // Commit order: cpu 0's hw commit at 25, then cpu 1's sw commit at 90.
    assert_eq!(r.txns[0].cpu, 0);
    assert_eq!(r.txns[1].cpu, 1);
    assert_eq!(r.txns[1].attempts, 2);
}
