//! Failure-injection tests: interrupt storms, demand paging, and resource
//! exhaustion must not break atomicity or progress.

use ufotm_core::{SystemKind, TmShared, TmThread};
use ufotm_machine::{AbortReason, Addr, Machine, MachineConfig, SwapConfig};
use ufotm_sim::{Ctx, Sim, ThreadFn};

const COUNTER: Addr = Addr(0);

#[test]
fn interrupt_storm_on_hybrid_still_makes_progress() {
    // A timer quantum short enough to interrupt most transactions; the
    // abort handler classifies interrupts as recoverable and retries.
    let mut cfg = MachineConfig::table4(2);
    cfg.timer_quantum = Some(4_000);
    cfg.costs.interrupt_service = 500;
    let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    let machine = Machine::new(cfg);
    let r = Sim::new(machine, shared).run(
        (0..2)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    for _ in 0..20 {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, COUNTER)?;
                            tx.work(ctx, 1_500)?; // long enough to straddle quanta
                            tx.write(ctx, COUNTER, v + 1)
                        });
                    }
                })
            })
            .collect(),
    );
    assert_eq!(r.machine.peek(COUNTER), 40);
    let agg = r.machine.stats().aggregate();
    assert!(agg.interrupts > 0, "the storm must actually interrupt");
    assert!(
        agg.aborts(AbortReason::Interrupt) > 0,
        "some transactions must have been interrupt-aborted"
    );
    assert_eq!(
        r.shared.stats.failovers.get(&AbortReason::Interrupt),
        None,
        "interrupts are recoverable, never failover triggers"
    );
}

#[test]
fn demand_paging_hybrid_resolves_page_faults_and_commits() {
    let mut cfg = MachineConfig::table4(2);
    cfg.memory_words = 1 << 19; // keep the page count manageable
    let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    let mut machine = Machine::new(cfg);
    machine.enable_swap(SwapConfig {
        max_resident_pages: 64,
    });
    let r = Sim::new(machine, shared).run(
        (0..2)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    // Touch several distinct pages transactionally: the
                    // first touch of each page faults the transaction, the
                    // handler pages it in non-transactionally, the retry
                    // succeeds.
                    for p in 0..6u64 {
                        let a = Addr(4096 * (2 + p) + cpu as u64 * 8);
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, a)?;
                            tx.write(ctx, a, v + 1)
                        });
                    }
                })
            })
            .collect(),
    );
    for p in 0..6u64 {
        for cpu in 0..2u64 {
            assert_eq!(r.machine.peek(Addr(4096 * (2 + p) + cpu * 8)), 1);
        }
    }
    let agg = r.machine.stats().aggregate();
    assert!(
        agg.aborts(AbortReason::PageFault) > 0,
        "transactions must have page-faulted at least once"
    );
    assert!(r.machine.swap_stats().page_ins > 0);
}

#[test]
#[should_panic(expected = "simulated heap exhausted")]
fn heap_exhaustion_panics_loudly() {
    let cfg = MachineConfig::table4(1);
    let mut shared = TmShared::standard(SystemKind::UstmWeak, &cfg);
    // Shrink the heap to almost nothing.
    shared.heap = ufotm_machine::SimAlloc::new(Addr::from_word_index(1 << 20), 16);
    let machine = Machine::new(cfg);
    Sim::new(machine, shared).run(vec![Box::new(|ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(SystemKind::UstmWeak, 0);
        t.install(ctx);
        t.transaction(ctx, |tx, ctx| {
            for _ in 0..10 {
                tx.alloc(ctx, 8)?;
            }
            Ok(())
        });
    }) as ThreadFn<TmShared>]);
}

#[test]
fn paging_plus_interrupts_plus_contention() {
    // Everything at once: a hostile little machine.
    let mut cfg = MachineConfig::table4(3);
    cfg.memory_words = 1 << 19;
    cfg.timer_quantum = Some(8_000);
    let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
    let mut machine = Machine::new(cfg);
    machine.enable_swap(SwapConfig {
        max_resident_pages: 48,
    });
    let r = Sim::new(machine, shared).run(
        (0..3)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    for k in 0..15u64 {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, COUNTER)?;
                            // Wander over a few pages for paging pressure.
                            let a = Addr(4096 * (2 + (k % 5)) + cpu as u64 * 8);
                            let w = tx.read(ctx, a)?;
                            tx.write(ctx, a, w + 1)?;
                            tx.work(ctx, 300)?;
                            tx.write(ctx, COUNTER, v + 1)
                        });
                    }
                })
            })
            .collect(),
    );
    assert_eq!(
        r.machine.peek(COUNTER),
        45,
        "atomicity under combined failure modes"
    );
}
