//! Tx facade behaviour across modes: syscalls, I/O, allocation, mode
//! predicates, and statistics plumbing.

use ufotm_core::{SystemKind, TmShared, TmThread};
use ufotm_machine::{AbortReason, Addr, Machine, MachineConfig};
use ufotm_sim::{Ctx, Sim, SimResult, ThreadFn};

fn run_one(
    kind: SystemKind,
    body: impl FnOnce(&mut TmThread, &mut Ctx<TmShared>) + Send + 'static,
) -> SimResult<TmShared> {
    let mut cfg = MachineConfig::table4(1);
    if kind.needs_unbounded_btm() {
        cfg.btm_unbounded = true;
    }
    let shared = TmShared::standard(kind, &cfg);
    let machine = Machine::new(cfg);
    Sim::new(machine, shared).run(vec![Box::new(move |ctx: &mut Ctx<TmShared>| {
        let mut t = TmThread::new(kind, 0);
        t.install(ctx);
        body(&mut t, ctx);
    }) as ThreadFn<TmShared>])
}

#[test]
fn mode_predicates_match_kind() {
    for (kind, expect_hw) in [
        (SystemKind::UfoHybrid, true),
        (SystemKind::UnboundedHtm, true),
        (SystemKind::UstmStrong, false),
        (SystemKind::Tl2, false),
        (SystemKind::GlobalLock, false),
    ] {
        run_one(kind, move |t, ctx| {
            t.transaction(ctx, |tx, ctx| {
                assert_eq!(tx.in_hardware(), expect_hw, "{kind}");
                assert_eq!(
                    tx.in_software(),
                    matches!(kind, SystemKind::UstmStrong | SystemKind::Tl2),
                    "{kind}"
                );
                tx.read(ctx, Addr(0)).map(|_| ())
            });
        });
    }
}

#[test]
fn syscall_is_free_in_software_modes() {
    for kind in [
        SystemKind::UstmWeak,
        SystemKind::Tl2,
        SystemKind::GlobalLock,
    ] {
        let r = run_one(kind, |t, ctx| {
            t.transaction(ctx, |tx, ctx| {
                tx.write(ctx, Addr(0), 1)?;
                tx.syscall(ctx)?; // idempotent syscall: just a cost here
                tx.write(ctx, Addr(8), 2)
            });
        });
        assert_eq!(r.machine.peek(Addr(0)), 1, "{kind}");
        assert_eq!(r.machine.peek(Addr(8)), 2, "{kind}");
        assert_eq!(
            r.machine.stats().aggregate().aborts(AbortReason::Syscall),
            0,
            "{kind}"
        );
    }
}

#[test]
fn syscall_aborts_hw_and_hybrid_fails_over() {
    let r = run_one(SystemKind::UfoHybrid, |t, ctx| {
        t.transaction(ctx, |tx, ctx| {
            tx.write(ctx, Addr(0), 1)?;
            tx.syscall(ctx)?;
            tx.write(ctx, Addr(8), 2)
        });
    });
    assert_eq!(r.shared.stats.sw_commits, 1);
    assert!(r.machine.stats().aggregate().aborts(AbortReason::Syscall) >= 1);
    assert_eq!(r.machine.peek(Addr(0)), 1);
    assert_eq!(r.machine.peek(Addr(8)), 2);
}

#[test]
fn alloc_free_roundtrip_in_every_mode() {
    for kind in [
        SystemKind::Sequential,
        SystemKind::GlobalLock,
        SystemKind::UstmStrong,
        SystemKind::Tl2,
        SystemKind::UfoHybrid,
        SystemKind::UnboundedHtm,
    ] {
        let r = run_one(kind, |t, ctx| {
            let a = t.transaction(ctx, |tx, ctx| {
                let a = tx.alloc(ctx, 8)?;
                tx.write(ctx, a, 77)?;
                Ok(a)
            });
            let v = t.transaction(ctx, |tx, ctx| {
                let v = tx.read(ctx, a)?;
                tx.free(ctx, a)?;
                Ok(v)
            });
            assert_eq!(v, 77);
        });
        assert_eq!(r.shared.heap.live_allocations(), 0, "{kind}: leak");
    }
}

#[test]
fn work_cycles_are_charged_inside_transactions() {
    let r = run_one(SystemKind::UnboundedHtm, |t, ctx| {
        t.transaction(ctx, |tx, ctx| tx.work(ctx, 12_345));
    });
    assert!(r.makespan >= 12_345);
}

#[test]
fn stats_split_hw_and_sw_commits() {
    let r = run_one(SystemKind::UfoHybrid, |t, ctx| {
        // One clean HW txn, one forced to software.
        t.transaction(ctx, |tx, ctx| tx.write(ctx, Addr(0), 1));
        t.transaction(ctx, |tx, ctx| {
            tx.force_failover(ctx)?;
            tx.write(ctx, Addr(8), 2)
        });
    });
    assert_eq!(r.shared.stats.hw_commits, 1);
    assert_eq!(r.shared.stats.sw_commits, 1);
    assert_eq!(r.shared.stats.forced_failovers, 1);
    assert_eq!(r.shared.stats.total_commits(), 2);
}

#[test]
fn deferred_actions_run_exactly_once_after_commit() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    for kind in [
        SystemKind::UfoHybrid,
        SystemKind::UstmStrong,
        SystemKind::GlobalLock,
    ] {
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let r = run_one(kind, move |t, ctx| {
            t.transaction(ctx, |tx, ctx| {
                let f2 = Arc::clone(&f);
                tx.defer(move || {
                    f2.fetch_add(1, Ordering::SeqCst);
                });
                tx.write(ctx, Addr(0), 1)
            });
        });
        assert_eq!(
            fired.load(Ordering::SeqCst),
            1,
            "{kind}: deferred action count"
        );
        assert_eq!(r.machine.peek(Addr(0)), 1);
    }
}

#[test]
fn deferred_actions_are_dropped_on_aborted_attempts() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // The forced failover kills the hardware attempt; only the (single)
    // software commit fires its deferred action.
    let fired = Arc::new(AtomicU64::new(0));
    let f = Arc::clone(&fired);
    run_one(SystemKind::UfoHybrid, move |t, ctx| {
        t.transaction(ctx, |tx, ctx| {
            let f2 = Arc::clone(&f);
            tx.defer(move || {
                f2.fetch_add(1, Ordering::SeqCst);
            });
            tx.force_failover(ctx)?; // HW attempt dies *after* deferring
            tx.write(ctx, Addr(0), 1)
        });
    });
    assert_eq!(
        fired.load(Ordering::SeqCst),
        1,
        "exactly the committing attempt's deferral fires"
    );
}

#[test]
fn io_in_software_mode_costs_but_commits() {
    let r = run_one(SystemKind::UstmStrong, |t, ctx| {
        t.transaction(ctx, |tx, ctx| {
            tx.io(ctx)?;
            tx.write(ctx, Addr(0), 3)
        });
    });
    assert_eq!(r.machine.peek(Addr(0)), 3);
    assert_eq!(r.shared.stats.sw_commits, 1);
}
