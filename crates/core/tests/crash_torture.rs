//! Crash-recovery torture: power-fail at cycle N, reboot, recover, audit.
//!
//! Every cell of the sweep — seed × fail-point × workload — runs a
//! persistent USTM workload under a fault plan that latches a power
//! failure at a deterministic cycle, then reconstructs the crash:
//!
//! 1. the pre-crash journal is cut out of the trace ([`crashed_journal`]),
//! 2. a fresh machine gets the durable image ([`Machine::install_image`])
//!    and a fresh shared state the crashed run's layout,
//! 3. [`recover_world`] replays the durable redo windows — twice, to prove
//!    recovery idempotent on the live image,
//! 4. the combined crash-plus-recovery journal must satisfy every
//!    durability invariant ([`audit_events_durable`]), and the recovered
//!    heap must be transactionally consistent (all-or-nothing per commit),
//! 5. the run is repeated from the same seed and must latch a bit-identical
//!    durable image and pre-crash journal.
//!
//! A failing seed prints as `CHAOS_SEED=<n>`; `CHAOS_SEEDS=<k>` shrinks
//! the sweep for smoke runs.

use ufotm_core::{
    audit_events_durable, crashed_journal, recover_world, HybridPolicy, RunReport, SystemKind,
    TmShared, TmThread,
};
use ufotm_machine::{Addr, CrashImage, FaultPlan, Machine, MachineConfig, PersistConfig};
use ufotm_sim::{for_each_seed_plan, seed_count, Ctx, Sim, SimResult, ThreadFn};

const COUNTER: Addr = Addr(0);
const CPUS: usize = 3;
const TXNS: u64 = 6;

/// Each committed transaction leaves `slot(cpu) == shadow(cpu)` (distinct
/// cache lines): a torn commit would break the equality.
fn slot(cpu: usize) -> Addr {
    Addr(4096 + cpu as u64 * 256)
}

fn shadow(cpu: usize) -> Addr {
    Addr(16384 + cpu as u64 * 256)
}

/// Eight-line stripe for the wide workload (all words must stay equal).
fn wide(cpu: usize) -> Addr {
    Addr(65536 + cpu as u64 * 4096)
}

const WIDE_LINES: u64 = 8;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Workload {
    /// Contended: every transaction bumps a shared counter plus its own
    /// slot/shadow pair (conflicts, kills, multi-record recovery).
    SharedCounter,
    /// Disjoint: private pairs only (pure commit-protocol coverage).
    PrivatePairs,
    /// Disjoint, wide: eight lines per commit, so the redo record (ten
    /// lines) overflows the persist buffer — evictions make durable
    /// *prefixes*, the source of torn records.
    WideLines,
}

/// A mixed fault background makes the seed dimension real (injected
/// UFO-set retries and nacks shift every cell's timing); the fail-point
/// itself stays deterministic and never consults the injection PRNG.
/// The sweep runs through [`for_each_seed_plan`], which would reject a
/// seed-insensitive plan here (the vacuous-sweep guard).
fn crash_plan(fail_at: u64, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::mixed(seed);
    plan.power_fail_at = Some(fail_at);
    plan
}

fn crash_config(fail_at: u64, seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::table4(CPUS);
    cfg.memory_words = 1 << 19;
    cfg.persist = Some(PersistConfig::default());
    cfg.fault_plan = Some(crash_plan(fail_at, seed));
    cfg
}

/// Runs the workload to completion (ghost execution continues past the
/// latch — the machine keeps the crash image on the side).
fn run_to_crash(cfg: &MachineConfig, workload: Workload) -> SimResult<TmShared> {
    let machine = Machine::new(cfg.clone());
    let mut shared = TmShared::standard(SystemKind::UstmStrong, cfg);
    shared.trace.enable(1 << 16);
    Sim::new(machine, shared).run(
        (0..CPUS)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    // Default policy (no watchdog): USTM's age-ordered
                    // kills guarantee progress on their own. A serial-armed
                    // policy would be safe too — the driver refuses serial
                    // escalation on persistent machines (see
                    // `durable_machine_refuses_serial_escalation`) — but
                    // the sweep keeps the paper's default.
                    let mut t =
                        TmThread::with_policy(SystemKind::UstmStrong, cpu, HybridPolicy::default());
                    t.install(ctx);
                    for _ in 0..TXNS {
                        t.transaction(ctx, |tx, ctx| match workload {
                            Workload::SharedCounter | Workload::PrivatePairs => {
                                let s = tx.read(ctx, slot(cpu))?;
                                tx.work(ctx, 60)?;
                                tx.write(ctx, slot(cpu), s + 1)?;
                                tx.write(ctx, shadow(cpu), s + 1)?;
                                if workload == Workload::SharedCounter {
                                    let v = tx.read(ctx, COUNTER)?;
                                    tx.write(ctx, COUNTER, v + 1)?;
                                }
                                Ok(())
                            }
                            Workload::WideLines => {
                                let base = wide(cpu);
                                let v = tx.read(ctx, base)?;
                                tx.work(ctx, 40)?;
                                for k in 0..WIDE_LINES {
                                    tx.write(ctx, base.add_words(k * 8), v + 1)?;
                                }
                                Ok(())
                            }
                        });
                    }
                })
            })
            .collect(),
    )
}

/// Boots a fresh machine from the durable image with a fresh shared state
/// (software state does not survive a crash). Recovery is not subject to
/// the crashed run's fault schedule.
fn reboot(cfg: &MachineConfig, crash: &CrashImage) -> (Machine, TmShared) {
    let mut cfg2 = cfg.clone();
    cfg2.fault_plan = None;
    let mut m = Machine::new(cfg2.clone());
    m.install_image(crash.words());
    let shared = TmShared::standard(SystemKind::UstmStrong, &cfg2);
    (m, shared)
}

/// The durable heap state the assertions compare: counter plus every
/// slot/shadow pair.
fn heap_snapshot(m: &Machine) -> Vec<u64> {
    let mut out = vec![m.peek(COUNTER)];
    for cpu in 0..CPUS {
        out.push(m.peek(slot(cpu)));
        out.push(m.peek(shadow(cpu)));
        for k in 0..WIDE_LINES {
            out.push(m.peek(wide(cpu).add_words(k * 8)));
        }
    }
    out
}

/// One full crash/recover/audit cell. Returns whether the fail-point
/// actually landed before the run finished.
fn crash_recover_audit(fail_at: u64, seed: u64, workload: Workload, label: &str) -> bool {
    let cfg = crash_config(fail_at, seed);
    let r = run_to_crash(&cfg, workload);
    let Some(crash) = r.machine.crash_image().cloned() else {
        return false; // run finished before the fail-point
    };

    // Reboot and recover — twice: recovery must be a pure, repeatable
    // function of the durable image.
    let mut journal = crashed_journal(&r.shared.trace, &crash);
    let (mut m2, mut shared2) = reboot(&cfg, &crash);
    let rec1 = recover_world(&mut m2, &mut shared2, &mut journal);
    let after_first = heap_snapshot(&m2);
    let rec2 = recover_world(&mut m2, &mut shared2, &mut journal);
    if std::env::var("UFOTM_CRASH_DEBUG").is_ok() {
        eprintln!(
            "{label}: replayed={} torn={}",
            rec1.iter().map(|x| x.replayed_records).sum::<u64>(),
            rec1.iter().filter(|x| x.torn).count()
        );
    }
    for (a, b) in rec1.iter().zip(rec2.iter()) {
        assert_eq!(
            (a.replayed_records, a.replayed_lines, a.torn),
            (b.replayed_records, b.replayed_lines, b.torn),
            "{label}: recovery not idempotent on cpu {}",
            a.cpu
        );
    }
    assert_eq!(
        after_first,
        heap_snapshot(&m2),
        "{label}: second recovery pass changed the heap"
    );

    // The combined crash-plus-recovery journal satisfies every durability
    // invariant: fences before commits, no resurrected transactions,
    // idempotent replay.
    let audit = audit_events_durable(&journal, r.shared.trace.truncated());
    assert!(
        audit.is_clean(),
        "{label}: audit found {} violation(s), e.g. {}",
        audit.violations.len(),
        audit.violations[0],
    );

    // Transactional consistency of the durable heap: commits are
    // all-or-nothing, so every group a transaction writes together is
    // still mutually equal and nothing overshoots.
    match workload {
        Workload::SharedCounter | Workload::PrivatePairs => {
            for cpu in 0..CPUS {
                let s = m2.peek(slot(cpu));
                assert_eq!(
                    s,
                    m2.peek(shadow(cpu)),
                    "{label}: cpu {cpu} pair torn after recovery"
                );
                assert!(s <= TXNS, "{label}: cpu {cpu} slot overshot");
            }
            if workload == Workload::SharedCounter {
                assert!(
                    m2.peek(COUNTER) <= CPUS as u64 * TXNS,
                    "{label}: counter overshot"
                );
            }
        }
        Workload::WideLines => {
            for cpu in 0..CPUS {
                let v = m2.peek(wide(cpu));
                for k in 1..WIDE_LINES {
                    assert_eq!(
                        v,
                        m2.peek(wide(cpu).add_words(k * 8)),
                        "{label}: cpu {cpu} stripe torn at line {k} after recovery"
                    );
                }
                assert!(v <= TXNS, "{label}: cpu {cpu} stripe overshot");
            }
        }
    }

    // Determinism: the same seed latches a bit-identical durable image and
    // journals a bit-identical pre-crash prefix.
    let r2 = run_to_crash(&cfg, workload);
    let crash2 = r2.machine.crash_image().cloned().expect("replay crashed");
    assert_eq!(crash.cycle(), crash2.cycle(), "{label}: crash cycle");
    assert_eq!(crash.cpu(), crash2.cpu(), "{label}: crash cpu");
    assert!(
        crash.words() == crash2.words(),
        "{label}: durable image diverged across replays"
    );
    assert_eq!(
        crashed_journal(&r2.shared.trace, &crash2),
        crashed_journal(&r.shared.trace, &crash),
        "{label}: pre-crash journal diverged across replays"
    );
    true
}

/// The sweep: seeds × fail-points × workloads. Fail-points span the run —
/// early (mid first transactions), middle, and late; a cell whose run
/// finishes before its fail-point still checks that the sweep as a whole
/// crashed somewhere.
#[test]
fn power_fail_sweep_recovers_consistently() {
    let seeds = seed_count(8);
    let mut crashed_cells = 0u64;
    for workload in [
        Workload::SharedCounter,
        Workload::PrivatePairs,
        Workload::WideLines,
    ] {
        for fail_at in [1_000, 8_000, 30_000, 90_000] {
            for_each_seed_plan(
                0,
                seeds,
                |seed| crash_plan(fail_at, seed),
                |seed, _plan| {
                    let label = format!("{workload:?}/fail@{fail_at}/seed {seed}");
                    if crash_recover_audit(fail_at, seed, workload, &label) {
                        crashed_cells += 1;
                    }
                },
            );
        }
    }
    assert!(
        crashed_cells > 0,
        "no cell crashed: fail-points all landed past the makespan"
    );
}

/// The watchdog's serial tier is refused on persistent machines: the
/// serial path commits through plain stores with no redo record, so the
/// driver caps out at the software tier, counts each refusal, and the
/// run still completes and audits durably clean (invariant 10 included).
/// The same workload and policy on a volatile machine *does* escalate —
/// proving the persist gate, not the workload, is what changed.
#[test]
fn durable_machine_refuses_serial_escalation() {
    // A hair-trigger serial tier: the first software kill escalates.
    let policy = HybridPolicy {
        watchdog_sw_kills: Some(1),
        ..HybridPolicy::watchdog()
    };
    let run = |persist: bool| {
        let mut cfg = MachineConfig::table4(CPUS);
        cfg.memory_words = 1 << 19;
        cfg.persist = persist.then(PersistConfig::default);
        let machine = Machine::new(cfg.clone());
        let mut shared = TmShared::standard(SystemKind::UstmStrong, &cfg);
        shared.trace.enable(1 << 16);
        Sim::new(machine, shared).run(
            (0..CPUS)
                .map(|cpu| -> ThreadFn<TmShared> {
                    Box::new(move |ctx: &mut Ctx<TmShared>| {
                        let mut t = TmThread::with_policy(SystemKind::UstmStrong, cpu, policy);
                        t.install(ctx);
                        for _ in 0..TXNS {
                            t.transaction(ctx, |tx, ctx| {
                                let v = tx.read(ctx, COUNTER)?;
                                tx.work(ctx, 120)?;
                                tx.write(ctx, COUNTER, v + 1)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect(),
        )
    };

    let durable = run(true);
    assert_eq!(durable.machine.peek(COUNTER), CPUS as u64 * TXNS);
    let report = RunReport::collect(0, &durable.machine, &durable.shared);
    // The durable audit (invariant 10: serial windows must be fenced or
    // refused) is clean because no serial window ever opened.
    report.assert_audit_clean();
    assert_eq!(
        report.hybrid.serial_commits, 0,
        "a persistent machine must never commit serial-irrevocably"
    );
    assert!(
        report.hybrid.durable_serial_refusals > 0,
        "the refusal must be counted, not silent"
    );

    let volatile = run(false);
    assert_eq!(volatile.machine.peek(COUNTER), CPUS as u64 * TXNS);
    let vreport = RunReport::collect(0, &volatile.machine, &volatile.shared);
    vreport.assert_audit_clean();
    assert!(
        vreport.hybrid.serial_commits > 0,
        "the workload must provoke serial escalation on a volatile \
         machine, or this test proves nothing about the refusal"
    );
    assert_eq!(vreport.hybrid.durable_serial_refusals, 0);
}

/// A run whose fail-point lands past the makespan never latches: the
/// persistent machine completes normally, every commit fenced its redo
/// record, and the full journal passes the durable audit.
#[test]
fn uncrashed_persistent_run_is_durably_clean() {
    let cfg = crash_config(u64::MAX, 7);
    let r = run_to_crash(&cfg, Workload::SharedCounter);
    assert!(r.machine.crash_image().is_none());
    assert_eq!(r.machine.peek(COUNTER), CPUS as u64 * TXNS);
    let report = RunReport::collect(7, &r.machine, &r.shared);
    report.assert_audit_clean();
    assert_eq!(report.ustm.redo_records, CPUS as u64 * TXNS);
    assert!(report.persist.fences >= 3 * CPUS as u64 * TXNS);

    // CI artifact: with UFOTM_REPORT_DIR set, emit one crashed cell's full
    // report (the crash-torture job uploads it — see
    // .github/workflows/ci.yml).
    if let Ok(dir) = std::env::var("UFOTM_REPORT_DIR") {
        let cfg = crash_config(8_000, 7);
        let crashed = run_to_crash(&cfg, Workload::SharedCounter);
        let report = RunReport::collect(7, &crashed.machine, &crashed.shared);
        std::fs::create_dir_all(&dir).expect("report dir");
        std::fs::write(
            std::path::Path::new(&dir).join("BENCH_crash_recovery.json"),
            report.to_json(),
        )
        .expect("write crash recovery report");
    }
}
