//! Multi-seed test harness: every randomized test sweeps seeds through
//! [`for_each_seed`] so a red run always prints the seed that broke it and
//! `CHAOS_SEED=<n>` replays exactly that schedule.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use ufotm_machine::FaultPlan;

/// Environment variable that pins a sweep to a single seed.
pub const SEED_ENV: &str = "CHAOS_SEED";

/// Environment variable that overrides how many seeds a sweep runs
/// (see [`seed_count`]).
pub const SEED_COUNT_ENV: &str = "CHAOS_SEEDS";

/// Number of seeds a sweep should run: `CHAOS_SEEDS` if set, else
/// `default`. CI smoke jobs set a small count; nightly/soak runs raise it.
#[must_use]
pub fn seed_count(default: u64) -> u64 {
    match std::env::var(SEED_COUNT_ENV) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_COUNT_ENV}={v} is not a number")),
        Err(_) => default,
    }
}

/// Runs `body(seed)` for `count` seeds starting at `base`.
///
/// If any iteration panics, the failing seed is printed as
/// `CHAOS_SEED=<n>` before the panic propagates, so the failure replays
/// with `CHAOS_SEED=<n> cargo test <name>`. Setting `CHAOS_SEED` runs only
/// that seed (ignoring `base`/`count`).
///
/// # Panics
///
/// Re-raises the body's panic; also panics if `CHAOS_SEED` is set but not
/// a number.
pub fn for_each_seed<F: FnMut(u64)>(base: u64, count: u64, mut body: F) {
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed = v
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_ENV}={v} is not a number"));
        eprintln!("[seed-sweep] replaying pinned {SEED_ENV}={seed}");
        body(seed);
        return;
    }
    for seed in base..base + count {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!("[seed-sweep] FAILED at seed {seed}; replay with {SEED_ENV}={seed}");
            resume_unwind(payload);
        }
    }
}

/// [`for_each_seed`] for sweeps whose randomness comes from a
/// [`FaultPlan`]: builds `make_plan(seed)` for each seed and runs
/// `body(seed, plan)`.
///
/// Guards against the *vacuous sweep* bug: a multi-seed sweep over a plan
/// that ignores its seed (e.g. [`FaultPlan::quiet`], whose seed is never
/// consulted because every injection rate is zero) runs the identical
/// cell `count` times while looking like coverage. The guard accepts a
/// sweep iff the plan is seed-sensitive **or** the plan itself varies
/// with the seed in some other field (e.g. a seed-derived
/// `power_fail_at`), and panics up front otherwise. Single-seed sweeps
/// are exempt — one quiet control cell is legitimate.
///
/// # Panics
///
/// Panics when `count > 1` and `make_plan` produces seed-insensitive,
/// seed-independent plans; re-raises `body` panics like
/// [`for_each_seed`].
pub fn for_each_seed_plan<F: FnMut(u64, FaultPlan)>(
    base: u64,
    count: u64,
    make_plan: impl Fn(u64) -> FaultPlan,
    mut body: F,
) {
    if count > 1 {
        let mut a = make_plan(base);
        let sensitive = a.seed_sensitive();
        let mut b = make_plan(base.wrapping_add(1));
        a.seed = 0;
        b.seed = 0;
        assert!(
            sensitive || a != b,
            "vacuous seed sweep: the fault plan ignores its seed (every \
             injection rate is zero and no other field varies with the \
             seed), so all {count} seeds would run the identical cell — \
             use a seed-sensitive plan (e.g. FaultPlan::mixed) or a \
             single-seed control run"
        );
    }
    for_each_seed(base, count, |seed| body(seed, make_plan(seed)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_every_seed_in_order() {
        let mut seen = Vec::new();
        for_each_seed(10, 5, |s| seen.push(s));
        assert_eq!(seen, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn failing_seed_propagates_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            for_each_seed(0, 8, |s| assert_ne!(s, 3, "boom at seed 3"));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn vacuous_quiet_sweep_is_rejected() {
        // Multi-seed sweep over `quiet`: every cell identical — caught.
        let r = catch_unwind(AssertUnwindSafe(|| {
            for_each_seed_plan(0, 4, FaultPlan::quiet, |_, _| {});
        }));
        let msg = *r
            .expect_err("vacuous sweep must panic")
            .downcast::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("vacuous seed sweep"), "got: {msg}");
    }

    #[test]
    fn seed_sensitive_and_seed_varying_sweeps_run() {
        // An injecting plan: the seed drives the PRNG, sweep is real.
        let mut seen = Vec::new();
        for_each_seed_plan(5, 3, FaultPlan::mixed, |seed, plan| {
            assert_eq!(plan.seed, seed);
            seen.push(seed);
        });
        assert_eq!(seen, vec![5, 6, 7]);

        // A quiet plan whose fail-point varies with the seed: no PRNG
        // use, but the cells still differ — accepted.
        let mut cells = 0;
        for_each_seed_plan(
            0,
            3,
            |seed| {
                let mut p = FaultPlan::quiet(seed);
                p.power_fail_at = Some(1_000 + seed * 500);
                p
            },
            |_, plan| {
                assert!(plan.power_fail_at.is_some());
                cells += 1;
            },
        );
        assert_eq!(cells, 3);

        // A single quiet cell is a legitimate control arm.
        let mut ran = false;
        for_each_seed_plan(9, 1, FaultPlan::quiet, |seed, _| {
            assert_eq!(seed, 9);
            ran = true;
        });
        assert!(ran);
    }
}
