//! Multi-seed test harness: every randomized test sweeps seeds through
//! [`for_each_seed`] so a red run always prints the seed that broke it and
//! `CHAOS_SEED=<n>` replays exactly that schedule.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Environment variable that pins a sweep to a single seed.
pub const SEED_ENV: &str = "CHAOS_SEED";

/// Environment variable that overrides how many seeds a sweep runs
/// (see [`seed_count`]).
pub const SEED_COUNT_ENV: &str = "CHAOS_SEEDS";

/// Number of seeds a sweep should run: `CHAOS_SEEDS` if set, else
/// `default`. CI smoke jobs set a small count; nightly/soak runs raise it.
#[must_use]
pub fn seed_count(default: u64) -> u64 {
    match std::env::var(SEED_COUNT_ENV) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_COUNT_ENV}={v} is not a number")),
        Err(_) => default,
    }
}

/// Runs `body(seed)` for `count` seeds starting at `base`.
///
/// If any iteration panics, the failing seed is printed as
/// `CHAOS_SEED=<n>` before the panic propagates, so the failure replays
/// with `CHAOS_SEED=<n> cargo test <name>`. Setting `CHAOS_SEED` runs only
/// that seed (ignoring `base`/`count`).
///
/// # Panics
///
/// Re-raises the body's panic; also panics if `CHAOS_SEED` is set but not
/// a number.
pub fn for_each_seed<F: FnMut(u64)>(base: u64, count: u64, mut body: F) {
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed = v
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_ENV}={v} is not a number"));
        eprintln!("[seed-sweep] replaying pinned {SEED_ENV}={seed}");
        body(seed);
        return;
    }
    for seed in base..base + count {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!("[seed-sweep] FAILED at seed {seed}; replay with {SEED_ENV}={seed}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_every_seed_in_order() {
        let mut seen = Vec::new();
        for_each_seed(10, 5, |s| seen.push(s));
        assert_eq!(seen, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn failing_seed_propagates_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            for_each_seed(0, 8, |s| assert_ne!(s, 3, "boom at seed 3"));
        }));
        assert!(r.is_err());
    }
}
