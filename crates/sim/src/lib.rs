//! # `ufotm-sim` — the deterministic lockstep execution engine
//!
//! The paper evaluates its TM systems on a multiprocessor timing simulator.
//! This crate provides the execution-engine half of that substitution: it
//! runs one *logical thread* per simulated CPU and interleaves them
//! **deterministically** by always letting the unfinished thread with the
//! smallest `(local clock, cpu id)` execute the next operation against the
//! shared [`World`] (the [`Machine`](ufotm_machine::Machine) plus
//! software-shared state such as an STM's ownership table).
//!
//! Logical threads are backed by OS threads parked on private condvars, so
//! workload code is written as ordinary straight-line Rust — no hand-rolled
//! state machines — while the simulation stays single-threaded in effect:
//! exactly one logical thread touches the `World` at a time, and which one
//! is a pure function of the simulated clocks. Simulated time is therefore
//! reproducible on any host, including a single-core one.
//!
//! Host-side, the engine hands off *targeted*: the scheduler tracks waiting
//! threads in a min-clock heap and wakes exactly the next designated runner
//! ([`HandoffMode::Targeted`]); a runner inside its batching `limit`
//! executes operations without touching the scheduler lock at all. The
//! legacy thundering-herd wakeup is kept as [`HandoffMode::Broadcast`] — a
//! determinism oracle and performance baseline. See `docs/PERF.md`.
//!
//! ```
//! use ufotm_machine::{Machine, MachineConfig, Addr};
//! use ufotm_sim::Sim;
//!
//! let machine = Machine::new(MachineConfig::small(2));
//! let result = Sim::new(machine, ()).run(vec![
//!     Box::new(|ctx| {
//!         ctx.store(Addr::from_word_index(0), 1).unwrap();
//!     }),
//!     Box::new(|ctx| {
//!         ctx.work(5).unwrap();
//!     }),
//! ]);
//! assert!(result.makespan > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod engine;
mod seeds;

pub use ctx::Ctx;
pub use engine::{HandoffMode, Sim, SimResult, ThreadFn, World};
pub use seeds::{for_each_seed, for_each_seed_plan, seed_count, SEED_COUNT_ENV, SEED_ENV};

/// Re-exported so seed-sweep tests can derive per-seed randomness without
/// depending on `ufotm-machine` directly.
pub use ufotm_machine::SimRng;
