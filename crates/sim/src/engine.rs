//! The lockstep scheduler.
//!
//! # Fast-path design
//!
//! The engine keeps two locks instead of one:
//!
//! * `world` — the simulated machine plus software-shared state. Only the
//!   *designated runner* (the unfinished thread with the smallest
//!   `(clock, id)`) ever locks it, so in the targeted mode acquisition is a
//!   single uncontended atomic exchange — no syscalls, no contention.
//! * `sched` — the scheduler bookkeeping (who runs next). It is touched
//!   only at *handoff* (when the runner's clock passes its `limit`), not on
//!   every operation: a runner that stays within its limit executes
//!   back-to-back operations against the world without re-locking the
//!   scheduler at all.
//!
//! Handoff is *targeted*: the runner pushes its new clock into a min-heap of
//! waiting threads, pops the next `(clock, id)` minimum, and wakes exactly
//! that thread on its private condvar. The legacy broadcast behaviour
//! (`notify_all` of every simulated CPU per handoff) is preserved behind
//! [`HandoffMode::Broadcast`] as a determinism oracle and performance
//! reference — both modes execute operations in the identical order, because
//! the schedule is a pure function of the simulated clocks (see
//! `docs/PERF.md` for the full argument).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};

use ufotm_machine::Machine;

use crate::ctx::Ctx;

/// Everything a logical thread can touch: the simulated hardware plus
/// software-shared state (e.g. an STM's ownership table and transaction
/// descriptors). Exactly one logical thread holds the `World` at a time.
#[derive(Debug)]
pub struct World<U> {
    /// The simulated machine.
    pub machine: Machine,
    /// Software-shared state, chosen by the harness.
    pub shared: U,
}

/// A logical thread body. It receives a [`Ctx`] bound to its CPU.
pub type ThreadFn<U> = Box<dyn FnOnce(&mut Ctx<U>) + Send>;

/// How the engine wakes the next designated runner at a handoff.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HandoffMode {
    /// Wake exactly the next designated runner on its private condvar, and
    /// let a runner inside its limit skip the scheduler lock entirely.
    #[default]
    Targeted,
    /// The legacy engine's behaviour: take the scheduler lock on every
    /// operation and wake *every* simulated CPU at each handoff. Kept as a
    /// bit-for-bit determinism oracle and as the baseline the handoff
    /// micro-benchmark measures against. Simulated results are identical in
    /// both modes.
    Broadcast,
}

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult<U> {
    /// The machine in its final state (clocks, caches, stats).
    pub machine: Machine,
    /// The final software-shared state.
    pub shared: U,
    /// Simulated completion time: the maximum local clock over the CPUs
    /// that ran a thread.
    pub makespan: u64,
    /// Final per-CPU clocks for the CPUs that ran threads.
    pub finish_times: Vec<u64>,
}

/// Sentinel for "no designated runner" (all threads finished).
const NONE: usize = usize::MAX;

/// Scheduler bookkeeping. Unlike the legacy engine this never reads the
/// machine's clocks: the clock of a thread entering the wait-set is carried
/// into [`Sched::handoff`] by the thread itself, so the scheduler state is
/// self-contained and every query is O(log threads).
pub(crate) struct Sched {
    /// The designated runner ([`NONE`] once every thread finished).
    pub current: usize,
    /// `current` may keep executing while its clock is ≤ `limit`.
    pub limit: u64,
    pub done: Vec<bool>,
    /// Min-heap of `(clock, id)` for threads that are waiting their turn.
    /// Entries of finished threads go stale and are skipped lazily; a live
    /// thread has exactly one entry while it is not `current`.
    waiting: BinaryHeap<Reverse<(u64, usize)>>,
    quantum: u64,
}

impl Sched {
    fn new(threads: usize, quantum: u64) -> Self {
        let mut s = Sched {
            current: NONE,
            limit: 0,
            done: vec![false; threads],
            waiting: (0..threads).map(|t| Reverse((0, t))).collect(),
            quantum,
        };
        // Initial designation: thread 0 (all clocks are 0; ties break by id).
        if let Some((_, first)) = s.pop_min() {
            s.current = first;
            s.limit = s.next_limit();
        }
        s
    }

    /// Pops the minimum `(clock, id)` live entry, discarding stale ones.
    fn pop_min(&mut self) -> Option<(u64, usize)> {
        while let Some(Reverse((clock, t))) = self.waiting.pop() {
            if !self.done[t] {
                return Some((clock, t));
            }
        }
        None
    }

    /// The smallest waiting clock (discarding stale top entries), which
    /// bounds how long the new runner may batch. A stale-but-not-yet-marked
    /// entry can only make this *smaller* than necessary, which causes an
    /// extra (harmless, order-preserving) handoff — never a missed one.
    fn next_limit(&mut self) -> u64 {
        loop {
            match self.waiting.peek() {
                Some(&Reverse((_, t))) if self.done[t] => {
                    self.waiting.pop();
                }
                Some(&Reverse((clock, _))) => {
                    return clock.saturating_add(self.quantum);
                }
                None => return u64::MAX,
            }
        }
    }

    /// Re-designates after the runner `me` (whose clock is now `now`)
    /// exceeded its limit. Returns the new designated runner, which may be
    /// `me` again (still the minimum). O(log threads).
    pub fn handoff(&mut self, me: usize, now: u64) -> usize {
        debug_assert_eq!(self.current, me);
        self.waiting.push(Reverse((now, me)));
        let (_, next) = self.pop_min().expect("the runner itself is live");
        self.current = next;
        self.limit = self.next_limit();
        next
    }

    /// Re-designates after the runner finished (it contributes no entry).
    /// Returns the new runner, or `None` when every thread is done.
    fn handoff_from_finished(&mut self) -> Option<usize> {
        match self.pop_min() {
            Some((_, next)) => {
                self.current = next;
                self.limit = self.next_limit();
                Some(next)
            }
            None => {
                self.current = NONE;
                None
            }
        }
    }
}

pub(crate) struct Shared<U> {
    pub world: Mutex<World<U>>,
    pub sched: Mutex<Sched>,
    /// One condvar per logical thread, all paired with the `sched` mutex.
    /// Targeted handoff wakes exactly `cvs[next]`.
    pub cvs: Vec<Condvar>,
    pub mode: HandoffMode,
    /// Watchdog: panic if any CPU's clock passes this (None = unlimited).
    pub cycle_limit: Option<u64>,
}

impl<U> Shared<U> {
    /// Wakes the new designated runner (or, in broadcast mode, everyone).
    pub fn wake(&self, next: usize) {
        match self.mode {
            HandoffMode::Targeted => {
                self.cvs[next].notify_one();
            }
            HandoffMode::Broadcast => {
                for cv in &self.cvs {
                    cv.notify_all();
                }
            }
        }
    }
}

/// Marks a logical thread finished on drop (panic-safe).
struct FinishGuard<'a, U> {
    cpu: usize,
    shared: &'a Arc<Shared<U>>,
}

impl<U> Drop for FinishGuard<'_, U> {
    fn drop(&mut self) {
        // If the sched mutex is poisoned the whole simulation is unwinding;
        // the bookkeeping no longer matters.
        if let Ok(mut sched) = self.shared.sched.lock() {
            if !sched.done[self.cpu] {
                sched.done[self.cpu] = true;
                if sched.current == self.cpu {
                    // The finishing thread was designated: hand off now and
                    // wake exactly the new runner. (A finished thread that
                    // is *not* designated leaves only a stale heap entry,
                    // which the next handoff skips.)
                    if let Some(next) = sched.handoff_from_finished() {
                        drop(sched);
                        self.shared.wake(next);
                    }
                }
            }
        }
    }
}

/// A configured simulation, ready to [`run`](Sim::run).
pub struct Sim<U> {
    machine: Machine,
    shared: U,
    quantum: u64,
    cycle_limit: Option<u64>,
    mode: HandoffMode,
}

impl<U: Send> Sim<U> {
    /// Creates a simulation over `machine` with software-shared state
    /// `shared`.
    pub fn new(machine: Machine, shared: U) -> Self {
        Sim {
            machine,
            shared,
            quantum: 0,
            cycle_limit: None,
            mode: HandoffMode::Targeted,
        }
    }

    /// Sets the scheduling quantum: how many cycles past the next thread's
    /// clock the current runner may batch before handing off. 0 (the
    /// default) is exact lockstep; small values (~50) trade a little
    /// interleaving fidelity for host speed. Determinism is preserved for
    /// any value.
    #[must_use]
    pub fn quantum(mut self, cycles: u64) -> Self {
        self.quantum = cycles;
        self
    }

    /// Selects the handoff wakeup strategy (default
    /// [`HandoffMode::Targeted`]). Simulated results are bit-identical in
    /// either mode; [`HandoffMode::Broadcast`] exists as the determinism
    /// oracle and performance baseline.
    #[must_use]
    pub fn handoff_mode(mut self, mode: HandoffMode) -> Self {
        self.mode = mode;
        self
    }

    /// Arms a watchdog: the simulation panics (with the offending CPU and
    /// clock) if any CPU's local clock exceeds `cycles`. Deadlocks and
    /// livelocks in transactional protocols otherwise present as silent
    /// infinite stall loops; a generous cap turns them into loud failures.
    #[must_use]
    pub fn cycle_limit(mut self, cycles: u64) -> Self {
        self.cycle_limit = Some(cycles);
        self
    }

    /// Runs one logical thread per entry of `threads` (thread `i` on CPU
    /// `i`) to completion and returns the final world and timing.
    ///
    /// # Panics
    ///
    /// Panics if more threads are supplied than the machine has CPUs, or if
    /// a thread body panics.
    pub fn run(self, threads: Vec<ThreadFn<U>>) -> SimResult<U> {
        let n = threads.len();
        assert!(
            n <= self.machine.cpus(),
            "{} threads but only {} CPUs",
            n,
            self.machine.cpus()
        );
        if n == 0 {
            return SimResult {
                makespan: 0,
                finish_times: Vec::new(),
                machine: self.machine,
                shared: self.shared,
            };
        }
        let shared = Arc::new(Shared {
            world: Mutex::new(World {
                machine: self.machine,
                shared: self.shared,
            }),
            sched: Mutex::new(Sched::new(n, self.quantum)),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            mode: self.mode,
            cycle_limit: self.cycle_limit,
        });

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (cpu, body) in threads.into_iter().enumerate() {
                let sh = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    // The guard marks this logical thread done even if the
                    // body panics, so the other threads are not left waiting
                    // for a turn that never comes and the panic propagates
                    // cleanly through join. (Declared first: it drops after
                    // the Ctx.)
                    let _guard = FinishGuard { cpu, shared: &sh };
                    let mut ctx = Ctx::new(cpu, Arc::clone(&sh));
                    body(&mut ctx);
                }));
            }
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                if let Err(e) = h.join() {
                    panic.get_or_insert(e);
                }
            }
            if let Some(e) = panic {
                std::panic::resume_unwind(e);
            }
        });

        let world = Arc::into_inner(shared)
            .expect("all thread handles joined")
            .world
            .into_inner()
            .expect("engine mutex not poisoned");
        let clocks = world.machine.clocks();
        let finish_times: Vec<u64> = clocks[..n].to_vec();
        let makespan = finish_times.iter().copied().max().unwrap_or(0);
        SimResult {
            makespan,
            finish_times,
            machine: world.machine,
            shared: world.shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Addr, MachineConfig};

    fn machine(cpus: usize) -> Machine {
        Machine::new(MachineConfig::small(cpus))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let r = Sim::new(machine(1), 0u64).run(vec![Box::new(|ctx| {
            ctx.work(100).unwrap();
            ctx.with(|w| w.shared = 7);
        })]);
        assert_eq!(r.shared, 7);
        assert_eq!(r.makespan, 100);
    }

    #[test]
    fn threads_interleave_by_clock() {
        // Thread 1 only observes values written at earlier simulated times.
        let r = Sim::new(machine(2), Vec::<(usize, u64)>::new()).run(vec![
            Box::new(|ctx| {
                for _ in 0..10 {
                    ctx.work(10).unwrap();
                    let now = ctx.now();
                    ctx.with(move |w| w.shared.push((0, now)));
                }
            }),
            Box::new(|ctx| {
                for _ in 0..10 {
                    ctx.work(10).unwrap();
                    let now = ctx.now();
                    ctx.with(move |w| w.shared.push((1, now)));
                }
            }),
        ]);
        // Events must be sorted by simulated time.
        let times: Vec<u64> = r.shared.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "events out of simulated-time order: {:?}",
            r.shared
        );
        assert_eq!(r.shared.len(), 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            Sim::new(machine(4), Vec::<usize>::new()).run(
                (0..4)
                    .map(|i| -> ThreadFn<Vec<usize>> {
                        Box::new(move |ctx| {
                            for k in 0..20 {
                                ctx.work(7 + ((i * 13 + k) % 5) as u64).unwrap();
                                ctx.with(move |w| w.shared.push(i));
                            }
                        })
                    })
                    .collect(),
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.shared, b.shared);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.finish_times, b.finish_times);
    }

    #[test]
    fn broadcast_mode_matches_targeted_mode() {
        // The legacy-semantics oracle: both wakeup strategies must produce
        // the identical interleaving, timing, and final state.
        let run_with = |mode: HandoffMode| {
            Sim::new(machine(4), Vec::<(usize, u64)>::new())
                .handoff_mode(mode)
                .run(
                    (0..4)
                        .map(|i| -> ThreadFn<Vec<(usize, u64)>> {
                            Box::new(move |ctx| {
                                for k in 0..25 {
                                    ctx.work(3 + ((i * 7 + k) % 11) as u64).unwrap();
                                    let now = ctx.now();
                                    ctx.with(move |w| w.shared.push((i, now)));
                                }
                            })
                        })
                        .collect(),
                )
        };
        let t = run_with(HandoffMode::Targeted);
        let b = run_with(HandoffMode::Broadcast);
        assert_eq!(t.shared, b.shared);
        assert_eq!(t.makespan, b.makespan);
        assert_eq!(t.finish_times, b.finish_times);
    }

    #[test]
    fn unequal_thread_lengths_finish_cleanly() {
        let r = Sim::new(machine(3), ()).run(vec![
            Box::new(|ctx| ctx.work(5).unwrap()),
            Box::new(|ctx| ctx.work(5000).unwrap()),
            Box::new(|ctx| {
                for _ in 0..100 {
                    ctx.work(3).unwrap();
                }
            }),
        ]);
        assert_eq!(r.makespan, 5000);
        assert_eq!(r.finish_times, vec![5, 5000, 300]);
    }

    #[test]
    fn quantum_preserves_determinism() {
        let run_with = |q: u64| {
            Sim::new(machine(2), Vec::<(usize, u64)>::new())
                .quantum(q)
                .run(vec![
                    Box::new(|ctx| {
                        for _ in 0..50 {
                            ctx.work(4).unwrap();
                            let now = ctx.now();
                            ctx.with(move |w| w.shared.push((0, now)));
                        }
                    }),
                    Box::new(|ctx| {
                        for _ in 0..50 {
                            ctx.work(6).unwrap();
                            let now = ctx.now();
                            ctx.with(move |w| w.shared.push((1, now)));
                        }
                    }),
                ])
        };
        assert_eq!(run_with(25).shared, run_with(25).shared);
        // Makespan is independent of the quantum (it only batches host-side).
        assert_eq!(run_with(0).makespan, run_with(25).makespan);
    }

    #[test]
    fn machine_ops_work_through_ctx() {
        let a = Addr::from_word_index(5);
        let r = Sim::new(machine(2), ()).run(vec![
            Box::new(move |ctx| {
                ctx.store(a, 41).unwrap();
            }),
            Box::new(move |ctx| {
                ctx.work(10_000).unwrap(); // run well after thread 0
                let v = ctx.load(a).unwrap();
                assert_eq!(v, 41);
            }),
        ]);
        assert_eq!(r.machine.peek(a), 41);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let r = Sim::new(machine(1), 3u32).run(Vec::new());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.shared, 3);
    }

    #[test]
    #[should_panic(expected = "CPUs")]
    fn too_many_threads_panics() {
        let bodies: Vec<ThreadFn<()>> = (0..3)
            .map(|_| -> ThreadFn<()> { Box::new(|_| {}) })
            .collect();
        Sim::new(machine(2), ()).run(bodies);
    }

    #[test]
    #[should_panic(expected = "workload bug")]
    fn body_panic_propagates_without_deadlocking() {
        // The panicking thread must not leave its peers waiting forever;
        // the panic resurfaces from Sim::run.
        Sim::new(machine(2), ()).run(vec![
            Box::new(|ctx| {
                // Runs plenty of ops while (and after) the other panics.
                for _ in 0..50 {
                    ctx.work(10).unwrap();
                }
            }),
            Box::new(|ctx| {
                ctx.work(25).unwrap();
                panic!("workload bug");
            }),
        ]);
    }

    #[test]
    #[should_panic(expected = "cycle limit exceeded")]
    fn cycle_limit_converts_livelock_into_panic() {
        // An endless stall loop (a protocol livelock in miniature) trips
        // the watchdog instead of hanging the host.
        Sim::new(machine(1), ())
            .cycle_limit(10_000)
            .run(vec![Box::new(|ctx| loop {
                ctx.stall(100).unwrap();
            })]);
    }

    #[test]
    fn cycle_limit_does_not_fire_under_the_cap() {
        let r = Sim::new(machine(2), ()).cycle_limit(1_000_000).run(vec![
            Box::new(|ctx| ctx.work(500).unwrap()),
            Box::new(|ctx| ctx.work(700).unwrap()),
        ]);
        assert_eq!(r.makespan, 700);
    }

    #[test]
    fn peers_finish_even_if_one_panics_mid_run() {
        let r = std::panic::catch_unwind(|| {
            Sim::new(machine(3), Vec::<usize>::new()).run(vec![
                Box::new(|ctx| {
                    for _ in 0..100 {
                        ctx.work(5).unwrap();
                    }
                    ctx.with(|w| w.shared.push(0));
                }),
                Box::new(|ctx| {
                    ctx.work(3).unwrap();
                    panic!("boom");
                }),
                Box::new(|ctx| {
                    for _ in 0..100 {
                        ctx.work(7).unwrap();
                    }
                    ctx.with(|w| w.shared.push(2));
                }),
            ])
        });
        assert!(r.is_err(), "panic must propagate");
    }

    #[test]
    fn broadcast_mode_survives_peer_panic() {
        // The legacy mode shares the panic-recovery path: the finishing
        // guard hands off even when the designated runner died.
        let r = std::panic::catch_unwind(|| {
            Sim::new(machine(2), ())
                .handoff_mode(HandoffMode::Broadcast)
                .run(vec![
                    Box::new(|ctx| {
                        for _ in 0..50 {
                            ctx.work(10).unwrap();
                        }
                    }),
                    Box::new(|ctx| {
                        ctx.work(25).unwrap();
                        panic!("broadcast bug");
                    }),
                ])
        });
        assert!(r.is_err(), "panic must propagate");
    }
}
