//! The lockstep scheduler.

use std::sync::{Arc, Condvar, Mutex};

use ufotm_machine::Machine;

use crate::ctx::Ctx;

/// Everything a logical thread can touch: the simulated hardware plus
/// software-shared state (e.g. an STM's ownership table and transaction
/// descriptors). Exactly one logical thread holds the `World` at a time.
#[derive(Debug)]
pub struct World<U> {
    /// The simulated machine.
    pub machine: Machine,
    /// Software-shared state, chosen by the harness.
    pub shared: U,
}

/// A logical thread body. It receives a [`Ctx`] bound to its CPU.
pub type ThreadFn<U> = Box<dyn FnOnce(&mut Ctx<U>) + Send>;

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult<U> {
    /// The machine in its final state (clocks, caches, stats).
    pub machine: Machine,
    /// The final software-shared state.
    pub shared: U,
    /// Simulated completion time: the maximum local clock over the CPUs
    /// that ran a thread.
    pub makespan: u64,
    /// Final per-CPU clocks for the CPUs that ran threads.
    pub finish_times: Vec<u64>,
}

pub(crate) struct EngineState<U> {
    pub world: World<U>,
    pub done: Vec<bool>,
    /// The designated runner.
    pub current: usize,
    /// `current` may keep executing while its clock is ≤ `limit`.
    pub limit: u64,
    pub threads: usize,
    pub quantum: u64,
    /// Watchdog: panic if any CPU's clock passes this (None = unlimited).
    pub cycle_limit: Option<u64>,
}

impl<U> EngineState<U> {
    /// Re-designates the runner: the unfinished thread with the minimal
    /// `(clock, id)`. `limit` becomes the next-smallest clock plus the
    /// quantum, letting the runner batch a little work before handing off
    /// (with the default quantum of 0 the interleaving is exact).
    pub fn pick_next(&mut self) {
        let clocks = self.world.machine.clocks();
        let mut best: Option<(u64, usize)> = None;
        let mut second: Option<u64> = None;
        for (t, &clock) in clocks.iter().enumerate().take(self.threads) {
            if self.done[t] {
                continue;
            }
            let key = (clock, t);
            match best {
                None => best = Some(key),
                Some(b) if key < b => {
                    second = Some(b.0);
                    best = Some(key);
                }
                Some(_) => {
                    second = Some(second.map_or(clocks[t], |s| s.min(clocks[t])));
                }
            }
        }
        if let Some((_, id)) = best {
            self.current = id;
            self.limit = second.map_or(u64::MAX, |s| s.saturating_add(self.quantum));
        }
    }

    /// Whether thread `t` may execute an operation right now.
    pub fn may_run(&self, t: usize) -> bool {
        self.current == t && self.world.machine.clocks()[t] <= self.limit
    }

    /// Whether the schedule is stale (the designated runner cannot run).
    pub fn stale(&self) -> bool {
        self.done[self.current] || self.world.machine.clocks()[self.current] > self.limit
    }
}

pub(crate) struct Shared<U> {
    pub state: Mutex<EngineState<U>>,
    pub cv: Condvar,
}

/// Marks a logical thread finished on drop (panic-safe).
struct FinishGuard<'a, U> {
    cpu: usize,
    shared: &'a Arc<Shared<U>>,
}

impl<U> Drop for FinishGuard<'_, U> {
    fn drop(&mut self) {
        // If the mutex is poisoned the whole simulation is unwinding; the
        // bookkeeping no longer matters.
        if let Ok(mut state) = self.shared.state.lock() {
            if !state.done[self.cpu] {
                state.done[self.cpu] = true;
                if state.current == self.cpu {
                    state.pick_next();
                }
            }
        }
        self.shared.cv.notify_all();
    }
}

/// A configured simulation, ready to [`run`](Sim::run).
pub struct Sim<U> {
    machine: Machine,
    shared: U,
    quantum: u64,
    cycle_limit: Option<u64>,
}

impl<U: Send> Sim<U> {
    /// Creates a simulation over `machine` with software-shared state
    /// `shared`.
    pub fn new(machine: Machine, shared: U) -> Self {
        Sim {
            machine,
            shared,
            quantum: 0,
            cycle_limit: None,
        }
    }

    /// Sets the scheduling quantum: how many cycles past the next thread's
    /// clock the current runner may batch before handing off. 0 (the
    /// default) is exact lockstep; small values (~50) trade a little
    /// interleaving fidelity for host speed. Determinism is preserved for
    /// any value.
    #[must_use]
    pub fn quantum(mut self, cycles: u64) -> Self {
        self.quantum = cycles;
        self
    }

    /// Arms a watchdog: the simulation panics (with the offending CPU and
    /// clock) if any CPU's local clock exceeds `cycles`. Deadlocks and
    /// livelocks in transactional protocols otherwise present as silent
    /// infinite stall loops; a generous cap turns them into loud failures.
    #[must_use]
    pub fn cycle_limit(mut self, cycles: u64) -> Self {
        self.cycle_limit = Some(cycles);
        self
    }

    /// Runs one logical thread per entry of `threads` (thread `i` on CPU
    /// `i`) to completion and returns the final world and timing.
    ///
    /// # Panics
    ///
    /// Panics if more threads are supplied than the machine has CPUs, or if
    /// a thread body panics.
    pub fn run(self, threads: Vec<ThreadFn<U>>) -> SimResult<U> {
        let n = threads.len();
        assert!(
            n <= self.machine.cpus(),
            "{} threads but only {} CPUs",
            n,
            self.machine.cpus()
        );
        if n == 0 {
            return SimResult {
                makespan: 0,
                finish_times: Vec::new(),
                machine: self.machine,
                shared: self.shared,
            };
        }
        let mut state = EngineState {
            world: World {
                machine: self.machine,
                shared: self.shared,
            },
            done: vec![false; n],
            current: 0,
            limit: 0,
            threads: n,
            quantum: self.quantum,
            cycle_limit: self.cycle_limit,
        };
        state.pick_next();
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            cv: Condvar::new(),
        });

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (cpu, body) in threads.into_iter().enumerate() {
                let sh = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    // The guard marks this logical thread done even if the
                    // body panics, so the other threads are not left waiting
                    // for a turn that never comes and the panic propagates
                    // cleanly through join.
                    let _guard = FinishGuard { cpu, shared: &sh };
                    let mut ctx = Ctx::new(cpu, Arc::clone(&sh));
                    body(&mut ctx);
                }));
            }
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                if let Err(e) = h.join() {
                    panic.get_or_insert(e);
                }
            }
            if let Some(e) = panic {
                std::panic::resume_unwind(e);
            }
        });

        let state = Arc::into_inner(shared)
            .expect("all thread handles joined")
            .state
            .into_inner()
            .expect("engine mutex not poisoned");
        let clocks = state.world.machine.clocks();
        let finish_times: Vec<u64> = clocks[..n].to_vec();
        let makespan = finish_times.iter().copied().max().unwrap_or(0);
        SimResult {
            makespan,
            finish_times,
            machine: state.world.machine,
            shared: state.world.shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_machine::{Addr, MachineConfig};

    fn machine(cpus: usize) -> Machine {
        Machine::new(MachineConfig::small(cpus))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let r = Sim::new(machine(1), 0u64).run(vec![Box::new(|ctx| {
            ctx.work(100).unwrap();
            ctx.with(|w| w.shared = 7);
        })]);
        assert_eq!(r.shared, 7);
        assert_eq!(r.makespan, 100);
    }

    #[test]
    fn threads_interleave_by_clock() {
        // Thread 1 only observes values written at earlier simulated times.
        let r = Sim::new(machine(2), Vec::<(usize, u64)>::new()).run(vec![
            Box::new(|ctx| {
                for _ in 0..10 {
                    ctx.work(10).unwrap();
                    let now = ctx.now();
                    ctx.with(move |w| w.shared.push((0, now)));
                }
            }),
            Box::new(|ctx| {
                for _ in 0..10 {
                    ctx.work(10).unwrap();
                    let now = ctx.now();
                    ctx.with(move |w| w.shared.push((1, now)));
                }
            }),
        ]);
        // Events must be sorted by simulated time.
        let times: Vec<u64> = r.shared.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(
            times, sorted,
            "events out of simulated-time order: {:?}",
            r.shared
        );
        assert_eq!(r.shared.len(), 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            Sim::new(machine(4), Vec::<usize>::new()).run(
                (0..4)
                    .map(|i| -> ThreadFn<Vec<usize>> {
                        Box::new(move |ctx| {
                            for k in 0..20 {
                                ctx.work(7 + ((i * 13 + k) % 5) as u64).unwrap();
                                ctx.with(move |w| w.shared.push(i));
                            }
                        })
                    })
                    .collect(),
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.shared, b.shared);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.finish_times, b.finish_times);
    }

    #[test]
    fn unequal_thread_lengths_finish_cleanly() {
        let r = Sim::new(machine(3), ()).run(vec![
            Box::new(|ctx| ctx.work(5).unwrap()),
            Box::new(|ctx| ctx.work(5000).unwrap()),
            Box::new(|ctx| {
                for _ in 0..100 {
                    ctx.work(3).unwrap();
                }
            }),
        ]);
        assert_eq!(r.makespan, 5000);
        assert_eq!(r.finish_times, vec![5, 5000, 300]);
    }

    #[test]
    fn quantum_preserves_determinism() {
        let run_with = |q: u64| {
            Sim::new(machine(2), Vec::<(usize, u64)>::new())
                .quantum(q)
                .run(vec![
                    Box::new(|ctx| {
                        for _ in 0..50 {
                            ctx.work(4).unwrap();
                            let now = ctx.now();
                            ctx.with(move |w| w.shared.push((0, now)));
                        }
                    }),
                    Box::new(|ctx| {
                        for _ in 0..50 {
                            ctx.work(6).unwrap();
                            let now = ctx.now();
                            ctx.with(move |w| w.shared.push((1, now)));
                        }
                    }),
                ])
        };
        assert_eq!(run_with(25).shared, run_with(25).shared);
        // Makespan is independent of the quantum (it only batches host-side).
        assert_eq!(run_with(0).makespan, run_with(25).makespan);
    }

    #[test]
    fn machine_ops_work_through_ctx() {
        let a = Addr::from_word_index(5);
        let r = Sim::new(machine(2), ()).run(vec![
            Box::new(move |ctx| {
                ctx.store(a, 41).unwrap();
            }),
            Box::new(move |ctx| {
                ctx.work(10_000).unwrap(); // run well after thread 0
                let v = ctx.load(a).unwrap();
                assert_eq!(v, 41);
            }),
        ]);
        assert_eq!(r.machine.peek(a), 41);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let r = Sim::new(machine(1), 3u32).run(Vec::new());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.shared, 3);
    }

    #[test]
    #[should_panic(expected = "CPUs")]
    fn too_many_threads_panics() {
        let bodies: Vec<ThreadFn<()>> = (0..3)
            .map(|_| -> ThreadFn<()> { Box::new(|_| {}) })
            .collect();
        Sim::new(machine(2), ()).run(bodies);
    }

    #[test]
    #[should_panic(expected = "workload bug")]
    fn body_panic_propagates_without_deadlocking() {
        // The panicking thread must not leave its peers waiting forever;
        // the panic resurfaces from Sim::run.
        Sim::new(machine(2), ()).run(vec![
            Box::new(|ctx| {
                // Runs plenty of ops while (and after) the other panics.
                for _ in 0..50 {
                    ctx.work(10).unwrap();
                }
            }),
            Box::new(|ctx| {
                ctx.work(25).unwrap();
                panic!("workload bug");
            }),
        ]);
    }

    #[test]
    #[should_panic(expected = "cycle limit exceeded")]
    fn cycle_limit_converts_livelock_into_panic() {
        // An endless stall loop (a protocol livelock in miniature) trips
        // the watchdog instead of hanging the host.
        Sim::new(machine(1), ())
            .cycle_limit(10_000)
            .run(vec![Box::new(|ctx| loop {
                ctx.stall(100).unwrap();
            })]);
    }

    #[test]
    fn cycle_limit_does_not_fire_under_the_cap() {
        let r = Sim::new(machine(2), ()).cycle_limit(1_000_000).run(vec![
            Box::new(|ctx| ctx.work(500).unwrap()),
            Box::new(|ctx| ctx.work(700).unwrap()),
        ]);
        assert_eq!(r.makespan, 700);
    }

    #[test]
    fn peers_finish_even_if_one_panics_mid_run() {
        let r = std::panic::catch_unwind(|| {
            Sim::new(machine(3), Vec::<usize>::new()).run(vec![
                Box::new(|ctx| {
                    for _ in 0..100 {
                        ctx.work(5).unwrap();
                    }
                    ctx.with(|w| w.shared.push(0));
                }),
                Box::new(|ctx| {
                    ctx.work(3).unwrap();
                    panic!("boom");
                }),
                Box::new(|ctx| {
                    for _ in 0..100 {
                        ctx.work(7).unwrap();
                    }
                    ctx.with(|w| w.shared.push(2));
                }),
            ])
        });
        assert!(r.is_err(), "panic must propagate");
    }
}
