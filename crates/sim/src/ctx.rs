//! The per-thread execution context.

use std::sync::Arc;

use ufotm_machine::{AbortInfo, AccessResult, Addr, BtmEvent, BtmStatus, CpuId, UfoBits};

use crate::engine::{HandoffMode, Shared, World};

/// Handle through which a logical thread executes operations on its CPU.
///
/// Each method runs exactly one *scheduled operation*: the thread blocks
/// until the lockstep scheduler designates it (its CPU has the smallest
/// clock), executes against the shared [`World`], and returns. Compound
/// closures passed to [`Ctx::with`] execute atomically at the thread's
/// current simulated time — use them for software metadata manipulation
/// (e.g. an otable update under its chain lock), not for long stretches of
/// simulated work.
pub struct Ctx<U> {
    cpu: CpuId,
    shared: Arc<Shared<U>>,
    /// Cached designation. While true, this thread is the current runner,
    /// `limit` is its batching bound, and operations need only the (always
    /// uncontended) world mutex — the scheduler lock is skipped entirely.
    designated: bool,
    /// Valid only while `designated`: the runner may keep executing without
    /// a handoff while its clock is ≤ this.
    limit: u64,
}

impl<U> Ctx<U> {
    pub(crate) fn new(cpu: CpuId, shared: Arc<Shared<U>>) -> Self {
        Ctx {
            cpu,
            shared,
            designated: false,
            limit: 0,
        }
    }

    /// The CPU this thread runs on.
    #[must_use]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Blocks on this thread's private condvar until the scheduler
    /// designates it, then caches the designation.
    #[cold]
    fn wait_for_turn(&mut self) {
        let mut sched = self.shared.sched.lock().expect("engine mutex poisoned");
        while sched.current != self.cpu {
            sched = self.shared.cvs[self.cpu]
                .wait(sched)
                .expect("engine mutex poisoned");
        }
        self.limit = sched.limit;
        self.designated = true;
    }

    /// Hands off after the clock reached `now` (> `limit`). The scheduler
    /// may re-designate this same thread (it is still the minimum), in
    /// which case only the cached limit is refreshed and nobody is woken.
    #[cold]
    fn yield_turn(&mut self, now: u64) {
        let mut sched = self.shared.sched.lock().expect("engine mutex poisoned");
        let next = sched.handoff(self.cpu, now);
        if next == self.cpu {
            self.limit = sched.limit;
        } else {
            self.designated = false;
            drop(sched);
            self.shared.wake(next);
        }
    }

    /// Executes one scheduled operation against the world.
    ///
    /// # Panics
    ///
    /// Panics if the engine mutex was poisoned by another thread's panic.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut World<U>) -> R) -> R {
        if !self.designated {
            self.wait_for_turn();
        }
        // Only the designated runner ever takes the world mutex, so this is
        // an uncontended acquisition on the fast path.
        let mut world = self.shared.world.lock().expect("engine mutex poisoned");
        let r = f(&mut world);
        let now = world.machine.now(self.cpu);
        if let Some(cap) = self.shared.cycle_limit {
            assert!(
                now <= cap,
                "cycle limit exceeded: cpu {} reached {} > {} — \
                 likely a livelock or deadlock in the protocol under test",
                self.cpu,
                now,
                cap
            );
        }
        drop(world);
        if now > self.limit {
            self.yield_turn(now);
        } else if self.shared.mode == HandoffMode::Broadcast {
            // Legacy cost profile: the old engine re-took the scheduler
            // lock on every operation even when it kept running.
            drop(self.shared.sched.lock().expect("engine mutex poisoned"));
        }
        r
    }

    // --- Machine conveniences -------------------------------------------

    /// This CPU's local clock.
    pub fn now(&mut self) -> u64 {
        let cpu = self.cpu;
        self.with(|w| w.machine.now(cpu))
    }

    /// Loads a word (see [`Machine::load`](ufotm_machine::Machine::load)).
    ///
    /// # Errors
    ///
    /// Propagates the machine's access errors (UFO fault, nack, abort).
    pub fn load(&mut self, addr: Addr) -> AccessResult<u64> {
        let cpu = self.cpu;
        self.with(|w| w.machine.load(cpu, addr))
    }

    /// Stores a word (see [`Machine::store`](ufotm_machine::Machine::store)).
    ///
    /// # Errors
    ///
    /// Propagates the machine's access errors (UFO fault, nack, abort).
    pub fn store(&mut self, addr: Addr, value: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.store(cpu, addr, value))
    }

    /// Charges computation cycles.
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn work(&mut self, cycles: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.work(cpu, cycles))
    }

    /// Charges stall cycles (tracked separately in the stats).
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn stall(&mut self, cycles: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.stall(cpu, cycles))
    }

    /// Begins (or nests) a BTM transaction.
    ///
    /// # Errors
    ///
    /// Propagates aborts (pending doom, nesting-depth overflow).
    pub fn btm_begin(&mut self) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_begin(cpu))
    }

    /// Commits the innermost BTM transaction.
    ///
    /// # Errors
    ///
    /// Propagates aborts discovered at commit.
    pub fn btm_end(&mut self) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_end(cpu))
    }

    /// Explicitly aborts the current BTM transaction.
    pub fn btm_abort(&mut self) -> AbortInfo {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_abort(cpu))
    }

    /// Aborts the current BTM transaction with a supplied reason.
    pub fn btm_abort_with(&mut self, info: AbortInfo) -> AbortInfo {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_abort_with(cpu, info))
    }

    /// Raises a transactional event (syscall, I/O, …).
    ///
    /// # Errors
    ///
    /// Aborts the current transaction, if any.
    pub fn btm_event(&mut self, event: BtmEvent) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_event(cpu, event))
    }

    /// Reads the transactional status registers.
    pub fn btm_status(&mut self) -> BtmStatus {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_status(cpu))
    }

    /// Enables/disables UFO fault delivery for this CPU.
    pub fn set_ufo_enabled(&mut self, enabled: bool) {
        let cpu = self.cpu;
        self.with(|w| w.machine.set_ufo_enabled(cpu, enabled));
    }

    /// Sets a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Propagates the machine's errors (illegal inside a BTM transaction).
    pub fn set_ufo_bits(&mut self, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.set_ufo_bits(cpu, addr, bits))
    }

    /// ORs bits into a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Propagates the machine's errors (illegal inside a BTM transaction).
    pub fn add_ufo_bits(&mut self, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.add_ufo_bits(cpu, addr, bits))
    }

    /// Reads a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn read_ufo_bits(&mut self, addr: Addr) -> AccessResult<UfoBits> {
        let cpu = self.cpu;
        self.with(|w| w.machine.read_ufo_bits(cpu, addr))
    }
}

impl<U> std::fmt::Debug for Ctx<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("cpu", &self.cpu)
            .field("designated", &self.designated)
            .finish_non_exhaustive()
    }
}
