//! The per-thread execution context.

use std::sync::Arc;

use ufotm_machine::{AbortInfo, AccessResult, Addr, BtmEvent, BtmStatus, CpuId, UfoBits};

use crate::engine::{Shared, World};

/// Handle through which a logical thread executes operations on its CPU.
///
/// Each method runs exactly one *scheduled operation*: the thread blocks
/// until the lockstep scheduler designates it (its CPU has the smallest
/// clock), executes against the shared [`World`], and returns. Compound
/// closures passed to [`Ctx::with`] execute atomically at the thread's
/// current simulated time — use them for software metadata manipulation
/// (e.g. an otable update under its chain lock), not for long stretches of
/// simulated work.
pub struct Ctx<U> {
    cpu: CpuId,
    shared: Arc<Shared<U>>,
}

impl<U> Ctx<U> {
    pub(crate) fn new(cpu: CpuId, shared: Arc<Shared<U>>) -> Self {
        Ctx { cpu, shared }
    }

    /// The CPU this thread runs on.
    #[must_use]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Executes one scheduled operation against the world.
    ///
    /// # Panics
    ///
    /// Panics if the engine mutex was poisoned by another thread's panic.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut World<U>) -> R) -> R {
        let mut state = self.shared.state.lock().expect("engine mutex poisoned");
        loop {
            if state.may_run(self.cpu) {
                break;
            }
            if state.stale() {
                state.pick_next();
                self.shared.cv.notify_all();
                continue;
            }
            state = self.shared.cv.wait(state).expect("engine mutex poisoned");
        }
        let r = f(&mut state.world);
        if let Some(cap) = state.cycle_limit {
            let now = state.world.machine.now(self.cpu);
            assert!(
                now <= cap,
                "cycle limit exceeded: cpu {} reached {} > {} — \
                 likely a livelock or deadlock in the protocol under test",
                self.cpu,
                now,
                cap
            );
        }
        if !state.may_run(self.cpu) {
            state.pick_next();
            self.shared.cv.notify_all();
        }
        r
    }

    // --- Machine conveniences -------------------------------------------

    /// This CPU's local clock.
    pub fn now(&mut self) -> u64 {
        let cpu = self.cpu;
        self.with(|w| w.machine.now(cpu))
    }

    /// Loads a word (see [`Machine::load`](ufotm_machine::Machine::load)).
    ///
    /// # Errors
    ///
    /// Propagates the machine's access errors (UFO fault, nack, abort).
    pub fn load(&mut self, addr: Addr) -> AccessResult<u64> {
        let cpu = self.cpu;
        self.with(|w| w.machine.load(cpu, addr))
    }

    /// Stores a word (see [`Machine::store`](ufotm_machine::Machine::store)).
    ///
    /// # Errors
    ///
    /// Propagates the machine's access errors (UFO fault, nack, abort).
    pub fn store(&mut self, addr: Addr, value: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.store(cpu, addr, value))
    }

    /// Charges computation cycles.
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn work(&mut self, cycles: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.work(cpu, cycles))
    }

    /// Charges stall cycles (tracked separately in the stats).
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn stall(&mut self, cycles: u64) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.stall(cpu, cycles))
    }

    /// Begins (or nests) a BTM transaction.
    ///
    /// # Errors
    ///
    /// Propagates aborts (pending doom, nesting-depth overflow).
    pub fn btm_begin(&mut self) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_begin(cpu))
    }

    /// Commits the innermost BTM transaction.
    ///
    /// # Errors
    ///
    /// Propagates aborts discovered at commit.
    pub fn btm_end(&mut self) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_end(cpu))
    }

    /// Explicitly aborts the current BTM transaction.
    pub fn btm_abort(&mut self) -> AbortInfo {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_abort(cpu))
    }

    /// Aborts the current BTM transaction with a supplied reason.
    pub fn btm_abort_with(&mut self, info: AbortInfo) -> AbortInfo {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_abort_with(cpu, info))
    }

    /// Raises a transactional event (syscall, I/O, …).
    ///
    /// # Errors
    ///
    /// Aborts the current transaction, if any.
    pub fn btm_event(&mut self, event: BtmEvent) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_event(cpu, event))
    }

    /// Reads the transactional status registers.
    pub fn btm_status(&mut self) -> BtmStatus {
        let cpu = self.cpu;
        self.with(|w| w.machine.btm_status(cpu))
    }

    /// Enables/disables UFO fault delivery for this CPU.
    pub fn set_ufo_enabled(&mut self, enabled: bool) {
        let cpu = self.cpu;
        self.with(|w| w.machine.set_ufo_enabled(cpu, enabled));
    }

    /// Sets a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Propagates the machine's errors (illegal inside a BTM transaction).
    pub fn set_ufo_bits(&mut self, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.set_ufo_bits(cpu, addr, bits))
    }

    /// ORs bits into a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Propagates the machine's errors (illegal inside a BTM transaction).
    pub fn add_ufo_bits(&mut self, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        let cpu = self.cpu;
        self.with(|w| w.machine.add_ufo_bits(cpu, addr, bits))
    }

    /// Reads a line's UFO bits.
    ///
    /// # Errors
    ///
    /// Surfaces a pending transaction doom.
    pub fn read_ufo_bits(&mut self, addr: Addr) -> AccessResult<UfoBits> {
        let cpu = self.cpu;
        self.with(|w| w.machine.read_ufo_bits(cpu, addr))
    }
}

impl<U> std::fmt::Debug for Ctx<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("cpu", &self.cpu)
            .finish_non_exhaustive()
    }
}
