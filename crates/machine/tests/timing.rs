//! Cycle-accounting regression tests: the cost model is the experiment's
//! measuring stick, so charge paths are pinned down exactly.

use ufotm_machine::{Addr, CostModel, Machine, MachineConfig};

fn machine(cpus: usize) -> Machine {
    // No timer interrupts: deterministic arithmetic.
    Machine::new(MachineConfig::small(cpus))
}

fn costs() -> CostModel {
    CostModel::table4()
}

#[test]
fn cold_load_pays_l1_plus_memory() {
    let mut m = machine(1);
    let c = costs();
    m.load(0, Addr(0)).unwrap();
    assert_eq!(m.now(0), c.l1_hit + c.mem);
}

#[test]
fn warm_load_pays_only_l1_hit() {
    let mut m = machine(1);
    let c = costs();
    m.load(0, Addr(0)).unwrap();
    let before = m.now(0);
    m.load(0, Addr(8)).unwrap(); // same line
    assert_eq!(m.now(0) - before, c.l1_hit);
}

#[test]
fn l2_hit_fill_is_cheaper_than_memory() {
    let mut m = machine(1);
    let c = costs();
    // Fill line 0 (into L1 and L2), then evict it from L1 by walking the
    // set (4-set, 2-way small config: lines 0, 4, 8 share set 0).
    m.load(0, Addr(0)).unwrap();
    m.load(0, Addr(4 * 64)).unwrap();
    m.load(0, Addr(8 * 64)).unwrap(); // evicts line 0 from L1, still in L2
    let before = m.now(0);
    m.load(0, Addr(0)).unwrap();
    assert_eq!(m.now(0) - before, c.l1_hit + c.l2_hit);
}

#[test]
fn remote_dirty_line_costs_a_transfer() {
    let mut m = machine(2);
    let c = costs();
    m.store(0, Addr(0), 5).unwrap(); // dirty + exclusive on cpu 0
    let before = m.now(1);
    m.load(1, Addr(0)).unwrap();
    assert_eq!(m.now(1) - before, c.l1_hit + c.cache_to_cache);
}

#[test]
fn upgrade_store_invalidate_then_write() {
    let mut m = machine(2);
    let c = costs();
    m.load(0, Addr(0)).unwrap();
    m.load(1, Addr(0)).unwrap(); // both share the line
    let before = m.now(1);
    m.store(1, Addr(0), 9).unwrap(); // invalidates cpu 0's copy
    assert_eq!(m.now(1) - before, c.l1_hit + c.cache_to_cache);
    // CPU 0 must re-fetch.
    let before0 = m.now(0);
    m.load(0, Addr(0)).unwrap();
    assert!(m.now(0) - before0 > c.l1_hit);
}

#[test]
fn nack_charges_the_paper_twenty_cycles() {
    let mut m = machine(2);
    let c = costs();
    m.btm_begin(0).unwrap();
    m.btm_begin(1).unwrap();
    m.store(0, Addr(0), 1).unwrap();
    let before = m.now(1);
    assert!(m.store(1, Addr(0), 2).is_err()); // nacked (younger)
                                              // The nack retry delay is charged on top of the access issue cost.
    assert_eq!(m.now(1) - before, c.l1_hit + c.nack_retry);
    assert_eq!(c.nack_retry, 20, "paper's constant");
}

#[test]
fn work_and_stall_are_exact() {
    let mut m = machine(1);
    m.work(0, 123).unwrap();
    m.stall(0, 77).unwrap();
    assert_eq!(m.now(0), 200);
    assert_eq!(m.stats().cpus[0].stall_cycles, 77);
}

#[test]
fn btm_begin_commit_costs() {
    let mut m = machine(1);
    let c = costs();
    m.btm_begin(0).unwrap();
    m.btm_end(0).unwrap();
    assert_eq!(m.now(0), c.btm_begin + c.btm_commit);
}

#[test]
fn ufo_fault_costs_dispatch() {
    let mut m = machine(2);
    let c = costs();
    m.set_ufo_bits(0, Addr(0), ufotm_machine::UfoBits::FAULT_ON_BOTH)
        .unwrap();
    m.set_ufo_enabled(1, true);
    let before = m.now(1);
    assert!(m.load(1, Addr(0)).is_err());
    assert_eq!(m.now(1) - before, c.l1_hit + c.fault_dispatch);
}

#[test]
fn makespan_is_per_cpu_not_summed() {
    let mut m = machine(2);
    m.work(0, 1000).unwrap();
    m.work(1, 10).unwrap();
    assert_eq!(m.clocks().iter().copied().max().unwrap(), 1000);
    assert_eq!(m.clocks()[1], 10);
}
