//! Seed-sweep tests of the machine model: random operation sequences
//! must match a simple reference memory, and internal cache/directory/BTM
//! invariants must hold at every step. Failures print the seed; replay
//! with `CHAOS_SEED=<n>`.

use std::collections::HashMap;

use ufotm_machine::{
    AccessError, Addr, BtmEvent, Machine, MachineConfig, SimRng, SwapConfig, UfoBits,
};
use ufotm_sim::{for_each_seed, seed_count};

/// One scripted operation.
#[derive(Clone, Debug)]
enum Op {
    Load { cpu: usize, word: u64 },
    Store { cpu: usize, word: u64, value: u64 },
    Begin { cpu: usize },
    End { cpu: usize },
    Abort { cpu: usize },
    Work { cpu: usize, cycles: u64 },
    SetUfo { cpu: usize, word: u64, bits: u8 },
    Event { cpu: usize },
    EnableUfo { cpu: usize, on: bool },
}

/// Draws one op with the same weights the old proptest strategy used
/// (loads/stores 4, begin/end 2, everything else 1).
fn gen_op(rng: &mut SimRng, cpus: usize, words: u64) -> Op {
    let cpu = rng.gen_index(0..cpus);
    match rng.gen_range(0..17) {
        0..=3 => Op::Load {
            cpu,
            word: rng.gen_range(0..words),
        },
        4..=7 => Op::Store {
            cpu,
            word: rng.gen_range(0..words),
            value: rng.next_u64(),
        },
        8..=9 => Op::Begin { cpu },
        10..=11 => Op::End { cpu },
        12 => Op::Abort { cpu },
        13 => Op::Work {
            cpu,
            cycles: rng.gen_range(0..200),
        },
        14 => Op::SetUfo {
            cpu,
            word: rng.gen_range(0..words),
            bits: rng.gen_range(0..4) as u8,
        },
        15 => Op::Event { cpu },
        _ => Op::EnableUfo {
            cpu,
            on: rng.gen_bool(0.5),
        },
    }
}

fn gen_script(rng: &mut SimRng, cpus: usize, words: u64, max_len: usize) -> Vec<Op> {
    let len = rng.gen_index(1..max_len);
    (0..len).map(|_| gen_op(rng, cpus, words)).collect()
}

/// A reference model: committed memory plus per-CPU transactional overlays.
#[derive(Default)]
struct Reference {
    mem: HashMap<u64, u64>,
    /// Per-CPU speculative overlay while its txn is live.
    overlay: Vec<Option<HashMap<u64, u64>>>,
}

impl Reference {
    fn new(cpus: usize) -> Self {
        Reference {
            mem: HashMap::new(),
            overlay: vec![None; cpus],
        }
    }

    fn read(&self, cpu: usize, word: u64) -> u64 {
        if let Some(Some(ov)) = self.overlay.get(cpu) {
            if let Some(&v) = ov.get(&word) {
                return v;
            }
        }
        self.mem.get(&word).copied().unwrap_or(0)
    }

    fn write(&mut self, cpu: usize, word: u64, value: u64) {
        match &mut self.overlay[cpu] {
            Some(ov) => {
                ov.insert(word, value);
            }
            None => {
                self.mem.insert(word, value);
            }
        }
    }

    fn begin(&mut self, cpu: usize) {
        if self.overlay[cpu].is_none() {
            self.overlay[cpu] = Some(HashMap::new());
        }
    }

    fn commit(&mut self, cpu: usize) {
        if let Some(ov) = self.overlay[cpu].take() {
            self.mem.extend(ov);
        }
    }

    fn abort(&mut self, cpu: usize) {
        self.overlay[cpu] = None;
    }
}

/// Runs a script against the machine and the reference in lockstep. BTM
/// nesting is flattened by tracking depth host-side; any machine-reported
/// abort resets the overlay.
fn check_script(mut m: Machine, ops: Vec<Op>) {
    let cpus = m.cpus();
    let mut reference = Reference::new(cpus);
    let mut depth = vec![0u32; cpus];
    for op in ops {
        match op {
            Op::Load { cpu, word } => {
                match m.load(cpu, Addr::from_word_index(word)) {
                    Ok(v) => {
                        assert_eq!(
                            v,
                            reference.read(cpu, word),
                            "load divergence at word {word}"
                        );
                    }
                    Err(AccessError::TxnAbort(_)) => {
                        reference.abort(cpu);
                        depth[cpu] = 0;
                    }
                    Err(AccessError::Nacked) => { /* retryable; skip */ }
                    Err(AccessError::UfoFault { .. }) => { /* not performed */ }
                }
            }
            Op::Store { cpu, word, value } => {
                match m.store(cpu, Addr::from_word_index(word), value) {
                    Ok(()) => reference.write(cpu, word, value),
                    Err(AccessError::TxnAbort(_)) => {
                        reference.abort(cpu);
                        depth[cpu] = 0;
                    }
                    Err(AccessError::Nacked) => {}
                    Err(AccessError::UfoFault { .. }) => {}
                }
            }
            Op::Begin { cpu } => match m.btm_begin(cpu) {
                Ok(()) => {
                    if depth[cpu] == 0 {
                        reference.begin(cpu);
                    }
                    depth[cpu] += 1;
                }
                Err(AccessError::TxnAbort(_)) => {
                    reference.abort(cpu);
                    depth[cpu] = 0;
                }
                Err(e) => panic!("begin: {e}"),
            },
            Op::End { cpu } => {
                if depth[cpu] == 0 {
                    continue; // no txn to end
                }
                match m.btm_end(cpu) {
                    Ok(()) => {
                        depth[cpu] -= 1;
                        if depth[cpu] == 0 {
                            reference.commit(cpu);
                        }
                    }
                    Err(AccessError::TxnAbort(_)) => {
                        reference.abort(cpu);
                        depth[cpu] = 0;
                    }
                    Err(e) => panic!("end: {e}"),
                }
            }
            Op::Abort { cpu } => {
                if depth[cpu] > 0 {
                    m.btm_abort(cpu);
                    reference.abort(cpu);
                    depth[cpu] = 0;
                }
            }
            Op::Work { cpu, cycles } => {
                if m.work(cpu, cycles).is_err() {
                    reference.abort(cpu);
                    depth[cpu] = 0;
                }
            }
            Op::SetUfo { cpu, word, bits } => {
                match m.set_ufo_bits(cpu, Addr::from_word_index(word), UfoBits::from_raw(bits)) {
                    Ok(()) => {}
                    Err(AccessError::TxnAbort(_)) => {
                        reference.abort(cpu);
                        depth[cpu] = 0;
                    }
                    Err(e) => panic!("set_ufo: {e}"),
                }
            }
            Op::Event { cpu } => {
                if m.btm_event(cpu, BtmEvent::Syscall).is_err() {
                    reference.abort(cpu);
                    depth[cpu] = 0;
                }
            }
            Op::EnableUfo { cpu, on } => m.set_ufo_enabled(cpu, on),
        }
        m.debug_validate();
    }
    // Drain all live transactions, then compare full memory.
    for (cpu, &d) in depth.iter().enumerate().take(cpus) {
        if d > 0 {
            m.btm_abort(cpu);
            reference.abort(cpu);
        }
    }
    m.debug_validate();
    for word in 0..64u64 {
        assert_eq!(
            m.peek(Addr::from_word_index(word)),
            reference.read(usize::MAX - 1, word).to_owned(),
            "final memory divergence at word {word}"
        );
    }
}

#[test]
fn machine_matches_reference_model() {
    for_each_seed(0, seed_count(24), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_script(&mut rng, 3, 64, 120);
        let mut cfg = MachineConfig::small(3);
        cfg.timer_quantum = Some(5_000);
        check_script(Machine::new(cfg), ops);
    });
}

#[test]
fn machine_matches_reference_model_unbounded() {
    for_each_seed(1000, seed_count(24), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_script(&mut rng, 2, 64, 120);
        check_script(Machine::new(MachineConfig::small(2).unbounded()), ops);
    });
}

#[test]
fn machine_matches_reference_model_with_paging() {
    for_each_seed(2000, seed_count(24), |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = gen_script(&mut rng, 2, 64, 80);
        let mut m = Machine::new(MachineConfig::small(2));
        m.enable_swap(SwapConfig {
            max_resident_pages: 2,
        });
        check_script(m, ops);
    });
}

#[test]
fn reference_overlay_semantics() {
    let mut r = Reference::new(1);
    r.write(0, 1, 10);
    r.begin(0);
    r.write(0, 1, 20);
    assert_eq!(r.read(0, 1), 20);
    r.abort(0);
    assert_eq!(r.read(0, 1), 10);
    r.begin(0);
    r.write(0, 1, 30);
    r.commit(0);
    assert_eq!(r.read(0, 1), 30);
}
