//! Coherence-protocol edge cases: downgrades, invalidations, eviction
//! interplay with UFO bits and speculative state.

use ufotm_machine::{AbortReason, AccessError, Addr, Machine, MachineConfig, UfoBits};

fn machine(cpus: usize) -> Machine {
    Machine::new(MachineConfig::small(cpus))
}

#[test]
fn remote_read_downgrades_exclusive_owner() {
    let mut m = machine(2);
    m.store(0, Addr(0), 1).unwrap(); // cpu0 exclusive+dirty
    m.load(1, Addr(0)).unwrap(); // downgrade to shared
                                 // Both can now read cheaply; a write must re-arbitrate.
    let t0 = m.now(0);
    m.load(0, Addr(0)).unwrap();
    assert_eq!(m.now(0) - t0, MachineConfig::small(1).costs.l1_hit);
    m.store(1, Addr(0), 2).unwrap();
    assert_eq!(m.peek(Addr(0)), 2);
    m.debug_validate();
}

#[test]
fn writeback_preserves_data_across_eviction() {
    let mut m = machine(1); // 4 sets, 2 ways
                            // Dirty line 0, then evict it by filling set 0 (lines 0, 4, 8).
    m.store(0, Addr(0), 42).unwrap();
    m.load(0, Addr(4 * 64)).unwrap();
    m.load(0, Addr(8 * 64)).unwrap();
    // Line 0 evicted; value must persist.
    assert_eq!(m.load(0, Addr(0)).unwrap(), 42);
    m.debug_validate();
}

#[test]
fn ufo_bits_survive_cache_eviction() {
    let mut m = machine(2);
    m.set_ufo_bits(0, Addr(0), UfoBits::FAULT_ON_WRITE).unwrap();
    // Evict the line from cpu0's L1 via set pressure.
    m.load(0, Addr(4 * 64)).unwrap();
    m.load(0, Addr(8 * 64)).unwrap();
    m.load(0, Addr(12 * 64)).unwrap();
    // The bits are directory/memory state: still in force.
    m.set_ufo_enabled(1, true);
    assert!(matches!(
        m.store(1, Addr(0), 1),
        Err(AccessError::UfoFault { .. })
    ));
    m.debug_validate();
}

#[test]
fn spec_read_line_survives_commit_and_stays_cached() {
    let mut m = machine(2);
    m.btm_begin(0).unwrap();
    m.load(0, Addr(0)).unwrap();
    m.btm_end(0).unwrap();
    // Still cached post-commit: hit cost only.
    let t = m.now(0);
    m.load(0, Addr(0)).unwrap();
    assert_eq!(m.now(0) - t, MachineConfig::small(1).costs.l1_hit);
}

#[test]
fn aborted_spec_write_line_leaves_the_cache() {
    let mut m = machine(1);
    m.btm_begin(0).unwrap();
    m.store(0, Addr(0), 9).unwrap();
    m.btm_abort(0);
    // The speculative line was invalidated: next access misses.
    let t = m.now(0);
    m.load(0, Addr(0)).unwrap();
    assert!(m.now(0) - t > MachineConfig::small(1).costs.l1_hit);
    assert_eq!(m.peek(Addr(0)), 0);
    m.debug_validate();
}

#[test]
fn two_txns_disjoint_lines_commit_concurrently() {
    let mut m = machine(2);
    m.btm_begin(0).unwrap();
    m.btm_begin(1).unwrap();
    m.store(0, Addr(0), 1).unwrap();
    m.store(1, Addr(4096), 2).unwrap();
    m.btm_end(0).unwrap();
    m.btm_end(1).unwrap();
    assert_eq!(m.peek(Addr(0)), 1);
    assert_eq!(m.peek(Addr(4096)), 2);
    assert_eq!(m.stats().aggregate().btm_commits, 2);
    assert_eq!(m.stats().aggregate().total_aborts(), 0);
}

#[test]
fn nont_load_of_spec_read_line_is_harmless() {
    let mut m = machine(2);
    m.btm_begin(0).unwrap();
    m.load(0, Addr(0)).unwrap(); // spec read
                                 // A plain load elsewhere shares the line without killing the txn.
    m.load(1, Addr(0)).unwrap();
    m.btm_end(0).unwrap();
    assert_eq!(m.stats().aggregate().btm_commits, 1);
}

#[test]
fn nont_store_kills_spec_reader_with_nont_reason() {
    let mut m = machine(2);
    m.btm_begin(0).unwrap();
    m.load(0, Addr(0)).unwrap();
    m.store(1, Addr(0), 7).unwrap();
    match m.load(0, Addr(0)) {
        Err(AccessError::TxnAbort(info)) => {
            assert_eq!(info.reason, AbortReason::NonTConflict);
            assert_eq!(info.addr, Some(Addr(0)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn exclusive_reacquisition_after_remote_share() {
    // cpu0 owns exclusively; cpu1 reads (downgrade); cpu0 writes again
    // (must re-invalidate cpu1).
    let mut m = machine(2);
    m.store(0, Addr(0), 1).unwrap();
    m.load(1, Addr(0)).unwrap();
    m.store(0, Addr(0), 2).unwrap();
    // cpu1's next read misses (its copy was invalidated) but sees 2.
    let t = m.now(1);
    assert_eq!(m.load(1, Addr(0)).unwrap(), 2);
    assert!(m.now(1) - t > MachineConfig::small(1).costs.l1_hit);
    m.debug_validate();
}

#[test]
fn set_ufo_claims_exclusive_ownership() {
    let mut m = machine(2);
    m.load(0, Addr(0)).unwrap();
    m.load(1, Addr(0)).unwrap();
    // The UFO set on cpu1 invalidates cpu0's copy.
    m.set_ufo_bits(1, Addr(0), UfoBits::FAULT_ON_WRITE).unwrap();
    let t = m.now(0);
    m.load(0, Addr(0)).unwrap(); // must refetch
    assert!(m.now(0) - t > MachineConfig::small(1).costs.l1_hit);
    m.debug_validate();
}

#[test]
fn owner_state_ufo_sets_spare_speculative_readers() {
    let mut cfg = MachineConfig::small(2);
    cfg.ufo_owner_state_sets = true;
    let mut m = Machine::new(cfg);
    m.btm_begin(1).unwrap();
    m.load(1, Addr(0)).unwrap(); // speculative reader
                                 // Read-barrier protection (fault-on-write only): published in the owner
                                 // state — the reader survives and even keeps its cached copy.
    m.set_ufo_bits(0, Addr(0), UfoBits::FAULT_ON_WRITE).unwrap();
    let t = m.now(1);
    m.load(1, Addr(0)).unwrap();
    assert_eq!(
        m.now(1) - t,
        MachineConfig::small(1).costs.l1_hit,
        "copy must still be cached"
    );
    m.btm_end(1).unwrap();
    // The protection is still live for UFO-enabled writers.
    m.set_ufo_enabled(1, true);
    assert!(matches!(
        m.store(1, Addr(0), 1),
        Err(AccessError::UfoFault { .. })
    ));
    m.debug_validate();
}

#[test]
fn owner_state_sets_still_kill_speculative_writers() {
    let mut cfg = MachineConfig::small(2);
    cfg.ufo_owner_state_sets = true;
    let mut m = Machine::new(cfg);
    m.btm_begin(1).unwrap();
    m.store(1, Addr(0), 5).unwrap(); // speculative writer: true conflict
    m.set_ufo_bits(0, Addr(0), UfoBits::FAULT_ON_WRITE).unwrap();
    match m.load(1, Addr(0)) {
        Err(AccessError::TxnAbort(info)) => assert_eq!(info.reason, AbortReason::UfoSet),
        other => panic!("{other:?}"),
    }
}

#[test]
fn owner_state_does_not_apply_to_write_barrier_sets() {
    let mut cfg = MachineConfig::small(2);
    cfg.ufo_owner_state_sets = true;
    let mut m = Machine::new(cfg);
    m.btm_begin(1).unwrap();
    m.load(1, Addr(0)).unwrap();
    // Write-barrier protection includes fault-on-read: exclusive path,
    // reader killed (a true conflict — the software txn will write).
    m.set_ufo_bits(0, Addr(0), UfoBits::FAULT_ON_BOTH).unwrap();
    assert!(matches!(m.load(1, Addr(0)), Err(AccessError::TxnAbort(_))));
}
