//! Event counters gathered by the machine, used by the benchmark harness to
//! regenerate the paper's Figure 6 (abort-reason breakdown) and to report
//! cache/coherence behaviour.

use std::collections::BTreeMap;

use crate::btm::AbortReason;

/// Per-CPU counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Committed BTM transactions (outermost commits only).
    pub btm_commits: u64,
    /// BTM aborts by reason.
    pub btm_aborts: BTreeMap<AbortReason, u64>,
    /// Loads + stores issued.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (of the L1 misses).
    pub l2_misses: u64,
    /// Nacked transactional requests (each charged the 20-cycle retry).
    pub nacks: u64,
    /// UFO faults delivered to software (non-transactional accesses).
    pub ufo_faults: u64,
    /// Timer interrupts serviced.
    pub interrupts: u64,
    /// Cycles spent in explicit stalls (`stall`).
    pub stall_cycles: u64,
    /// Cycles charged to nack retries (coherence back-pressure), including
    /// injected-nack responder delay. Table 4-style attribution: this is
    /// the "waiting on the interconnect" share of a run.
    pub nack_stall_cycles: u64,
}

impl CpuStats {
    /// Total BTM aborts across all reasons.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.btm_aborts.values().sum()
    }

    /// Aborts for one reason.
    #[must_use]
    pub fn aborts(&self, reason: AbortReason) -> u64 {
        self.btm_aborts.get(&reason).copied().unwrap_or(0)
    }

    pub(crate) fn record_abort(&mut self, reason: AbortReason) {
        *self.btm_aborts.entry(reason).or_insert(0) += 1;
    }

    /// Adds another CPU's counters into this one.
    ///
    /// Destructures exhaustively: adding a field to [`CpuStats`] will not
    /// compile until it is merged here, so `aggregate()` can never silently
    /// drop a new counter.
    pub fn merge(&mut self, other: &CpuStats) {
        let CpuStats {
            btm_commits,
            btm_aborts,
            accesses,
            l1_misses,
            l2_misses,
            nacks,
            ufo_faults,
            interrupts,
            stall_cycles,
            nack_stall_cycles,
        } = other;
        self.btm_commits += btm_commits;
        for (&r, &n) in btm_aborts {
            *self.btm_aborts.entry(r).or_insert(0) += n;
        }
        self.accesses += accesses;
        self.l1_misses += l1_misses;
        self.l2_misses += l2_misses;
        self.nacks += nacks;
        self.ufo_faults += ufo_faults;
        self.interrupts += interrupts;
        self.stall_cycles += stall_cycles;
        self.nack_stall_cycles += nack_stall_cycles;
    }
}

/// All counters for a machine: one [`CpuStats`] per CPU.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Per-CPU counters, indexed by CPU id.
    pub cpus: Vec<CpuStats>,
}

impl MachineStats {
    pub(crate) fn new(cpus: usize) -> Self {
        MachineStats {
            cpus: vec![CpuStats::default(); cpus],
        }
    }

    /// Sums the per-CPU counters.
    #[must_use]
    pub fn aggregate(&self) -> CpuStats {
        let mut total = CpuStats::default();
        for c in &self.cpus {
            total.merge(c);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_aggregate() {
        let mut s = MachineStats::new(2);
        s.cpus[0].btm_commits = 3;
        s.cpus[0].record_abort(AbortReason::Conflict);
        s.cpus[1].btm_commits = 4;
        s.cpus[1].record_abort(AbortReason::Conflict);
        s.cpus[1].record_abort(AbortReason::Overflow);
        let agg = s.aggregate();
        assert_eq!(agg.btm_commits, 7);
        assert_eq!(agg.aborts(AbortReason::Conflict), 2);
        assert_eq!(agg.aborts(AbortReason::Overflow), 1);
        assert_eq!(agg.total_aborts(), 3);
        assert_eq!(agg.aborts(AbortReason::Io), 0);
    }
}
