//! The [`Machine`]: CPUs, clocks, and the instruction-level API.
//!
//! A `Machine` is a purely sequential object — callers interleave CPUs by
//! choosing which CPU's "instruction" to execute next (the `ufotm-sim`
//! engine always picks the CPU with the smallest local clock, giving a
//! deterministic lockstep interleaving). Every operation charges cycles to
//! the issuing CPU's local clock according to the [`CostModel`].

use std::fmt;

use crate::addr::Addr;
use crate::bits::cpu_bit;
use crate::btm::{AbortInfo, AbortReason, BtmCpu, BtmEvent, BtmStatus};
use crate::cache::{L1Cache, L2Cache};
use crate::chaos::{ChaosFaultKind, ChaosState};
use crate::coherence::Directory;
use crate::config::MachineConfig;
use crate::mem::MemImage;
use crate::persist::PersistState;
use crate::stats::MachineStats;
use crate::swap::SwapState;
use crate::ufo::{UfoBits, UfoFaultKind};

/// Identifies a simulated CPU (0-based).
pub type CpuId = usize;

/// Result type of machine operations.
pub type AccessResult<T> = Result<T, AccessError>;

/// Why a machine operation did not complete normally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// The CPU's BTM transaction aborted. The machine has already finalized
    /// the abort (speculative state discarded, statistics recorded); the
    /// caller unwinds to its abort handler.
    TxnAbort(AbortInfo),
    /// A transactional coherence request lost age arbitration and was
    /// nacked. The nack-retry delay has already been charged; the caller
    /// simply retries the access. Only returned while in a transaction.
    Nacked,
    /// A non-transactional access (or, with a stall/handler policy, a
    /// transactional one) hit a UFO-protected line. The access did **not**
    /// complete; software decides how to resolve the conflict.
    UfoFault {
        /// The faulting address.
        addr: Addr,
        /// Whether the faulting access was a write.
        kind: UfoFaultKind,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::TxnAbort(info) => write!(f, "transaction aborted: {info}"),
            AccessError::Nacked => f.write_str("transactional request nacked"),
            AccessError::UfoFault { addr, kind } => {
                write!(f, "UFO {kind} fault at {addr}")
            }
        }
    }
}

impl std::error::Error for AccessError {}

/// Unwrapping extension for machine results on *plain-access* paths.
///
/// Software layers frequently issue machine operations at points where the
/// protocol guarantees the operation cannot fail: the CPU is outside any BTM
/// transaction (so no [`AccessError::TxnAbort`], and no
/// [`AccessError::Nacked`] — NACKs, including chaos-injected ones, target
/// only live-transaction requesters), and UFO fault delivery is either
/// disabled or already resolved by the caller. Scattering `.unwrap()` /
/// `.expect()` over such sites is exactly the chaos-NACK crash class: a
/// later protocol change silently turns the "impossible" error into a
/// panic. The `panicking-machine-access` pass of `cargo xtask analyze`
/// rejects those raw unwraps; this trait is the audited replacement — one
/// place that states the invariant, with a per-site label for diagnostics.
pub trait PlainAccess<T> {
    /// Unwraps the result of a machine operation issued on a plain-access
    /// path, panicking with `what` and the machine error if the protocol
    /// invariant above was violated (always a bug in the calling layer).
    fn plain(self, what: &str) -> T;
}

impl<T> PlainAccess<T> for AccessResult<T> {
    #[track_caller]
    fn plain(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("{what}: machine error on a plain-access path: {e}"),
        }
    }
}

/// The simulated multiprocessor. See the [crate docs](crate) for an overview.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) mem: MemImage,
    pub(crate) dir: Directory,
    pub(crate) l1: Vec<L1Cache>,
    pub(crate) l2: L2Cache,
    pub(crate) btm: Vec<BtmCpu>,
    /// Bitmask of CPUs with an active (live or doomed) BTM transaction —
    /// lets conflict arbitration walk only transacting CPUs instead of
    /// scanning `0..cpus` on every access.
    pub(crate) live_txns: u64,
    pub(crate) ufo_enabled: Vec<bool>,
    pub(crate) clock: Vec<u64>,
    pub(crate) next_timer: Vec<u64>,
    pub(crate) txn_seq: u64,
    pub(crate) stats: MachineStats,
    pub(crate) swap: Option<SwapState>,
    pub(crate) chaos: Option<ChaosState>,
    pub(crate) persist: Option<PersistState>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cpus", &self.cfg.cpus)
            .field("clock", &self.clock)
            .field("txn_seq", &self.txn_seq)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.cpus` is in `1..=64`. The software layers above
    /// (notably the USTM ownership table) encode CPU sets as `u64` bitmasks,
    /// so a 65th CPU would silently alias CPU 0 via the masked shift. The
    /// named constructors already assert this, but `MachineConfig` is a
    /// plain struct — this guard cannot be bypassed by literal construction.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Self {
        let cpus = cfg.cpus;
        assert!(
            (1..=64).contains(&cpus),
            "cpus must be in 1..=64 (owner masks are u64 bitmasks), got {cpus}"
        );
        // The preset FaultPlan constructors are const fns and cannot examine
        // floats, so a hand-built plan is validated here — the one gate every
        // construction path passes through.
        if let Some(plan) = &cfg.fault_plan {
            plan.validate();
        }
        let first_timer = cfg.timer_quantum.unwrap_or(u64::MAX);
        Machine {
            mem: MemImage::new(cfg.memory_words),
            dir: Directory::new(cfg.memory_lines()),
            l1: (0..cpus).map(|_| L1Cache::new(cfg.l1)).collect(),
            l2: L2Cache::new(cfg.l2),
            // Pre-size each CPU's speculative buffers to L1 capacity: the
            // bounded BTM can never track more lines than fit in the L1, so
            // the steady state allocates nothing per transaction.
            btm: (0..cpus)
                .map(|_| BtmCpu::with_capacity(cfg.l1.sets() * cfg.l1.ways()))
                .collect(),
            live_txns: 0,
            ufo_enabled: vec![false; cpus],
            clock: vec![0; cpus],
            next_timer: vec![first_timer; cpus],
            txn_seq: 0,
            stats: MachineStats::new(cpus),
            swap: None,
            chaos: cfg.fault_plan.map(ChaosState::new),
            persist: cfg.persist.map(|p| PersistState::new(p, cfg.memory_words)),
            cfg,
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of CPUs.
    #[must_use]
    pub fn cpus(&self) -> usize {
        self.cfg.cpus
    }

    /// The local cycle clock of `cpu`.
    #[must_use]
    pub fn now(&self, cpu: CpuId) -> u64 {
        self.clock[cpu]
    }

    /// All local clocks (used by the lockstep scheduler).
    #[must_use]
    pub fn clocks(&self) -> &[u64] {
        &self.clock
    }

    /// Event counters gathered so far.
    #[must_use]
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Resets all event counters (clocks are left running).
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::new(self.cfg.cpus);
        if let Some(s) = &mut self.swap {
            s.reset_stats();
        }
        if let Some(c) = &mut self.chaos {
            c.stats = crate::ChaosStats::default();
        }
        if let Some(p) = &mut self.persist {
            p.stats = crate::PersistStats::default();
        }
    }

    /// Whether `cpu` is currently inside a (live or doomed) BTM transaction.
    #[must_use]
    pub fn in_txn(&self, cpu: CpuId) -> bool {
        self.btm[cpu].active
    }

    /// The age timestamp of `cpu`'s current transaction (smaller = older).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not in a transaction.
    #[must_use]
    pub fn txn_ts(&self, cpu: CpuId) -> u64 {
        assert!(self.btm[cpu].active, "cpu {cpu} not in a BTM transaction");
        self.btm[cpu].ts
    }

    /// Reads the transactional status registers.
    #[must_use]
    pub fn btm_status(&self, cpu: CpuId) -> BtmStatus {
        self.btm[cpu].status()
    }

    pub(crate) fn charge(&mut self, cpu: CpuId, cycles: u64) {
        self.clock[cpu] += cycles;
    }

    /// The single audited route by which simulated execution commits a word
    /// to the memory image. Durability is modelled *explicitly* — a write
    /// lands in volatile memory and survives a power failure only after a
    /// [`Machine::persist_flush`] of its line is covered by a
    /// [`Machine::persist_fence`] — so every store path must funnel through
    /// here rather than shadow-updating the durable image. The
    /// `persist-bypass` pass of `cargo xtask analyze` rejects direct
    /// `mem.write` calls elsewhere in this crate.
    pub(crate) fn mem_write(&mut self, addr: Addr, value: u64) {
        // analyze: allow(persist-bypass) -- the interception point itself: this is the one sanctioned direct write, and it deliberately leaves the durable image untouched (durability comes only from flush+fence).
        self.mem.write(addr, value);
    }

    /// Runs the per-operation preamble: service any pending timer interrupt
    /// (which dooms an in-flight transaction) and surface a pending doom.
    pub(crate) fn begin_op(&mut self, cpu: CpuId) -> AccessResult<()> {
        if let Some(q) = self.cfg.timer_quantum {
            if self.clock[cpu] >= self.next_timer[cpu] {
                self.stats.cpus[cpu].interrupts += 1;
                self.charge(cpu, self.cfg.costs.interrupt_service);
                // Re-arm relative to the post-service clock: missed quanta
                // collapse into the one interrupt just delivered.
                self.next_timer[cpu] = self.clock[cpu] + q;
                if self.btm[cpu].active && self.btm[cpu].doomed.is_none() {
                    self.btm[cpu].doomed = Some(AbortInfo::new(AbortReason::Interrupt));
                }
            }
        }
        // Chaos: spuriously doom a live transaction at this instruction
        // boundary; the pending-doom path below finalizes it normally.
        if self.btm[cpu].active
            && self.btm[cpu].doomed.is_none()
            && self.chaos_roll(ChaosFaultKind::SpuriousAbort)
        {
            self.btm[cpu].doomed = Some(AbortInfo::new(AbortReason::Spurious));
            self.chaos_record(cpu, ChaosFaultKind::SpuriousAbort);
        }
        // Chaos: latch a power-failure snapshot at this instruction
        // boundary, either at the plan's deterministic fail cycle or by a
        // probability roll. Only meaningful with a persistence domain, and
        // at most once per run; the deterministic path never consults the
        // injection PRNG, so fail-point sweeps do not perturb the schedule
        // of the other fault kinds.
        if self.persist.is_some() && !self.power_failed() {
            let planned = self
                .chaos
                .as_ref()
                .and_then(|c| c.plan.power_fail_at)
                .is_some_and(|at| self.clock[cpu] >= at);
            if (planned || self.chaos_roll(ChaosFaultKind::PowerFail)) && self.power_fail(cpu) {
                self.chaos_record(cpu, ChaosFaultKind::PowerFail);
            }
        }
        if self.btm[cpu].active {
            if let Some(info) = self.btm[cpu].doomed {
                self.finalize_abort(cpu, info);
                return Err(AccessError::TxnAbort(info));
            }
        }
        Ok(())
    }

    /// Discards `cpu`'s speculative state, records the abort, and charges the
    /// hardware abort cost.
    pub(crate) fn finalize_abort(&mut self, cpu: CpuId, info: AbortInfo) {
        debug_assert!(self.btm[cpu].active);
        self.charge(cpu, self.cfg.costs.btm_abort);
        // Speculatively-written lines never reached memory: drop them from
        // this CPU's cache and the directory. Staged through the reusable
        // scratch buffer because the cache/directory mutations below
        // preclude iterating the write set in place.
        let mut written = std::mem::take(&mut self.btm[cpu].scratch_lines);
        written.clear();
        // analyze: allow(nondet-iteration) -- order-insensitive: each line is invalidated/removed independently, no cycles are charged per element, and the final cache/directory state commutes.
        written.extend(self.btm[cpu].write_set.iter().copied());
        for &line in &written {
            if self.l1[cpu].invalidate(line).is_some() || self.dir.is_sharer(line, cpu) {
                self.dir.remove_sharer(line, cpu);
            }
        }
        written.clear();
        self.btm[cpu].scratch_lines = written;
        self.l1[cpu].flash_abort_spec();
        self.stats.cpus[cpu].record_abort(info.reason);
        self.btm[cpu].last_abort = Some(info);
        self.btm[cpu].reset();
        self.live_txns &= !cpu_bit(cpu);
    }

    /// Marks another CPU's live transaction as killed; it will notice (and
    /// finalize) at its next instruction boundary.
    pub(crate) fn doom(&mut self, victim: CpuId, info: AbortInfo) {
        let b = &mut self.btm[victim];
        if b.active && b.doomed.is_none() {
            b.doomed = Some(info);
        }
    }

    // --- BTM instructions (paper Table 1) -------------------------------

    /// `btm_begin`: starts (or nests) a hardware transaction.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if a pending doom is discovered, or
    /// if nesting exceeds the configured maximum depth
    /// ([`AbortReason::DepthOverflow`]).
    pub fn btm_begin(&mut self, cpu: CpuId) -> AccessResult<()> {
        self.begin_op(cpu)?;
        self.charge(cpu, self.cfg.costs.btm_begin);
        if self.btm[cpu].active {
            if self.btm[cpu].depth >= self.cfg.btm_max_depth {
                let info = AbortInfo::new(AbortReason::DepthOverflow);
                self.finalize_abort(cpu, info);
                return Err(AccessError::TxnAbort(info));
            }
            self.btm[cpu].depth += 1;
            return Ok(());
        }
        let ts = self.txn_seq;
        self.txn_seq += 1;
        let b = &mut self.btm[cpu];
        b.active = true;
        b.depth = 1;
        b.ts = ts;
        b.doomed = None;
        self.live_txns |= cpu_bit(cpu);
        Ok(())
    }

    /// `btm_end`: commits the innermost transaction; an outermost commit
    /// publishes the speculative writes and flash-clears the SR/SW bits.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if the transaction was doomed.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not in a transaction (a program bug, not a
    /// simulated fault).
    pub fn btm_end(&mut self, cpu: CpuId) -> AccessResult<()> {
        assert!(self.btm[cpu].active, "btm_end outside a transaction");
        self.begin_op(cpu)?;
        self.charge(cpu, self.cfg.costs.btm_commit);
        if self.btm[cpu].depth > 1 {
            self.btm[cpu].depth -= 1;
            return Ok(());
        }
        // Outermost commit: publish the write buffer, staged through the
        // reusable scratch buffer.
        let mut writes = std::mem::take(&mut self.btm[cpu].scratch_writes);
        writes.clear();
        // analyze: allow(nondet-iteration) -- order-insensitive: speculative writes target distinct words, so the published memory image is identical under any HashMap iteration order, and no cycles are charged per element.
        writes.extend(self.btm[cpu].spec_writes.iter().map(|(&a, &v)| (a, v)));
        for &(word, value) in &writes {
            self.mem_write(Addr::from_word_index(word), value);
        }
        writes.clear();
        self.btm[cpu].scratch_writes = writes;
        self.l1[cpu].flash_clear_spec();
        self.stats.cpus[cpu].btm_commits += 1;
        self.btm[cpu].reset();
        self.live_txns &= !cpu_bit(cpu);
        Ok(())
    }

    /// `btm_abort`: explicitly aborts the current transaction, returning the
    /// recorded abort information.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not in a transaction.
    pub fn btm_abort(&mut self, cpu: CpuId) -> AbortInfo {
        self.btm_abort_with(cpu, AbortInfo::new(AbortReason::Explicit))
    }

    /// Aborts the current transaction with a caller-supplied reason. Used by
    /// software policy layers, e.g. to convert a UFO fault taken inside a
    /// hardware transaction into an abort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not in a transaction.
    pub fn btm_abort_with(&mut self, cpu: CpuId, info: AbortInfo) -> AbortInfo {
        assert!(self.btm[cpu].active, "btm_abort outside a transaction");
        // A doom that raced in first takes precedence.
        let info = self.btm[cpu].doomed.unwrap_or(info);
        self.finalize_abort(cpu, info);
        info
    }

    /// Raises a transactional event (syscall, I/O, exception, …). Inside a
    /// transaction this aborts it; outside, it merely charges time.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] when executed inside a transaction.
    pub fn btm_event(&mut self, cpu: CpuId, event: BtmEvent) -> AccessResult<()> {
        self.begin_op(cpu)?;
        self.charge(cpu, self.cfg.costs.fault_dispatch);
        if self.btm[cpu].active {
            let info = AbortInfo::new(event.abort_reason());
            self.finalize_abort(cpu, info);
            return Err(AccessError::TxnAbort(info));
        }
        Ok(())
    }

    // --- UFO instructions (paper Table 2) --------------------------------

    /// Whether UFO faults are enabled on `cpu`.
    #[must_use]
    pub fn ufo_enabled(&self, cpu: CpuId) -> bool {
        self.ufo_enabled[cpu]
    }

    /// `enable_ufo` / `disable_ufo`: toggles UFO fault delivery for `cpu`.
    pub fn set_ufo_enabled(&mut self, cpu: CpuId, enabled: bool) {
        self.ufo_enabled[cpu] = enabled;
    }

    /// `read_ufo_bits`: returns the UFO bits of the line containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if a pending doom is discovered.
    pub fn read_ufo_bits(&mut self, cpu: CpuId, addr: Addr) -> AccessResult<UfoBits> {
        self.begin_op(cpu)?;
        self.charge(cpu, self.cfg.costs.ufo_op);
        self.page_in_if_needed(cpu, addr)?;
        Ok(self.dir.ufo(addr.line()))
    }

    /// `set_ufo_bits`: replaces the UFO bits of the line containing `addr`.
    ///
    /// Acquiring the required exclusive coherence permission invalidates all
    /// other cached copies and kills speculative holders with
    /// [`AbortReason::UfoSet`] (subject to the configured
    /// [`UfoKillPolicy`](crate::UfoKillPolicy)).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if issued inside a BTM transaction
    /// (modelled as an illegal operation) or if a pending doom is discovered.
    pub fn set_ufo_bits(&mut self, cpu: CpuId, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        self.ufo_update(cpu, addr, bits, false)
    }

    /// `add_ufo_bits`: ORs `bits` into the line's UFO bits (same coherence
    /// behaviour as [`Machine::set_ufo_bits`]).
    ///
    /// # Errors
    ///
    /// As for [`Machine::set_ufo_bits`].
    pub fn add_ufo_bits(&mut self, cpu: CpuId, addr: Addr, bits: UfoBits) -> AccessResult<()> {
        self.ufo_update(cpu, addr, bits, true)
    }

    // --- Time ------------------------------------------------------------

    /// Charges `cycles` of computation to `cpu`'s clock.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if a pending doom is discovered.
    pub fn work(&mut self, cpu: CpuId, cycles: u64) -> AccessResult<()> {
        self.begin_op(cpu)?;
        self.charge(cpu, cycles);
        Ok(())
    }

    /// Charges `cycles` of stall time (counted separately in the stats).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if a pending doom is discovered.
    pub fn stall(&mut self, cpu: CpuId, cycles: u64) -> AccessResult<()> {
        self.begin_op(cpu)?;
        self.charge(cpu, cycles);
        self.stats.cpus[cpu].stall_cycles += cycles;
        Ok(())
    }

    /// Reads a word without simulating anything (no cycles, no coherence, no
    /// faults) — for harness setup, verification, and debugging only.
    #[must_use]
    pub fn peek(&self, addr: Addr) -> u64 {
        self.mem.read(addr)
    }

    /// Reads a line's UFO bits without simulating anything — for
    /// verification and debugging only.
    #[must_use]
    pub fn peek_ufo(&self, line: crate::LineAddr) -> crate::UfoBits {
        self.dir.ufo(line)
    }

    /// Asserts the machine's internal invariants (for tests and property
    /// checks): cache structural invariants, L1↔directory residency
    /// agreement, and speculative bits only under live transactions.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated (always a bug in this crate).
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        for (cpu, b) in self.btm.iter().enumerate() {
            assert_eq!(
                self.live_txns & cpu_bit(cpu) != 0,
                b.active,
                "live-txn mask out of sync with cpu {cpu}"
            );
        }
        for (cpu, l1) in self.l1.iter().enumerate() {
            l1.validate();
            for e in l1.entries() {
                assert!(
                    self.dir.is_sharer(e.line, cpu),
                    "cpu {cpu} caches {:?} without a directory entry",
                    e.line
                );
                if e.sr || e.sw {
                    assert!(
                        self.btm[cpu].active,
                        "cpu {cpu} has speculative bits on {:?} outside a txn",
                        e.line
                    );
                }
            }
            let b = &self.btm[cpu];
            if !b.active {
                assert!(
                    b.spec_writes.is_empty() && b.read_set.is_empty() && b.write_set.is_empty()
                );
            } else {
                // analyze: allow(nondet-iteration) -- order-insensitive: assertion-only sweep; every key is checked independently and nothing is charged or mutated.
                for &word in b.spec_writes.keys() {
                    let line = Addr::from_word_index(word).line();
                    assert!(
                        b.write_set.contains(&line),
                        "spec write to {word} outside the write set"
                    );
                }
            }
        }
        // Directory sharers must be cached (except spilled unbounded lines,
        // which leave the directory too — so strict equality holds).
        for cpu in 0..self.cfg.cpus {
            for line in self.l1[cpu].entries().map(|e| e.line) {
                assert!(self.dir.is_sharer(line, cpu));
            }
        }
    }

    /// Writes a word without simulating anything — for harness setup only.
    /// With a persistence domain configured, the poke writes through to the
    /// durable image too (setup state counts as already persistent).
    ///
    /// # Panics
    ///
    /// Panics if any CPU is inside a BTM transaction (pokes under a live
    /// transaction would break speculative bookkeeping).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        assert!(
            self.btm.iter().all(|b| !b.active),
            "poke while a BTM transaction is active"
        );
        // analyze: allow(persist-bypass) -- host-side setup route: pokes are not simulated execution, and they intentionally update the durable image in the same step so harness-initialized state survives an injected power failure.
        self.mem.write(addr, value);
        if let Some(p) = &mut self.persist {
            p.poke_durable(addr, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    #[should_panic(expected = "cpus must be in 1..=64")]
    fn more_than_64_cpus_is_rejected() {
        // Regression: the named MachineConfig constructors assert the CPU
        // range, but a struct-literal config could bypass them; owner masks
        // above the machine are u64 bitmasks, so CPU 64 would alias CPU 0.
        let mut cfg = MachineConfig::small(2);
        cfg.cpus = 65;
        let _ = Machine::new(cfg);
    }

    #[test]
    fn btm_commit_publishes_writes() {
        let mut m = Machine::new(MachineConfig::small(1));
        let a = Addr::from_word_index(10);
        m.btm_begin(0).unwrap();
        m.store(0, a, 5).unwrap();
        assert_eq!(m.load(0, a).unwrap(), 5, "txn sees its own write");
        assert_eq!(m.peek(a), 0, "memory unchanged before commit");
        m.btm_end(0).unwrap();
        assert_eq!(m.peek(a), 5);
        assert_eq!(m.stats().cpus[0].btm_commits, 1);
    }

    #[test]
    fn btm_abort_discards_writes() {
        let mut m = Machine::new(MachineConfig::small(1));
        let a = Addr::from_word_index(10);
        m.store(0, a, 1).unwrap();
        m.btm_begin(0).unwrap();
        m.store(0, a, 2).unwrap();
        let info = m.btm_abort(0);
        assert_eq!(info.reason, AbortReason::Explicit);
        assert_eq!(m.peek(a), 1);
        assert_eq!(m.load(0, a).unwrap(), 1);
        assert_eq!(
            m.btm_status(0).last_abort.unwrap().reason,
            AbortReason::Explicit
        );
        assert!(!m.btm_status(0).in_txn);
    }

    #[test]
    fn flattened_nesting_commits_only_at_outermost() {
        let mut m = Machine::new(MachineConfig::small(1));
        let a = Addr::from_word_index(3);
        m.btm_begin(0).unwrap();
        m.btm_begin(0).unwrap();
        m.store(0, a, 9).unwrap();
        m.btm_end(0).unwrap();
        assert_eq!(m.peek(a), 0, "inner commit publishes nothing");
        assert!(m.btm_status(0).in_txn);
        m.btm_end(0).unwrap();
        assert_eq!(m.peek(a), 9);
    }

    #[test]
    fn nesting_depth_overflow_aborts() {
        let mut cfg = MachineConfig::small(1);
        cfg.btm_max_depth = 2;
        let mut m = Machine::new(cfg);
        m.btm_begin(0).unwrap();
        m.btm_begin(0).unwrap();
        let err = m.btm_begin(0).unwrap_err();
        assert_eq!(
            err,
            AccessError::TxnAbort(AbortInfo::new(AbortReason::DepthOverflow))
        );
        assert!(!m.btm_status(0).in_txn);
    }

    #[test]
    fn syscall_aborts_transaction_but_not_plain_code() {
        let mut m = Machine::new(MachineConfig::small(1));
        m.btm_event(0, BtmEvent::Syscall).unwrap();
        m.btm_begin(0).unwrap();
        let err = m.btm_event(0, BtmEvent::Syscall).unwrap_err();
        assert_eq!(
            err,
            AccessError::TxnAbort(AbortInfo::new(AbortReason::Syscall))
        );
    }

    #[test]
    fn timer_interrupt_dooms_transaction() {
        let mut cfg = MachineConfig::small(1);
        cfg.timer_quantum = Some(1_000);
        let mut m = Machine::new(cfg);
        m.btm_begin(0).unwrap();
        m.work(0, 2_000).unwrap(); // crosses the quantum boundary
        let err = m.work(0, 1).unwrap_err();
        assert_eq!(
            err,
            AccessError::TxnAbort(AbortInfo::new(AbortReason::Interrupt))
        );
        assert!(m.stats().cpus[0].interrupts >= 1);
    }

    #[test]
    fn clock_advances_per_work() {
        let mut m = Machine::new(MachineConfig::small(2));
        m.work(0, 100).unwrap();
        assert_eq!(m.now(0), 100);
        assert_eq!(m.now(1), 0);
        m.stall(1, 50).unwrap();
        assert_eq!(m.now(1), 50);
        assert_eq!(m.stats().cpus[1].stall_cycles, 50);
    }

    #[test]
    #[should_panic(expected = "poke while")]
    fn poke_under_txn_panics() {
        let mut m = Machine::new(MachineConfig::small(1));
        m.btm_begin(0).unwrap();
        m.poke(Addr(0), 1);
    }
}
