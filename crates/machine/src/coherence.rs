//! The coherence directory.
//!
//! One entry per cache line of the memory image records which CPUs hold the
//! line (a sharer bitmask), whether one of them holds it exclusively, and the
//! line's UFO bits — the UFO bits are directory/memory state precisely so
//! that they "travel with the data" and stay coherent, as the paper's
//! Appendix A prescribes. Protocol *actions* (who gets invalidated, which
//! speculative transactions die) are orchestrated by
//! [`Machine`](crate::Machine); this module only maintains the state and its
//! invariants.

use crate::addr::LineAddr;
use crate::bits::{cpu_bit, BitIter};
use crate::ufo::UfoBits;

/// Directory state for one line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct LineState {
    /// Bitmask of CPUs with the line in their L1.
    pub sharers: u64,
    /// CPU holding the line exclusively, if any.
    pub owner: Option<u8>,
    /// The line's UFO protection bits.
    pub ufo: UfoBits,
}

/// The full directory: dense per-line state.
#[derive(Clone, Debug)]
pub(crate) struct Directory {
    lines: Vec<LineState>,
}

impl Directory {
    pub fn new(lines: u64) -> Self {
        Directory {
            lines: vec![
                LineState::default();
                usize::try_from(lines).expect("line count fits usize")
            ],
        }
    }

    fn idx(&self, line: LineAddr) -> usize {
        let i = line.index();
        assert!(
            (i as usize) < self.lines.len(),
            "line {line:?} outside directory ({} lines)",
            self.lines.len()
        );
        i as usize
    }

    pub fn state(&self, line: LineAddr) -> LineState {
        self.lines[self.idx(line)]
    }

    /// CPUs (other than `except`) currently holding the line. Walks only
    /// the set bits of the sharer mask, so the cost tracks the actual
    /// holder count rather than a fixed 0..64 scan.
    #[allow(dead_code)] // the hot paths copy the mask via holders_mask_except
    pub fn holders_except(&self, line: LineAddr, except: usize) -> BitIter {
        BitIter::new(self.holders_mask_except(line, except))
    }

    /// The sharer mask with `except` removed. The mask is `Copy`, so
    /// callers that need to mutate the machine per holder can grab it
    /// first and iterate `BitIter::new(mask)` without borrowing `self`.
    pub fn holders_mask_except(&self, line: LineAddr, except: usize) -> u64 {
        self.state(line).sharers & !cpu_bit(except)
    }

    /// Whether `cpu` holds the line (in any state).
    pub fn is_sharer(&self, line: LineAddr, cpu: usize) -> bool {
        self.state(line).sharers & cpu_bit(cpu) != 0
    }

    /// Number of CPUs holding the line (the chaos engine scales injected
    /// nack delays by how many caches would have had to respond).
    pub fn sharer_count(&self, line: LineAddr) -> u32 {
        self.state(line).sharers.count_ones()
    }

    /// Records `cpu` as a (non-exclusive) sharer; demotes any owner flag if
    /// the owner keeps a shared copy.
    pub fn add_sharer(&mut self, line: LineAddr, cpu: usize) {
        let i = self.idx(line);
        self.lines[i].sharers |= cpu_bit(cpu);
        self.lines[i].owner = None;
        self.check(line);
    }

    /// Records `cpu` as the sole, exclusive holder.
    pub fn set_exclusive(&mut self, line: LineAddr, cpu: usize) {
        let i = self.idx(line);
        self.lines[i].sharers = cpu_bit(cpu);
        self.lines[i].owner = Some(cpu as u8);
        self.check(line);
    }

    /// Removes `cpu` from the sharer set (eviction or invalidation).
    pub fn remove_sharer(&mut self, line: LineAddr, cpu: usize) {
        let i = self.idx(line);
        self.lines[i].sharers &= !cpu_bit(cpu);
        if self.lines[i].owner == Some(cpu as u8) {
            self.lines[i].owner = None;
        }
        self.check(line);
    }

    pub fn ufo(&self, line: LineAddr) -> UfoBits {
        self.state(line).ufo
    }

    pub fn set_ufo(&mut self, line: LineAddr, bits: UfoBits) {
        let i = self.idx(line);
        self.lines[i].ufo = bits;
    }

    pub fn or_ufo(&mut self, line: LineAddr, bits: UfoBits) {
        let i = self.idx(line);
        self.lines[i].ufo |= bits;
    }

    /// Debug invariant: an exclusive owner is the only sharer.
    fn check(&self, line: LineAddr) {
        let s = self.state(line);
        if let Some(o) = s.owner {
            debug_assert_eq!(
                s.sharers,
                cpu_bit(o as usize),
                "owner {o} of {line:?} must be sole sharer"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bookkeeping() {
        let mut d = Directory::new(8);
        let l = LineAddr(2);
        d.add_sharer(l, 0);
        d.add_sharer(l, 3);
        assert!(d.is_sharer(l, 0) && d.is_sharer(l, 3) && !d.is_sharer(l, 1));
        assert_eq!(d.holders_except(l, 0).collect::<Vec<_>>(), vec![3]);
        d.remove_sharer(l, 0);
        assert!(!d.is_sharer(l, 0));
    }

    #[test]
    fn exclusive_ownership_replaces_sharers() {
        let mut d = Directory::new(8);
        let l = LineAddr(1);
        d.add_sharer(l, 0);
        d.add_sharer(l, 1);
        d.set_exclusive(l, 2);
        assert_eq!(d.state(l).owner, Some(2));
        assert!(d.is_sharer(l, 2) && !d.is_sharer(l, 0));
        d.remove_sharer(l, 2);
        assert_eq!(d.state(l).owner, None);
    }

    #[test]
    fn ufo_bits_are_per_line() {
        let mut d = Directory::new(4);
        d.set_ufo(LineAddr(0), UfoBits::FAULT_ON_WRITE);
        d.or_ufo(LineAddr(0), UfoBits::FAULT_ON_READ);
        assert_eq!(d.ufo(LineAddr(0)), UfoBits::FAULT_ON_BOTH);
        assert_eq!(d.ufo(LineAddr(1)), UfoBits::NONE);
        d.set_ufo(LineAddr(0), UfoBits::NONE);
        assert!(d.ufo(LineAddr(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "outside directory")]
    fn out_of_range_line_panics() {
        Directory::new(2).ufo(LineAddr(2));
    }
}
