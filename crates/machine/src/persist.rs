//! The simulated-NVM persistence domain: a persist buffer over a durable
//! line image, with cycle-charged `flush`/`fence` operations and a
//! power-failure snapshot hook for the chaos engine.
//!
//! The model follows the usual persistent-memory abstraction: ordinary
//! stores land in the *volatile* memory image; a [`Machine::persist_flush`]
//! captures one cache line's current contents into a bounded persist buffer;
//! a [`Machine::persist_fence`] drains the buffer into the *durable* image.
//! Data is guaranteed to survive a power failure only once a fence covering
//! its flush has completed — a flush alone merely queues the line, and a
//! full buffer drains its **oldest** entry early (so large writes become
//! durable in flush order, which is what makes torn multi-line records
//! detectable rather than silently reordered).
//!
//! A power failure ([`ChaosFaultKind::PowerFail`](crate::ChaosFaultKind), or
//! an explicit [`Machine::power_fail`]) *latches* a [`CrashImage`]: a copy
//! of the durable image plus the failing cycle. The simulation itself keeps
//! running (the remainder of the run is the ghost execution a real machine
//! would never perform — harnesses ignore it); recovery is modelled by
//! booting a fresh machine from the latched image via
//! [`Machine::install_image`]. This keeps the machine purely sequential and
//! the pre-crash trace journal bit-for-bit replayable.
//!
//! The domain is off by default; configure it with
//! [`MachineConfig::persist`](crate::MachineConfig).

use std::collections::VecDeque;

use crate::addr::{Addr, LineAddr, LINE_WORDS};
use crate::btm::{AbortInfo, AbortReason};
use crate::machine::{AccessError, AccessResult, CpuId, Machine};

/// Configuration for the persistence domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PersistConfig {
    /// Capacity of the persist buffer in cache lines. A flush that finds the
    /// buffer full first drains the oldest buffered line into the durable
    /// image (counted as a buffer eviction).
    pub buffer_lines: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig { buffer_lines: 8 }
    }
}

/// Counters for the persistence domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Lines flushed into the persist buffer.
    pub flushes: u64,
    /// Fences executed (each drains the whole buffer).
    pub fences: u64,
    /// Cycles charged by flushes.
    pub flush_cycles: u64,
    /// Cycles charged by fences.
    pub fence_cycles: u64,
    /// Oldest-entry drains forced by flushing into a full buffer.
    pub buffer_evictions: u64,
    /// High-water mark of persist-buffer occupancy (lines).
    pub max_buffer_occupancy: u64,
}

impl PersistStats {
    /// Adds another machine's persistence counters into this one.
    ///
    /// Destructures exhaustively so a newly added counter is a compile
    /// error until it is merged.
    pub fn merge(&mut self, other: &PersistStats) {
        let PersistStats {
            flushes,
            fences,
            flush_cycles,
            fence_cycles,
            buffer_evictions,
            max_buffer_occupancy,
        } = other;
        self.flushes += flushes;
        self.fences += fences;
        self.flush_cycles += flush_cycles;
        self.fence_cycles += fence_cycles;
        self.buffer_evictions += buffer_evictions;
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(*max_buffer_occupancy);
    }
}

/// The durable state latched by a power failure.
#[derive(Clone, Debug)]
pub struct CrashImage {
    cycle: u64,
    cpu: CpuId,
    words: Vec<u64>,
}

impl CrashImage {
    /// The failing CPU's local clock when power was lost.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The CPU at whose instruction boundary the failure was injected.
    #[must_use]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// The durable memory image (fenced lines only; everything volatile —
    /// including flushed-but-unfenced buffer entries — is gone).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Per-machine persistence state (crate-internal).
#[derive(Clone, Debug)]
pub(crate) struct PersistState {
    cfg: PersistConfig,
    /// The durable image: what survives a power failure. Same geometry as
    /// the volatile memory image; updated only by fences, buffer evictions,
    /// and host-side pokes.
    durable: Vec<u64>,
    /// The persist buffer: flushed lines awaiting a fence, oldest first.
    queue: VecDeque<(LineAddr, [u64; LINE_WORDS as usize])>,
    pub stats: PersistStats,
    crash: Option<CrashImage>,
}

impl PersistState {
    pub fn new(cfg: PersistConfig, memory_words: u64) -> Self {
        assert!(
            cfg.buffer_lines >= 1,
            "persist buffer needs at least one line"
        );
        PersistState {
            cfg,
            durable: vec![0; usize::try_from(memory_words).expect("memory size fits usize")],
            queue: VecDeque::new(),
            stats: PersistStats::default(),
            crash: None,
        }
    }

    /// Writes one buffered line into the durable image.
    fn drain(&mut self, line: LineAddr, words: &[u64; LINE_WORDS as usize]) {
        let base = line.base_addr().word_index();
        for (i, &w) in words.iter().enumerate() {
            let idx = base + i as u64;
            if idx < self.durable.len() as u64 {
                self.durable[idx as usize] = w;
            }
        }
    }

    pub fn poke_durable(&mut self, addr: Addr, value: u64) {
        let idx = addr.word_index();
        if idx < self.durable.len() as u64 {
            self.durable[idx as usize] = value;
        }
    }
}

impl Machine {
    /// Whether a persistence domain is configured.
    #[must_use]
    pub fn persist_enabled(&self) -> bool {
        self.persist.is_some()
    }

    /// Persistence counters (all zero when no domain is configured).
    #[must_use]
    pub fn persist_stats(&self) -> PersistStats {
        self.persist.as_ref().map(|p| p.stats).unwrap_or_default()
    }

    /// Captures the line containing `addr` (its current committed memory
    /// contents) into the persist buffer. A no-op without a persistence
    /// domain, so volatile runs are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::TxnAbort`] if issued inside a BTM transaction
    /// (persistence operations are not transactional — modelled as an
    /// illegal operation, like UFO-bit updates) or if a pending doom is
    /// discovered.
    pub fn persist_flush(&mut self, cpu: CpuId, addr: Addr) -> AccessResult<()> {
        if self.persist.is_none() {
            return Ok(());
        }
        self.begin_op(cpu)?;
        let cost = self.cfg.costs.persist_flush;
        self.charge(cpu, cost);
        if self.btm[cpu].active {
            let info = AbortInfo::at(AbortReason::IllegalOp, addr);
            self.finalize_abort(cpu, info);
            return Err(AccessError::TxnAbort(info));
        }
        let line = addr.line();
        let base = line.base_addr().word_index();
        let mut words = [0u64; LINE_WORDS as usize];
        for (i, w) in words.iter_mut().enumerate() {
            let idx = base + i as u64;
            if idx < self.mem.len() {
                *w = self.mem.read(Addr::from_word_index(idx));
            }
        }
        let p = self.persist.as_mut().expect("persist present");
        p.stats.flushes += 1;
        p.stats.flush_cycles += cost;
        if p.queue.len() >= p.cfg.buffer_lines {
            if let Some((l, w)) = p.queue.pop_front() {
                p.stats.buffer_evictions += 1;
                p.drain(l, &w);
            }
        }
        p.queue.push_back((line, words));
        p.stats.max_buffer_occupancy = p.stats.max_buffer_occupancy.max(p.queue.len() as u64);
        Ok(())
    }

    /// Drains the entire persist buffer into the durable image, oldest
    /// entry first. This is the durability point: a line survives a power
    /// failure only once a fence covering its flush has completed. A no-op
    /// without a persistence domain.
    ///
    /// # Errors
    ///
    /// As for [`Machine::persist_flush`].
    pub fn persist_fence(&mut self, cpu: CpuId) -> AccessResult<()> {
        if self.persist.is_none() {
            return Ok(());
        }
        self.begin_op(cpu)?;
        let cost = self.cfg.costs.persist_fence;
        self.charge(cpu, cost);
        if self.btm[cpu].active {
            let info = AbortInfo::new(AbortReason::IllegalOp);
            self.finalize_abort(cpu, info);
            return Err(AccessError::TxnAbort(info));
        }
        let p = self.persist.as_mut().expect("persist present");
        p.stats.fences += 1;
        p.stats.fence_cycles += cost;
        while let Some((l, w)) = p.queue.pop_front() {
            p.drain(l, &w);
        }
        Ok(())
    }

    /// Latches a power failure at `cpu`'s current cycle: the durable image
    /// (fenced lines only) is snapshotted into a [`CrashImage`], and
    /// everything else — the volatile memory deltas, the persist buffer's
    /// unfenced lines, caches, live transactions — is considered lost.
    ///
    /// The simulation keeps running (the rest of the run is ghost execution
    /// a real machine would never perform); harnesses model the reboot by
    /// installing the latched image into a fresh machine with
    /// [`Machine::install_image`]. Returns whether the latch landed (`false`
    /// without a persistence domain, or if a failure was already latched).
    pub fn power_fail(&mut self, cpu: CpuId) -> bool {
        let cycle = self.clock[cpu];
        let Some(p) = &mut self.persist else {
            return false;
        };
        if p.crash.is_some() {
            return false;
        }
        p.crash = Some(CrashImage {
            cycle,
            cpu,
            words: p.durable.clone(),
        });
        true
    }

    /// Whether a power failure has been latched.
    #[must_use]
    pub fn power_failed(&self) -> bool {
        self.persist.as_ref().is_some_and(|p| p.crash.is_some())
    }

    /// The latched power-failure snapshot, if any.
    #[must_use]
    pub fn crash_image(&self) -> Option<&CrashImage> {
        self.persist.as_ref().and_then(|p| p.crash.as_ref())
    }

    /// A copy of the current durable image (`None` without a persistence
    /// domain). For recovery harnesses and durability assertions.
    #[must_use]
    pub fn durable_image(&self) -> Option<Vec<u64>> {
        self.persist.as_ref().map(|p| p.durable.clone())
    }

    /// Boots this machine from a memory image: both the volatile memory and
    /// (if a persistence domain is configured) the durable image are set to
    /// `words`. For crash-recovery harnesses — a freshly constructed machine
    /// plus `install_image(crash.words())` is the post-reboot state.
    ///
    /// # Panics
    ///
    /// Panics if any CPU is inside a BTM transaction or if `words` does not
    /// match the configured memory size.
    pub fn install_image(&mut self, words: &[u64]) {
        assert!(
            self.btm.iter().all(|b| !b.active),
            "install_image while a BTM transaction is active"
        );
        self.mem.load(words);
        if let Some(p) = &mut self.persist {
            assert_eq!(
                p.durable.len(),
                words.len(),
                "image size does not match configured memory"
            );
            p.durable.copy_from_slice(words);
            p.queue.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaosFaultKind, FaultPlan, MachineConfig};

    fn word(n: u64) -> Addr {
        Addr::from_word_index(n)
    }

    fn persistent_machine(buffer_lines: usize) -> Machine {
        let mut cfg = MachineConfig::small(2);
        cfg.persist = Some(PersistConfig { buffer_lines });
        Machine::new(cfg)
    }

    #[test]
    fn flush_alone_is_not_durable() {
        let mut m = persistent_machine(8);
        m.store(0, word(0), 7).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        assert!(m.power_fail(0));
        assert_eq!(
            m.crash_image().unwrap().words()[0],
            0,
            "unfenced flush lost"
        );
    }

    #[test]
    fn fence_makes_flushed_lines_durable() {
        let mut m = persistent_machine(8);
        m.store(0, word(0), 7).unwrap();
        m.store(0, word(8), 9).unwrap(); // a different line
        m.persist_flush(0, word(0)).unwrap();
        m.persist_fence(0).unwrap();
        assert!(m.power_fail(0));
        let img = m.crash_image().unwrap().words();
        assert_eq!(img[0], 7, "fenced line survives");
        assert_eq!(img[8], 0, "unflushed line does not");
        let s = m.persist_stats();
        assert_eq!((s.flushes, s.fences), (1, 1));
        assert!(s.flush_cycles > 0 && s.fence_cycles > 0);
    }

    #[test]
    fn full_buffer_drains_oldest_entry() {
        let mut m = persistent_machine(1);
        m.store(0, word(0), 1).unwrap();
        m.store(0, word(8), 2).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        m.persist_flush(0, word(8)).unwrap(); // evicts line 0 to durable
        assert!(m.power_fail(0));
        let img = m.crash_image().unwrap().words();
        assert_eq!(img[0], 1, "evicted entry drained to durable");
        assert_eq!(img[8], 0, "still-buffered entry lost");
        assert_eq!(m.persist_stats().buffer_evictions, 1);
        assert_eq!(m.persist_stats().max_buffer_occupancy, 1);
    }

    #[test]
    fn flush_captures_contents_at_flush_time() {
        let mut m = persistent_machine(8);
        m.store(0, word(0), 1).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        m.store(0, word(0), 2).unwrap(); // after the flush
        m.persist_fence(0).unwrap();
        assert_eq!(m.durable_image().unwrap()[0], 1);
    }

    #[test]
    fn poke_writes_through_to_durable() {
        let mut m = persistent_machine(8);
        m.poke(word(3), 42);
        assert_eq!(m.durable_image().unwrap()[3], 42);
    }

    #[test]
    fn volatile_machine_ops_are_noops() {
        let mut m = Machine::new(MachineConfig::small(1));
        let before = m.now(0);
        m.persist_flush(0, word(0)).unwrap();
        m.persist_fence(0).unwrap();
        assert_eq!(m.now(0), before, "no cycles charged without a domain");
        assert!(!m.power_fail(0));
        assert!(m.durable_image().is_none());
    }

    #[test]
    fn persist_ops_inside_txn_are_illegal() {
        let mut m = persistent_machine(8);
        m.btm_begin(0).unwrap();
        match m.persist_flush(0, word(0)).unwrap_err() {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::IllegalOp),
            other => panic!("{other:?}"),
        }
        m.btm_begin(0).unwrap();
        assert!(m.persist_fence(0).is_err());
    }

    #[test]
    fn install_image_restores_both_images() {
        let mut m = persistent_machine(8);
        m.store(0, word(0), 5).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        m.persist_fence(0).unwrap();
        assert!(m.power_fail(0));
        let img = m.crash_image().unwrap().words().to_vec();
        let mut fresh = persistent_machine(8);
        fresh.install_image(&img);
        assert_eq!(fresh.peek(word(0)), 5);
        assert_eq!(fresh.durable_image().unwrap()[0], 5);
        assert!(!fresh.power_failed());
    }

    #[test]
    fn power_fail_latches_once() {
        let mut m = persistent_machine(8);
        assert!(m.power_fail(0));
        m.store(0, word(0), 9).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        m.persist_fence(0).unwrap();
        assert!(!m.power_fail(1), "second failure does not re-latch");
        assert_eq!(m.crash_image().unwrap().words()[0], 0);
        assert_eq!(m.crash_image().unwrap().cpu(), 0);
    }

    #[test]
    fn planned_power_fail_fires_at_cycle() {
        let mut plan = FaultPlan::quiet(5);
        plan.power_fail_at = Some(1_000);
        let mut cfg = MachineConfig::small(1).with_fault_plan(plan);
        cfg.persist = Some(PersistConfig::default());
        let mut m = Machine::new(cfg);
        m.store(0, word(0), 3).unwrap();
        m.persist_flush(0, word(0)).unwrap();
        m.persist_fence(0).unwrap();
        assert!(!m.power_failed());
        m.work(0, 2_000).unwrap();
        m.work(0, 1).unwrap(); // first boundary past the fail cycle
        assert!(m.power_failed());
        let crash = m.crash_image().unwrap();
        assert!(crash.cycle() >= 1_000);
        assert_eq!(crash.words()[0], 3);
        assert_eq!(m.chaos_stats().power_fails, 1);
        let events = m.drain_chaos_events();
        assert!(events.iter().any(|e| e.kind == ChaosFaultKind::PowerFail));
        // The ghost execution keeps running and never re-fires.
        m.work(0, 10_000).unwrap();
        assert_eq!(m.chaos_stats().power_fails, 1);
    }

    #[test]
    fn planned_power_fail_replays_bit_for_bit() {
        let run = || {
            let mut plan = FaultPlan::mixed(77);
            plan.power_fail_at = Some(5_000);
            let mut cfg = MachineConfig::small(2).with_fault_plan(plan);
            cfg.persist = Some(PersistConfig::default());
            let mut m = Machine::new(cfg);
            for round in 0..60u64 {
                for cpu in 0..2 {
                    let a = word((round % 8) * 8);
                    let _ = m.load(cpu, a).and_then(|v| m.store(cpu, a, v + 1));
                    if round % 4 == 0 {
                        let _ = m.persist_flush(cpu, a);
                        let _ = m.persist_fence(cpu);
                    }
                }
            }
            let crash = m.crash_image().expect("failure fired");
            (
                crash.cycle(),
                crash.cpu(),
                crash.words().to_vec(),
                m.chaos_stats(),
            )
        };
        assert_eq!(run(), run(), "same seed must latch the same crash image");
    }
}
