//! A small, dependency-free, deterministic PRNG.
//!
//! Everything random in this workspace — workload generation, fault
//! injection ([`crate::FaultPlan`]), randomized backoff — must be a pure
//! function of an explicit seed so that any run replays bit-for-bit from
//! that seed alone. Host RNGs (and external crates) are therefore off the
//! table; this module provides the one generator the whole workspace
//! shares: xoshiro256** seeded via splitmix64.
//!
//! The stream is stable across platforms and releases: tests encode
//! seed-derived expectations, so the algorithm must never change silently.

/// One splitmix64 step: advances `state` and returns the next output.
///
/// Exposed because it is also handy as a cheap stateless hash for
/// deterministic setup code (mixing a seed with loop indices).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeded generator (xoshiro256**).
///
/// ```
/// use ufotm_machine::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Debiased multiply-shift rejection (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`; panics if empty.
    pub fn gen_index(&mut self, range: core::ops::Range<usize>) -> usize {
        usize::try_from(self.gen_range(range.start as u64..range.end as u64))
            .expect("index fits usize")
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare the top 53 bits against p with 2^-53 resolution.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SimRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.next_u64());
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SimRng::seed_from_u64(42);
        let mut hit = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            hit[(v - 5) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "1000 draws should cover 10 buckets");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = SimRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    fn splitmix_hash_is_stable() {
        // Known-answer test: pins the stream across refactors.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
