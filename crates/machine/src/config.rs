//! Machine configuration: geometry, latencies, and hardware policy knobs.
//!
//! The defaults approximate the paper's Table 4 (a 1 GHz out-of-order x86
//! with a 32 KiB 4-way L1, a 1 MiB 8-way unified L2, 64-byte lines, and a
//! directory protocol). Pipeline effects are folded into fixed per-operation
//! costs; the relative magnitudes (hit ≪ L2 ≪ memory, 20-cycle nack retry)
//! are what the paper's results depend on.

use crate::cache::CacheGeometry;
use crate::chaos::FaultPlan;
use crate::persist::PersistConfig;

/// Latencies (in cycles) charged to a CPU's local clock by each operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A load or store that hits in the L1.
    pub l1_hit: u64,
    /// Additional cost of filling from the shared L2.
    pub l2_hit: u64,
    /// Additional cost of filling from memory.
    pub mem: u64,
    /// Cost of a cache-to-cache transfer (remote L1 owns the line dirty).
    pub cache_to_cache: u64,
    /// Cost of writing back a dirty victim.
    pub writeback: u64,
    /// Delay before a nacked transactional request retries (paper: 20).
    pub nack_retry: u64,
    /// Executing `btm_begin` (register checkpoint).
    pub btm_begin: u64,
    /// Executing `btm_end` on a successful commit (flash-clear of SR/SW).
    pub btm_commit: u64,
    /// Hardware abort handling (flash invalidate + checkpoint restore).
    pub btm_abort: u64,
    /// A `set/add/read_ufo_bits` instruction, beyond its coherence traffic.
    pub ufo_op: u64,
    /// Delivering a fault (UFO fault or exception) to a software handler.
    pub fault_dispatch: u64,
    /// Servicing a timer interrupt (context switch in and out).
    pub interrupt_service: u64,
    /// Servicing a page-in from the swap device.
    pub page_in: u64,
    /// Servicing a page-out to the swap device.
    pub page_out: u64,
    /// A `persist_flush`: capturing one line into the persist buffer.
    pub persist_flush: u64,
    /// A `persist_fence`: draining the persist buffer to the durable image.
    pub persist_fence: u64,
}

impl CostModel {
    /// The default cost model used for all headline experiments.
    #[must_use]
    pub fn table4() -> Self {
        CostModel {
            l1_hit: 2,
            l2_hit: 18,
            mem: 200,
            cache_to_cache: 30,
            writeback: 10,
            nack_retry: 20,
            btm_begin: 4,
            btm_commit: 4,
            btm_abort: 20,
            ufo_op: 4,
            fault_dispatch: 100,
            interrupt_service: 2_000,
            page_in: 100_000,
            page_out: 100_000,
            // NVM-class write latencies: a flush costs about a memory
            // access; a fence waits for the buffer drain.
            persist_flush: 200,
            persist_fence: 400,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::table4()
    }
}

/// Which BTM transactions a `set_ufo_bits` coherence invalidation kills.
///
/// Reproduces the Figure 8 limit study: because USTM read barriers set
/// fault-on-write with exclusive coherence permission, they kill BTM
/// transactions that merely *read* the same line — a false conflict. The
/// `TrueConflictsOnly` policy models idealized hardware that spares those
/// readers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum UfoKillPolicy {
    /// Faithful hardware: acquiring exclusive permission to set the bits
    /// invalidates every cached copy, killing any speculative holder.
    #[default]
    AllSpeculativeHolders,
    /// Limit study: only kill holders for which the protection actually
    /// signals a conflict (the set includes fault-on-read — i.e. the software
    /// transaction will write — or the hardware transaction has
    /// speculatively written the line).
    TrueConflictsOnly,
}

/// The hardware contention-management policy for HTM/HTM conflicts.
///
/// The paper finds that "there appears to be no substitute for having a good
/// contention management policy in hardware" (§4.4) and demonstrates it with
/// the requester-wins straw man in Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum HwCmPolicy {
    /// Age-ordered arbitration: an older requester aborts the current
    /// holder; a younger requester is nacked and retries after 20 cycles.
    #[default]
    AgeOrdered,
    /// Naïve policy: the requester always wins and the holder is aborted.
    /// Guarantees progress only via software failover; performs poorly under
    /// contention (Figure 8, first bar).
    RequesterWins,
}

/// Full configuration of a simulated [`Machine`](crate::Machine).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of CPUs (1–64).
    pub cpus: usize,
    /// Size of simulated memory in 8-byte words.
    pub memory_words: u64,
    /// Per-CPU L1 data cache geometry (speculative lines must fit here).
    pub l1: CacheGeometry,
    /// Shared L2 geometry (timing only).
    pub l2: CacheGeometry,
    /// Latency model.
    pub costs: CostModel,
    /// Timer interrupt quantum in cycles; `None` disables timer interrupts.
    /// A BTM transaction spanning a quantum boundary is aborted with
    /// [`AbortReason::Interrupt`](crate::AbortReason::Interrupt).
    pub timer_quantum: Option<u64>,
    /// Maximum hardware (flattened) nesting depth before
    /// [`AbortReason::DepthOverflow`](crate::AbortReason::DepthOverflow).
    pub btm_max_depth: u32,
    /// If `true`, the BTM never aborts for capacity: evicted speculative
    /// lines stay tracked in an idealized overflow structure. Used to model
    /// the paper's *unbounded HTM* baseline.
    pub btm_unbounded: bool,
    /// Which speculative holders a `set_ufo_bits` kills (Figure 8 knob).
    pub ufo_kill_policy: UfoKillPolicy,
    /// Hardware contention management for HTM/HTM conflicts (Figure 8 knob).
    pub hw_cm: HwCmPolicy,
    /// §4.3's proposed coherence change: permit setting UFO bits "in the
    /// owner state". When enabled, a set that adds no fault-on-read bit (a
    /// USTM *read barrier*, or a clear) publishes the bits without acquiring
    /// exclusive permission — remote cached copies survive, so speculative
    /// *readers* of the line are no longer killed by false conflicts.
    pub ufo_owner_state_sets: bool,
    /// Seeded fault-injection plan (chaos engine); `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Simulated-NVM persistence domain; `None` (the default) models a
    /// fully volatile machine with zero-cost no-op persist operations.
    pub persist: Option<PersistConfig>,
}

impl MachineConfig {
    /// The paper's Table 4 configuration with the given CPU count.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or greater than 64.
    #[must_use]
    pub fn table4(cpus: usize) -> Self {
        assert!((1..=64).contains(&cpus), "cpus must be in 1..=64");
        MachineConfig {
            cpus,
            memory_words: 1 << 22,           // 32 MiB of simulated data
            l1: CacheGeometry::new(128, 4),  // 32 KiB, 4-way, 64 B lines
            l2: CacheGeometry::new(2048, 8), // 1 MiB, 8-way
            costs: CostModel::table4(),
            timer_quantum: Some(200_000),
            btm_max_depth: 8,
            btm_unbounded: false,
            ufo_kill_policy: UfoKillPolicy::AllSpeculativeHolders,
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_owner_state_sets: false,
            fault_plan: None,
            persist: None,
        }
    }

    /// A tiny machine for unit tests and doctests: a 4-set, 2-way L1 so
    /// capacity effects are easy to trigger, and no timer interrupts.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or greater than 64.
    #[must_use]
    pub fn small(cpus: usize) -> Self {
        assert!((1..=64).contains(&cpus), "cpus must be in 1..=64");
        MachineConfig {
            cpus,
            memory_words: 1 << 16,
            l1: CacheGeometry::new(4, 2),
            l2: CacheGeometry::new(64, 4),
            costs: CostModel::table4(),
            timer_quantum: None,
            btm_max_depth: 8,
            btm_unbounded: false,
            ufo_kill_policy: UfoKillPolicy::AllSpeculativeHolders,
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_owner_state_sets: false,
            fault_plan: None,
            persist: None,
        }
    }

    /// Returns this configuration with the BTM made unbounded (the paper's
    /// idealized unbounded-HTM baseline).
    #[must_use]
    pub fn unbounded(mut self) -> Self {
        self.btm_unbounded = true;
        self
    }

    /// Returns this configuration with a fault-injection plan installed.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of cache lines covered by the memory image.
    #[must_use]
    pub fn memory_lines(&self) -> u64 {
        (self.memory_words * crate::WORD_BYTES).div_ceil(crate::LINE_BYTES)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table4(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_geometry_matches_paper() {
        let c = MachineConfig::table4(16);
        assert_eq!(c.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(c.l2.capacity_bytes(), 1024 * 1024);
        assert_eq!(c.costs.nack_retry, 20);
    }

    #[test]
    #[should_panic(expected = "cpus")]
    fn zero_cpus_rejected() {
        let _ = MachineConfig::table4(0);
    }

    #[test]
    fn unbounded_builder_sets_flag() {
        assert!(MachineConfig::small(1).unbounded().btm_unbounded);
    }

    #[test]
    fn memory_lines_rounds_up() {
        let mut c = MachineConfig::small(1);
        c.memory_words = 9; // 72 bytes -> 2 lines
        assert_eq!(c.memory_lines(), 2);
    }
}
