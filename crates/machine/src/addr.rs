//! Address newtypes and geometry constants.
//!
//! The simulated machine is word-addressed at an 8-byte granularity but all
//! protection and coherence state is kept per 64-byte cache line, and paging
//! operates on 4 KiB pages — the same granularities the paper assumes.

use std::fmt;

/// Bytes per machine word (all data accesses are one aligned word).
pub const WORD_BYTES: u64 = 8;
/// Bytes per cache line (fixed at 64, as in the paper's simulated system).
pub const LINE_BYTES: u64 = 64;
/// Words per cache line.
pub const LINE_WORDS: u64 = LINE_BYTES / WORD_BYTES;
/// Bytes per page.
pub const PAGE_BYTES: u64 = 4096;
/// Cache lines per page.
pub const PAGE_LINES: u64 = PAGE_BYTES / LINE_BYTES;

/// A byte address in simulated physical memory.
///
/// Data accesses must be word-aligned; [`Addr::word_index`] panics otherwise
/// (misalignment is a bug in the caller, not a simulated fault).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address from a word index (i.e. `index * 8` bytes).
    #[must_use]
    pub const fn from_word_index(index: u64) -> Self {
        Addr(index * WORD_BYTES)
    }

    /// The word index of this (word-aligned) address.
    ///
    /// # Panics
    ///
    /// Panics if the address is not word-aligned.
    #[must_use]
    pub fn word_index(self) -> u64 {
        assert!(
            self.0.is_multiple_of(WORD_BYTES),
            "misaligned word access at {self:?}"
        );
        self.0 / WORD_BYTES
    }

    /// The cache line containing this address.
    #[must_use]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    #[must_use]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// The address `count` words after this one.
    #[must_use]
    pub const fn add_words(self, count: u64) -> Self {
        Addr(self.0 + count * WORD_BYTES)
    }

    /// Raw byte value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
///
/// This is the granularity at which UFO bits, coherence state, and BTM
/// speculative read/write sets are tracked.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first (lowest) byte address in this line.
    #[must_use]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The index of this line within the memory image (identical to the raw
    /// line number; provided for symmetry with [`Addr::word_index`]).
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The page containing this line.
    #[must_use]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_LINES)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

/// A page number (byte address divided by [`PAGE_BYTES`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// The first cache line in this page.
    #[must_use]
    pub const fn first_line(self) -> LineAddr {
        LineAddr(self.0 * PAGE_LINES)
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_index_round_trips() {
        for i in [0u64, 1, 7, 8, 1023] {
            assert_eq!(Addr::from_word_index(i).word_index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_index_panics() {
        let _ = Addr(3).word_index();
    }

    #[test]
    fn line_and_page_mapping() {
        let a = Addr(64 * 5 + 8);
        assert_eq!(a.line(), LineAddr(5));
        assert_eq!(a.line().base_addr(), Addr(64 * 5));
        assert_eq!(Addr(4096 * 3).page(), PageAddr(3));
        assert_eq!(PageAddr(2).first_line(), LineAddr(2 * PAGE_LINES));
        assert_eq!(LineAddr(2 * PAGE_LINES).page(), PageAddr(2));
    }

    #[test]
    fn add_words_advances_bytes() {
        assert_eq!(Addr(0).add_words(9), Addr(72));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
    }
}
