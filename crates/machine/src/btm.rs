//! BTM: the best-effort hardware transactional memory (paper §3.1).
//!
//! BTM supports transactions that fit in the L1 data cache, raise no
//! exceptions, receive no interrupts, need only flattened nesting, and
//! perform no I/O. Everything else aborts with a recorded [`AbortReason`]
//! that software (the hybrid's abort handler) inspects through the
//! transactional status registers ([`BtmStatus`]).
//!
//! The per-CPU transactional state lives here; the instruction
//! implementations (`btm_begin`/`btm_end`/…) are methods on
//! [`Machine`](crate::Machine).

// analyze: allow(host-nondeterminism) -- hot-path membership/lookup state, pre-sized to L1 capacity so the steady state never allocates; the only iterations are the three allow-marked order-insensitive sweeps in machine.rs, so hasher randomness is never observable.
use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::addr::{Addr, LineAddr};

/// Why a BTM transaction aborted — the contents of the abort-reason status
/// register (paper §3.1 lists this exact set, plus the UFO interactions from
/// §4.3 which we track separately for the Figure 6 breakdown).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbortReason {
    /// Lost an age-ordered conflict with another hardware transaction.
    Conflict,
    /// A non-transactional (or STM) access invalidated a speculative line.
    NonTConflict,
    /// A `set_ufo_bits` by a software transaction invalidated a speculative
    /// line (the paper's "killed by UFO bit sets").
    UfoSet,
    /// The transaction itself touched a UFO-protected line and took the
    /// protection fault (conflict with an in-flight software transaction).
    UfoFault,
    /// A speculative line no longer fit in the L1 (cache set overflow).
    Overflow,
    /// `btm_abort` was executed.
    Explicit,
    /// A (timer) interrupt arrived mid-transaction.
    Interrupt,
    /// The transaction invoked a system call.
    Syscall,
    /// The transaction performed I/O.
    Io,
    /// The transaction touched an uncacheable region.
    Uncacheable,
    /// The transaction raised a non-page-fault exception.
    Exception,
    /// The transaction touched a non-resident page.
    PageFault,
    /// Hardware (flattened) nesting depth exceeded.
    DepthOverflow,
    /// An illegal operation was executed transactionally.
    IllegalOp,
    /// A chaos-injected spurious abort (fault injection only; the modelled
    /// hardware never raises this by itself). Transient by construction, so
    /// classified as recoverable.
    Spurious,
}

impl AbortReason {
    /// Whether the hybrid's abort handler should *fail over to software*
    /// immediately: these conditions nearly guarantee the transaction will
    /// abort again if retried in hardware (paper Algorithm 3).
    #[must_use]
    pub const fn is_failover(self) -> bool {
        matches!(
            self,
            AbortReason::Overflow
                | AbortReason::Syscall
                | AbortReason::Io
                | AbortReason::Exception
                | AbortReason::Uncacheable
                | AbortReason::DepthOverflow
                | AbortReason::IllegalOp
        )
    }

    /// Whether the condition is transient and worth retrying in hardware
    /// (possibly after backoff or a software fix-up).
    #[must_use]
    pub const fn is_recoverable(self) -> bool {
        !self.is_failover() && !matches!(self, AbortReason::Explicit)
    }

    /// All reasons, in a stable order (for stats tables).
    #[must_use]
    pub const fn all() -> [AbortReason; 15] {
        use AbortReason::*;
        [
            Conflict,
            NonTConflict,
            UfoSet,
            UfoFault,
            Overflow,
            Explicit,
            Interrupt,
            Syscall,
            Io,
            Uncacheable,
            Exception,
            PageFault,
            DepthOverflow,
            IllegalOp,
            Spurious,
        ]
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Conflict => "conflict",
            AbortReason::NonTConflict => "nonT-conflict",
            AbortReason::UfoSet => "ufo-set",
            AbortReason::UfoFault => "ufo-fault",
            AbortReason::Overflow => "overflow",
            AbortReason::Explicit => "explicit",
            AbortReason::Interrupt => "interrupt",
            AbortReason::Syscall => "syscall",
            AbortReason::Io => "io",
            AbortReason::Uncacheable => "uncacheable",
            AbortReason::Exception => "exception",
            AbortReason::PageFault => "page-fault",
            AbortReason::DepthOverflow => "depth-overflow",
            AbortReason::IllegalOp => "illegal-op",
            AbortReason::Spurious => "spurious",
        };
        f.write_str(s)
    }
}

/// The abort-reason register pair: reason plus the associated address when
/// one exists (e.g. the faulting address of a page fault or UFO fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbortInfo {
    /// Why the transaction aborted.
    pub reason: AbortReason,
    /// The address associated with the event, if any.
    pub addr: Option<Addr>,
}

impl AbortInfo {
    /// An abort with no associated address.
    #[must_use]
    pub const fn new(reason: AbortReason) -> Self {
        AbortInfo { reason, addr: None }
    }

    /// An abort with an associated faulting address.
    #[must_use]
    pub const fn at(reason: AbortReason, addr: Addr) -> Self {
        AbortInfo {
            reason,
            addr: Some(addr),
        }
    }
}

impl fmt::Display for AbortInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(f, "{} @ {a}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

/// Events a transaction can raise explicitly (modelling instructions the
/// simulated workload "executes"), all of which abort a BTM transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BtmEvent {
    /// A system-call instruction.
    Syscall,
    /// An I/O operation.
    Io,
    /// A synchronous exception (non page-fault).
    Exception,
    /// An access to an uncacheable region.
    Uncacheable,
    /// An illegal operation.
    IllegalOp,
}

impl BtmEvent {
    pub(crate) fn abort_reason(self) -> AbortReason {
        match self {
            BtmEvent::Syscall => AbortReason::Syscall,
            BtmEvent::Io => AbortReason::Io,
            BtmEvent::Exception => AbortReason::Exception,
            BtmEvent::Uncacheable => AbortReason::Uncacheable,
            BtmEvent::IllegalOp => AbortReason::IllegalOp,
        }
    }
}

/// The transactional status registers exposed to software (`btm_mov`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BtmStatus {
    /// Whether a transaction is currently executing on this CPU.
    pub in_txn: bool,
    /// Current flattened nesting depth (0 when not in a transaction).
    pub depth: u32,
    /// The reason for the last transaction abort, if any.
    pub last_abort: Option<AbortInfo>,
}

/// Per-CPU BTM machine state (crate-internal).
#[derive(Clone, Debug, Default)]
pub(crate) struct BtmCpu {
    /// Whether a transaction is active.
    pub active: bool,
    /// Flattened nesting depth.
    pub depth: u32,
    /// Global age timestamp of the current transaction (smaller = older).
    pub ts: u64,
    /// Set when the transaction has been killed but the CPU has not yet
    /// noticed (it notices at its next instruction boundary).
    pub doomed: Option<AbortInfo>,
    /// Speculative write buffer: word address → speculative value.
    pub spec_writes: HashMap<u64, u64>,
    /// Lines speculatively read (authoritative read set; the L1's SR bits
    /// mirror the subset still resident — identical unless unbounded mode
    /// spilled lines past L1 capacity).
    pub read_set: HashSet<LineAddr>,
    /// Lines speculatively written.
    pub write_set: HashSet<LineAddr>,
    /// Last abort info (status register), surviving past the transaction.
    pub last_abort: Option<AbortInfo>,
    /// Reusable drain buffer for the commit/abort paths (the write set and
    /// write buffer cannot be iterated while the machine is mutated, so the
    /// entries are staged here instead of a fresh `Vec` per transaction).
    pub scratch_lines: Vec<LineAddr>,
    /// Reusable drain buffer for publishing the speculative write buffer.
    pub scratch_writes: Vec<(u64, u64)>,
}

impl BtmCpu {
    /// State pre-sized for transactions up to `lines` cache lines, so the
    /// steady state (transactions within L1 capacity) never reallocates.
    /// Unbounded-mode transactions may still grow past this.
    pub fn with_capacity(lines: usize) -> Self {
        BtmCpu {
            spec_writes: HashMap::with_capacity(lines * 2),
            read_set: HashSet::with_capacity(lines),
            write_set: HashSet::with_capacity(lines),
            scratch_lines: Vec::with_capacity(lines),
            scratch_writes: Vec::with_capacity(lines * 2),
            ..Default::default()
        }
    }

    /// Whether this CPU holds `line` speculatively in a live transaction.
    pub fn holds_spec(&self, line: LineAddr) -> bool {
        self.active
            && self.doomed.is_none()
            && (self.read_set.contains(&line) || self.write_set.contains(&line))
    }

    /// Whether this CPU speculatively wrote `line` in a live transaction.
    pub fn wrote_spec(&self, line: LineAddr) -> bool {
        self.active && self.doomed.is_none() && self.write_set.contains(&line)
    }

    /// Clears all transactional state (after commit or abort finalization).
    pub fn reset(&mut self) {
        self.active = false;
        self.depth = 0;
        self.doomed = None;
        self.spec_writes.clear();
        self.read_set.clear();
        self.write_set.clear();
    }

    /// Status-register view.
    pub fn status(&self) -> BtmStatus {
        BtmStatus {
            in_txn: self.active,
            depth: self.depth,
            last_abort: self.last_abort,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_classification_matches_algorithm3() {
        use AbortReason::*;
        for r in [
            Overflow,
            Syscall,
            Io,
            Exception,
            Uncacheable,
            DepthOverflow,
            IllegalOp,
        ] {
            assert!(r.is_failover(), "{r} should fail over");
            assert!(!r.is_recoverable());
        }
        for r in [
            Conflict,
            NonTConflict,
            UfoSet,
            UfoFault,
            Interrupt,
            PageFault,
            Spurious,
        ] {
            assert!(!r.is_failover(), "{r} should not fail over");
            assert!(r.is_recoverable(), "{r} should be recoverable");
        }
        assert!(!Explicit.is_failover() && !Explicit.is_recoverable());
    }

    #[test]
    fn abort_info_display() {
        assert_eq!(
            AbortInfo::new(AbortReason::Overflow).to_string(),
            "overflow"
        );
        assert_eq!(
            AbortInfo::at(AbortReason::PageFault, Addr(0x40)).to_string(),
            "page-fault @ 0x40"
        );
    }

    #[test]
    fn btm_cpu_holds_and_reset() {
        let mut b = BtmCpu {
            active: true,
            ..Default::default()
        };
        b.read_set.insert(LineAddr(3));
        b.write_set.insert(LineAddr(4));
        assert!(b.holds_spec(LineAddr(3)));
        assert!(b.wrote_spec(LineAddr(4)));
        assert!(!b.wrote_spec(LineAddr(3)));
        b.doomed = Some(AbortInfo::new(AbortReason::Conflict));
        assert!(!b.holds_spec(LineAddr(3)), "doomed txns hold nothing");
        b.reset();
        assert!(!b.active && b.spec_writes.is_empty() && b.read_set.is_empty());
    }

    #[test]
    fn event_reason_mapping() {
        assert_eq!(BtmEvent::Syscall.abort_reason(), AbortReason::Syscall);
        assert_eq!(BtmEvent::Io.abort_reason(), AbortReason::Io);
    }

    #[test]
    fn all_reasons_unique() {
        let all = AbortReason::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
