//! # `ufotm-machine` — the simulated hardware substrate
//!
//! This crate models the hardware assumed by the ISCA 2008 paper *"Using
//! Hardware Memory Protection to Build a High-Performance, Strongly-Atomic
//! Hybrid Transactional Memory"* (Baugh, Neelakantam, Zilles): a
//! multiprocessor with
//!
//! * a word-addressed physical memory image,
//! * per-CPU L1 data caches and a shared L2, kept coherent by a
//!   directory protocol,
//! * **UFO** — two *user fault-on* bits (fault-on-read, fault-on-write) per
//!   64-byte cache line that travel with the data through the hierarchy and
//!   are manipulated by user-mode instructions
//!   ([`Machine::set_ufo_bits`], [`Machine::add_ufo_bits`],
//!   [`Machine::read_ufo_bits`], [`Machine::set_ufo_enabled`]), and
//! * **BTM** — a best-effort hardware transactional memory that tracks
//!   speculatively-read / speculatively-written lines in the L1, aborts on
//!   any eviction of a speculative line, and arbitrates conflicts with an
//!   age-ordered nack/abort policy ([`Machine::btm_begin`],
//!   [`Machine::btm_end`], [`Machine::btm_abort`], [`Machine::btm_status`]).
//!
//! Everything is executed under a *deterministic* timing model: each CPU has
//! a local cycle clock, and each operation charges latencies from a
//! [`CostModel`] (approximating the paper's Table 4). There is no real
//! concurrency in this crate — callers (normally the `ufotm-sim` lockstep
//! engine) interleave CPUs by always invoking the CPU with the smallest local
//! clock.
//!
//! ## Example
//!
//! ```
//! use ufotm_machine::{Machine, MachineConfig, Addr, UfoBits};
//!
//! let mut m = Machine::new(MachineConfig::small(2));
//! let a = Addr::from_word_index(100);
//!
//! // Plain accesses.
//! m.store(0, a, 7).unwrap();
//! assert_eq!(m.load(0, a).unwrap(), 7);
//!
//! // Protect the line and watch a conflicting access fault.
//! m.set_ufo_bits(0, a, UfoBits::FAULT_ON_WRITE).unwrap();
//! m.set_ufo_enabled(1, true);
//! assert!(m.store(1, a, 9).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod alloc;
mod bits;
mod btm;
mod cache;
mod chaos;
mod coherence;
mod config;
mod machine;
mod mem;
mod persist;
mod rng;
mod stats;
mod swap;
mod ufo;

pub use addr::{
    Addr, LineAddr, PageAddr, LINE_BYTES, LINE_WORDS, PAGE_BYTES, PAGE_LINES, WORD_BYTES,
};
pub use alloc::{AllocError, SimAlloc};
pub use bits::{cpu_bit, BitIter};
pub use btm::{AbortInfo, AbortReason, BtmEvent, BtmStatus};
pub use cache::CacheGeometry;
pub use chaos::{ChaosEvent, ChaosFaultKind, ChaosStats, FaultPlan};
pub use config::{CostModel, HwCmPolicy, MachineConfig, UfoKillPolicy};
pub use machine::{AccessError, AccessResult, CpuId, Machine, PlainAccess};
pub use persist::{CrashImage, PersistConfig, PersistStats};
pub use rng::{splitmix64, SimRng};
pub use stats::{CpuStats, MachineStats};
pub use swap::{SwapConfig, SwapStats};
pub use ufo::{UfoBits, UfoFaultKind};
