//! Bitmask iteration for CPU sets.
//!
//! CPU sets throughout the machine (directory sharer masks, otable owner
//! masks, the live-transaction set) are `u64` bitmasks — the machine asserts
//! `cpus ∈ 1..=64`. Iterating them used to mean scanning a fixed `0..64`
//! range and testing each bit; [`BitIter`] walks only the *set* bits via
//! `trailing_zeros`, so the cost is proportional to the population count and
//! naturally clamps to the CPUs that actually appear — a machine configured
//! with 4 CPUs never loops 64 times.

/// The single-CPU bitmask `1 << cpu`, checked.
///
/// CPU sets are `u64` bitmasks, so only CPUs 0..=63 are representable. With
/// a larger id, a raw `1 << cpu` is a *masked* shift in release builds and
/// CPU 64 silently aliases CPU 0, corrupting owner and sharer masks — the
/// PR-4 overflow class. [`Machine::new`](crate::Machine::new) rejects
/// configurations with more than 64 CPUs; the debug assertion here catches
/// any other caller handing an out-of-range id straight to mask arithmetic.
///
/// Every `1 << cpu`-shaped shift in the workspace must route through this
/// helper (or the USTM ownership table's re-export of it); the
/// `unchecked-cpu-shift` pass of `cargo xtask analyze` enforces exactly
/// that.
#[inline]
#[must_use]
pub fn cpu_bit(cpu: usize) -> u64 {
    debug_assert!(
        cpu < 64,
        "CPU sets are u64 bitmasks: cpu {cpu} out of range"
    );
    1u64 << (cpu & 63)
}

/// Iterator over the set-bit positions of a `u64`, ascending.
#[derive(Clone, Copy, Debug)]
pub struct BitIter(u64);

impl BitIter {
    /// Iterates the set bits of `mask` from least to most significant.
    #[must_use]
    pub fn new(mask: u64) -> Self {
        BitIter(mask)
    }
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear the lowest set bit
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitIter {}

impl std::iter::FusedIterator for BitIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_yields_nothing() {
        assert_eq!(BitIter::new(0).count(), 0);
    }

    #[test]
    fn bits_come_out_ascending() {
        let got: Vec<usize> = BitIter::new(0b1010_0110).collect();
        assert_eq!(got, vec![1, 2, 5, 7]);
    }

    #[test]
    fn extreme_bits_round_trip() {
        let got: Vec<usize> = BitIter::new(1 | (1 << 63)).collect();
        assert_eq!(got, vec![0, 63]);
        assert_eq!(BitIter::new(u64::MAX).count(), 64);
    }

    #[test]
    fn size_hint_is_exact() {
        let it = BitIter::new(0b1011);
        assert_eq!(it.len(), 3);
        assert_eq!(it.size_hint(), (3, Some(3)));
    }

    #[test]
    fn cpu_bit_matches_raw_shift_in_range() {
        for cpu in 0..64 {
            assert_eq!(cpu_bit(cpu), 1u64 << cpu);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn cpu_bit_rejects_cpu_64() {
        let _ = cpu_bit(64);
    }

    #[test]
    fn matches_naive_scan() {
        for mask in [0u64, 1, 0xFF, 0xDEAD_BEEF_CAFE_F00D, u64::MAX] {
            let naive: Vec<usize> = (0..64).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(BitIter::new(mask).collect::<Vec<_>>(), naive);
        }
    }
}
