//! Bitmask iteration for CPU sets.
//!
//! CPU sets throughout the machine (directory sharer masks, otable owner
//! masks, the live-transaction set) are `u64` bitmasks — the machine asserts
//! `cpus ∈ 1..=64`. Iterating them used to mean scanning a fixed `0..64`
//! range and testing each bit; [`BitIter`] walks only the *set* bits via
//! `trailing_zeros`, so the cost is proportional to the population count and
//! naturally clamps to the CPUs that actually appear — a machine configured
//! with 4 CPUs never loops 64 times.

/// Iterator over the set-bit positions of a `u64`, ascending.
#[derive(Clone, Copy, Debug)]
pub struct BitIter(u64);

impl BitIter {
    /// Iterates the set bits of `mask` from least to most significant.
    #[must_use]
    pub fn new(mask: u64) -> Self {
        BitIter(mask)
    }
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear the lowest set bit
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitIter {}

impl std::iter::FusedIterator for BitIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_yields_nothing() {
        assert_eq!(BitIter::new(0).count(), 0);
    }

    #[test]
    fn bits_come_out_ascending() {
        let got: Vec<usize> = BitIter::new(0b1010_0110).collect();
        assert_eq!(got, vec![1, 2, 5, 7]);
    }

    #[test]
    fn extreme_bits_round_trip() {
        let got: Vec<usize> = BitIter::new(1 | (1 << 63)).collect();
        assert_eq!(got, vec![0, 63]);
        assert_eq!(BitIter::new(u64::MAX).count(), 64);
    }

    #[test]
    fn size_hint_is_exact() {
        let it = BitIter::new(0b1011);
        assert_eq!(it.len(), 3);
        assert_eq!(it.size_hint(), (3, Some(3)));
    }

    #[test]
    fn matches_naive_scan() {
        for mask in [0u64, 1, 0xFF, 0xDEAD_BEEF_CAFE_F00D, u64::MAX] {
            let naive: Vec<usize> = (0..64).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(BitIter::new(mask).collect::<Vec<_>>(), naive);
        }
    }
}
