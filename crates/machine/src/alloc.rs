//! A first-fit free-list allocator for simulated memory.
//!
//! Workloads (the `ufotm-stamp` crate) allocate their data structures —
//! tree nodes, list cells, record rows — from a [`SimAlloc`] region so that
//! their addresses exercise the simulated cache hierarchy realistically.
//! The allocator's own metadata is "operating system" state: it lives on the
//! host and charges no cycles itself (callers charge allocation cost, and
//! the hybrid TM treats pool refills as system calls per the paper's §6
//! `malloc` discussion).

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{Addr, LINE_WORDS};

/// Errors returned by [`SimAlloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free region large enough.
    OutOfMemory {
        /// The request that failed, in words.
        requested_words: u64,
    },
    /// `free` was called with an address that is not an allocation start.
    InvalidFree {
        /// The offending address.
        addr: Addr,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested_words } => {
                write!(
                    f,
                    "out of simulated memory (requested {requested_words} words)"
                )
            }
            AllocError::InvalidFree { addr } => write!(f, "invalid free of {addr}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit, coalescing free-list allocator over a word range of
/// simulated memory.
///
/// ```
/// use ufotm_machine::{Addr, SimAlloc};
///
/// let mut a = SimAlloc::new(Addr::from_word_index(0), 64);
/// let x = a.alloc(8)?;
/// let y = a.alloc(8)?;
/// assert_ne!(x, y);
/// a.free(x)?;
/// a.free(y)?;
/// assert_eq!(a.free_words(), 64);
/// # Ok::<(), ufotm_machine::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SimAlloc {
    /// Free regions as (start_word, len_words), sorted by start, coalesced.
    free: Vec<(u64, u64)>,
    /// Live allocation sizes by start word (ordered: the allocator lives in
    /// deterministic, cycle-charged code, so no hasher-seeded state).
    sizes: BTreeMap<u64, u64>,
    base_word: u64,
    total_words: u64,
}

impl SimAlloc {
    /// Creates an allocator managing `words` words starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn new(base: Addr, words: u64) -> Self {
        assert!(words > 0, "empty allocator region");
        let base_word = base.word_index();
        SimAlloc {
            free: vec![(base_word, words)],
            sizes: BTreeMap::new(),
            base_word,
            total_words: words,
        }
    }

    /// Allocates `words` words (first fit).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if no region fits.
    pub fn alloc(&mut self, words: u64) -> Result<Addr, AllocError> {
        self.alloc_aligned(words, 1)
    }

    /// Allocates `words` words aligned to a cache-line boundary — used for
    /// data whose false sharing should be controlled.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if no region fits.
    pub fn alloc_line_aligned(&mut self, words: u64) -> Result<Addr, AllocError> {
        self.alloc_aligned(words, LINE_WORDS)
    }

    /// Allocates `words` words at a multiple of `align_words`.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if no region fits.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero or `align_words` is not a power of two.
    pub fn alloc_aligned(&mut self, words: u64, align_words: u64) -> Result<Addr, AllocError> {
        assert!(words > 0, "zero-size allocation");
        assert!(
            align_words.is_power_of_two(),
            "alignment must be a power of two"
        );
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            let aligned = start.next_multiple_of(align_words);
            let pad = aligned - start;
            if len < pad + words {
                continue;
            }
            // Carve [aligned, aligned+words) out of the region.
            self.free.remove(i);
            let mut insert_at = i;
            if pad > 0 {
                self.free.insert(insert_at, (start, pad));
                insert_at += 1;
            }
            let tail = len - pad - words;
            if tail > 0 {
                self.free.insert(insert_at, (aligned + words, tail));
            }
            self.sizes.insert(aligned, words);
            return Ok(Addr::from_word_index(aligned));
        }
        Err(AllocError::OutOfMemory {
            requested_words: words,
        })
    }

    /// Frees a previous allocation, coalescing with neighbours.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is not a live allocation start.
    pub fn free(&mut self, addr: Addr) -> Result<(), AllocError> {
        let start = addr.word_index();
        let words = self
            .sizes
            .remove(&start)
            .ok_or(AllocError::InvalidFree { addr })?;
        let pos = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(pos, (start, words));
        // Coalesce with the successor, then the predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }

    /// The size in words of the live allocation at `addr`, if any.
    #[must_use]
    pub fn size_of(&self, addr: Addr) -> Option<u64> {
        self.sizes.get(&addr.word_index()).copied()
    }

    /// Total free words.
    #[must_use]
    pub fn free_words(&self) -> u64 {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// Total words under management.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_allocations(&self) -> usize {
        self.sizes.len()
    }

    /// The first word managed by this allocator.
    #[must_use]
    pub fn base(&self) -> Addr {
        Addr::from_word_index(self.base_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_restores_capacity() {
        let mut a = SimAlloc::new(Addr::from_word_index(16), 100);
        let xs: Vec<_> = (0..10).map(|_| a.alloc(10).unwrap()).collect();
        assert!(a.alloc(1).is_err());
        assert_eq!(a.live_allocations(), 10);
        for x in xs {
            a.free(x).unwrap();
        }
        assert_eq!(a.free_words(), 100);
        assert_eq!(a.free.len(), 1, "fully coalesced");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 64);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let (xs, ys) = (x.word_index(), y.word_index());
        assert!(xs + 10 <= ys || ys + 10 <= xs);
    }

    #[test]
    fn line_aligned_allocs() {
        let mut a = SimAlloc::new(Addr::from_word_index(3), 64);
        let x = a.alloc_line_aligned(8).unwrap();
        assert_eq!(x.word_index() % LINE_WORDS, 0);
        let y = a.alloc_line_aligned(8).unwrap();
        assert_eq!(y.word_index() % LINE_WORDS, 0);
        assert_ne!(x.line(), y.line());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 16);
        let x = a.alloc(4).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x), Err(AllocError::InvalidFree { addr: x }));
    }

    #[test]
    fn coalescing_reunifies_middle_hole() {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 30);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        let z = a.alloc(10).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        a.free(y).unwrap();
        assert_eq!(a.free.len(), 1);
        // A full-size allocation now succeeds.
        assert!(a.alloc(30).is_ok());
    }

    #[test]
    fn size_of_reports_live_allocation() {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 16);
        let x = a.alloc(5).unwrap();
        assert_eq!(a.size_of(x), Some(5));
        a.free(x).unwrap();
        assert_eq!(a.size_of(x), None);
    }

    #[test]
    fn reuse_after_free() {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 8);
        let x = a.alloc(8).unwrap();
        a.free(x).unwrap();
        let y = a.alloc(8).unwrap();
        assert_eq!(x, y);
    }
}
